//! An itinerant agent — the "computational objects known as 'agents',
//! which exhibit some level of autonomy ... in the form of goals, plans,
//! itinerary" from the paper's introduction.
//!
//! The agent carries its itinerary and findings in its own extensible
//! data, installs itself at each stop via its `on_arrival` method, surveys
//! the local site, and tells the driver where it wants to go next. The
//! same object — same identity, same accumulated state — visits every
//! site and comes home with a report.
//!
//! Run with: `cargo run --example itinerant_agent`

use mrom::core::{Acl, DataItem, Method, MethodBody, ObjectBuilder};
use mrom::hadas::Federation;
use mrom::net::{LinkConfig, NetworkConfig};
use mrom::value::{NodeId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four sites in a full mesh of links.
    let nodes: Vec<NodeId> = (1..=4).map(NodeId).collect();
    let cfg = NetworkConfig::new(11).with_default_link(LinkConfig::wan());
    let mut fed = Federation::new(cfg);
    for &n in &nodes {
        fed.add_site(n)?;
    }
    for &a in &nodes {
        for &b in &nodes {
            if a < b {
                fed.link(a, b)?;
            }
        }
    }

    // Give each site some local colour for the agent to survey.
    for (i, &n) in nodes.iter().enumerate() {
        let ioo = fed.ioo_id(n)?;
        fed.runtime_mut(n)?
            .object_mut(ioo)
            .expect("ioo exists")
            .add_method(
                mrom::value::ObjectId::SYSTEM,
                "local_speciality",
                Method::public(MethodBody::script(&format!(
                    "return \"speciality-of-site-{}\";",
                    i + 1
                ))?),
            )?;
    }

    // The agent: fixed reporting core, extensible itinerary + findings.
    let home = nodes[0];
    let ids_binding = fed.runtime_mut(home)?;
    let agent = ObjectBuilder::new(ids_binding.ids_mut().next_id())
        .class("surveyor")
        .meta_acl(Acl::Public) // it reshapes itself wherever it lands
        .fixed_method(
            "report",
            Method::public(MethodBody::script(
                "return {\"visited\": self.get(\"visited\"), \"findings\": self.get(\"findings\")};",
            )?),
        )
        .ext_data("itinerary", DataItem::public(Value::list([
            Value::Int(2), Value::Int(3), Value::Int(4), Value::Int(1),
        ])))
        .ext_data("visited", DataItem::public(Value::list([])))
        .ext_data("findings", DataItem::public(Value::map::<String, _>([])))
        .ext_method(
            "on_arrival",
            Method::public(MethodBody::script(
                r#"
                param ctx;
                let here = ctx["host_site"];
                self.set("visited", push(self.get("visited"), here));
                # Survey the host: ask its IOO for the local speciality.
                let found = self.send(ctx["host_ioo"], "local_speciality", []);
                let findings = self.get("findings");
                findings[str(here)] = found;
                self.set("findings", findings);
                return true;
                "#,
            )?),
        )
        .ext_method(
            "next_stop",
            Method::public(MethodBody::script(
                r#"
                let plan = self.get("itinerary");
                if (len(plan) == 0) { return null; }
                let next = plan[0];
                self.set("itinerary", remove(plan, 0));
                return next;
                "#,
            )?),
        )
        .build();
    let agent_id = agent.id();
    fed.runtime_mut(home)?.adopt(agent)?;
    println!("agent {agent_id} created at {home} with itinerary [2, 3, 4, 1]");

    // The travel loop: ask the agent where it wants to go, dispatch it.
    let mut here = home;
    loop {
        let next = fed
            .runtime_mut(here)?
            .invoke_as_system(agent_id, "next_stop", &[])?;
        let Some(next_site) = next.as_int() else {
            break;
        };
        let to = NodeId(next_site as u64);
        if to == here {
            println!("agent asked to stay at {here}; itinerary spent");
            break;
        }
        let t0 = fed.now();
        fed.dispatch_object(here, to, agent_id)?;
        println!(
            "agent travelled {here} -> {to} ({} of virtual time)",
            fed.now().saturating_sub(t0)
        );
        here = to;
    }

    // Back home: the report carries everything it gathered on the way.
    let report = fed
        .runtime_mut(here)?
        .invoke_as_system(agent_id, "report", &[])?;
    println!("\nagent is at {here}; final report:\n{report}");

    let m = report.as_map().expect("report is a map");
    assert_eq!(
        m["visited"],
        Value::list([Value::Int(2), Value::Int(3), Value::Int(4), Value::Int(1)])
    );
    assert_eq!(m["findings"].as_map().expect("map").len(), 4);
    println!(
        "\ntotal traffic: {} messages / {} bytes",
        fed.net_stats().messages_sent,
        fed.net_stats().bytes_sent
    );
    Ok(())
}
