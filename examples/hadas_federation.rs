//! The Figure 2 topology, live: three HADAS sites, Link agreements,
//! Import/Export of a database APO's Ambassadors, local vs. relayed
//! invocation, and dynamic functionality migration.
//!
//! Run with: `cargo run --example hadas_federation`

use mrom::hadas::scenarios::{deploy_employee_db, star_federation};
use mrom::hadas::Federation;
use mrom::net::LinkConfig;
use mrom::value::{NodeId, ObjectId, Value};

fn show_traffic(fed: &Federation, label: &str) {
    let s = fed.net_stats();
    println!(
        "  [net] {label}: {} msgs / {} bytes sent, {} delivered, t = {}",
        s.messages_sent,
        s.bytes_sent,
        s.messages_delivered,
        fed.now()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hub (the database's home) and two spokes over a WAN-ish profile.
    let (mut fed, nodes) = star_federation(42, 3, LinkConfig::wan())?;
    let hub = nodes[0];
    let spokes = &nodes[1..];
    println!("federation up: hub {hub}, spokes {spokes:?}");
    show_traffic(&fed, "after Link handshakes");

    // The IOO of each site knows its Vicinity now.
    for &n in &nodes {
        let ioo = fed.ioo_id(n)?;
        let desc = fed
            .runtime_mut(n)?
            .invoke_as_system(ioo, "describe_site", &[])?;
        println!("  site {n} IOO: {desc}");
    }

    // Integrate the employee DB at the hub and import Ambassadors at the
    // spokes (Import/Export handshake; Ambassadors travel as data).
    let ambassadors: Vec<(NodeId, ObjectId)> = deploy_employee_db(&mut fed, hub, spokes)?;
    show_traffic(&fed, "after Import/Export");

    println!("\n== querying through Ambassadors ==");
    for &(spoke, amb) in &ambassadors {
        let client = fed.runtime_mut(spoke)?.ids_mut().next_id();
        // `count` migrated with the ambassador: served locally, no traffic.
        let before = fed.net_stats().messages_sent;
        let count = fed.call_through_ambassador(spoke, client, amb, "count", &[])?;
        let local_msgs = fed.net_stats().messages_sent - before;
        // `salary_of` stayed home: relayed to the hub.
        let before = fed.net_stats().messages_sent;
        let salary =
            fed.call_through_ambassador(spoke, client, amb, "salary_of", &[Value::from("alice")])?;
        let relay_msgs = fed.net_stats().messages_sent - before;
        println!(
            "  spoke {spoke}: count() = {count} ({local_msgs} msgs), \
             salary_of(alice) = {salary} ({relay_msgs} msgs)"
        );
    }

    println!("\n== dynamic functionality migration ==");
    // Load on the hub grows; move `department_total` out to the edges.
    let updated = fed.migrate_method(hub, "employee-db", "department_total")?;
    println!("  migrated department_total to {updated} ambassadors");
    for &(spoke, amb) in &ambassadors {
        let client = fed.runtime_mut(spoke)?.ids_mut().next_id();
        let before = fed.net_stats().messages_sent;
        let total = fed.call_through_ambassador(
            spoke,
            client,
            amb,
            "department_total",
            &[Value::from("db")],
        )?;
        let msgs = fed.net_stats().messages_sent - before;
        println!("  spoke {spoke}: department_total(db) = {total} ({msgs} msgs — now local)");
    }
    show_traffic(&fed, "final");

    println!("\n== security duality ==");
    // The hosting site cannot mutate its guest; the origin APO can.
    let (spoke, amb) = ambassadors[0];
    let hostile_host = fed.runtime_mut(spoke)?.ids_mut().next_id();
    let result =
        fed.runtime_mut(spoke)?
            .invoke(hostile_host, amb, "deleteMethod", &[Value::from("count")]);
    println!(
        "  host tries deleteMethod on guest -> {}",
        result.unwrap_err()
    );

    Ok(())
}
