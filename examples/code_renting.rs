//! Yourdon's "code renting" via meta-mutability (§3 of the paper): a
//! rented object contacts a charging object before every invocation, by
//! installing a level-1 meta-invoke whose pre-procedure performs the
//! charging.
//!
//! "Since the pre-procedure is on the invoke method itself, it applies to
//! the invocation of all methods in the object, as opposed to specific
//! methods."
//!
//! Run with: `cargo run --example code_renting`

use mrom::core::{ClassSpec, DataItem, Method, MethodBody, Runtime};
use mrom::value::{NodeId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = Runtime::new(NodeId(9));

    // The billing service: an ordinary object that tallies per-client fees.
    rt.classes_mut().register(
        ClassSpec::new("billing")
            .fixed_data("ledger", DataItem::public(Value::map::<String, _>([])))
            .fixed_method(
                "charge",
                Method::public(MethodBody::script(
                    r#"
                    param client;
                    param fee;
                    let ledger = self.get("ledger");
                    let key = str(client);
                    let owed = 0;
                    if (contains(ledger, key)) { owed = ledger[key]; }
                    ledger[key] = owed + fee;
                    self.set("ledger", ledger);
                    return ledger[key];
                    "#,
                )?),
            ),
    )?;

    // The rented component: a text-processing object whose vendor wants
    // 3 credits per call, whoever the caller and whatever the method.
    rt.classes_mut().register(
        ClassSpec::new("rented-text-tools")
            .fixed_method(
                "shout",
                Method::public(MethodBody::script("param s; return upper(s) + \"!\";")?),
            )
            .fixed_method(
                "word_count",
                Method::public(MethodBody::script(
                    "param s; return len(split(trim(s), \" \"));",
                )?),
            ),
    )?;

    let billing = rt.create("billing")?;
    let tools = rt.create("rented-text-tools")?;

    // The vendor attaches the rent collector: a meta_invoke whose
    // pre-procedure charges the *caller* through the billing object, then
    // installs it as level 1. From now on every invocation of every method
    // is metered — no change to any business method.
    let vendor = rt.object(tools).expect("tools exists").id();
    let meta_invoke = Method::public(MethodBody::script(
        "param mname; param margs; return self.invoke(mname, margs);",
    )?)
    .with_pre(MethodBody::script(&format!(
        r#"
        param mname;
        param margs;
        self.send(objectref("{billing}"), "charge", [str(self.caller()), 3]);
        self.log("charged 3 credits for " + mname);
        return true;
        "#
    ))?);
    rt.object_mut(tools)
        .expect("tools exists")
        .add_method(vendor, "meta_invoke", meta_invoke)?;
    rt.object_mut(tools)
        .expect("tools exists")
        .install_meta_invoke(vendor, "meta_invoke")?;

    println!("== two clients use the rented component ==");
    let alice = rt.ids_mut().next_id();
    let bob = rt.ids_mut().next_id();
    println!(
        "alice: shout(\"hello\") -> {}",
        rt.invoke(alice, tools, "shout", &[Value::from("hello")])?
    );
    println!(
        "alice: word_count(...) -> {}",
        rt.invoke(alice, tools, "word_count", &[Value::from("one two three")])?
    );
    println!(
        "bob:   shout(\"hi\")    -> {}",
        rt.invoke(bob, tools, "shout", &[Value::from("hi")])?
    );

    println!("\n== the vendor reads the ledger ==");
    let ledger = rt
        .object(billing)
        .expect("billing exists")
        .read_data(billing, "ledger")?;
    println!("ledger: {ledger}");
    let ledger_map = ledger.as_map().expect("ledger is a map");
    assert_eq!(ledger_map[&alice.to_string()], Value::Int(6));
    assert_eq!(ledger_map[&bob.to_string()], Value::Int(3));

    println!("\n== charging trail (node log) ==");
    for (who, line) in mrom::obs::log_lines_for(rt.node()) {
        println!("  {who}: {line}");
    }

    // Lease over: the vendor pops the tower and calls are free again.
    rt.object_mut(tools)
        .expect("tools exists")
        .uninstall_meta_invoke(vendor)?;
    rt.invoke(alice, tools, "shout", &[Value::from("free")])?;
    let ledger = rt
        .object(billing)
        .expect("billing exists")
        .read_data(billing, "ledger")?;
    println!("\nafter uninstall, ledger unchanged: {ledger}");

    Ok(())
}
