//! The introduction's motivation, made concrete: "the decision as to how
//! to split the functionality of an application between components (e.g.,
//! between a client and a server ...) can be deferred and made
//! on-the-fly."
//!
//! A formatting service starts fully server-side. As a client's call rate
//! grows and the link is slow, the deployment *measures* the traffic and
//! migrates the hot method into the client-side Ambassador at runtime — no
//! redeploy, no recompilation, no client change.
//!
//! Run with: `cargo run --example load_split`

use mrom::core::{ClassSpec, DataItem, Method, MethodBody};
use mrom::hadas::{AmbassadorSpec, Federation};
use mrom::net::{LinkConfig, NetworkConfig};
use mrom::value::{NodeId, Value};

fn formatting_service() -> ClassSpec {
    ClassSpec::new("formatter")
        .fixed_data("style", DataItem::public(Value::from("title")))
        .fixed_method(
            "format_name",
            Method::public(
                MethodBody::script(
                    r#"
                    param raw;
                    let s = trim(raw);
                    let parts = split(s, " ");
                    let out = [];
                    for (p in parts) {
                        if (len(p) > 0) {
                            out = push(out, upper(substr(p, 0, 1)) + lower(substr(p, 1, len(p))));
                        }
                    }
                    return join(out, " ");
                    "#,
                )
                .expect("script parses"),
            ),
        )
        .fixed_method(
            "set_style",
            Method::public(
                MethodBody::script("param s; self.set(\"style\", s); return s;")
                    .expect("script parses"),
            ),
        )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slow WAN between the client site and the server site.
    let server = NodeId(1);
    let client_site = NodeId(2);
    let cfg = NetworkConfig::new(7).with_default_link(
        LinkConfig::new()
            .latency_us(120_000) // 120 ms RTT/2
            .bandwidth_bytes_per_sec(32_000),
    );
    let mut fed = Federation::new(cfg);
    fed.add_site(server)?;
    fed.add_site(client_site)?;
    fed.link(client_site, server)?;

    // Initial split decision: everything stays on the server; the
    // ambassador is a pure relay.
    let apo =
        formatting_service().instantiate_as(fed.runtime_mut(server)?.ids_mut().next_id(), None);
    fed.integrate_apo(server, "formatter", apo, AmbassadorSpec::relay_only())?;
    let amb = fed.import_apo(client_site, server, "formatter")?;
    let client = fed.runtime_mut(client_site)?.ids_mut().next_id();

    let names = [
        "ada lovelace",
        "grace hopper",
        "barbara liskov",
        "frances allen",
        "lynn conway",
    ];

    println!("== phase 1: thin client (every call crosses the WAN) ==");
    let t0 = fed.now();
    let msgs0 = fed.net_stats().messages_sent;
    for name in &names {
        let out = fed.call_through_ambassador(
            client_site,
            client,
            amb,
            "format_name",
            &[Value::from(*name)],
        )?;
        println!("  format_name({name:?}) = {out}");
    }
    let relay_time = fed.now().saturating_sub(t0);
    let relay_msgs = fed.net_stats().messages_sent - msgs0;
    println!(
        "  {} calls took {relay_time} and {relay_msgs} messages",
        names.len()
    );

    println!("\n== the deployment re-decides the split at runtime ==");
    let moved = fed.migrate_method(server, "formatter", "format_name")?;
    println!("  migrated format_name into {moved} ambassador(s)");

    println!("\n== phase 2: fat client (the hot method runs at the edge) ==");
    let t1 = fed.now();
    let msgs1 = fed.net_stats().messages_sent;
    for name in &names {
        let out = fed.call_through_ambassador(
            client_site,
            client,
            amb,
            "format_name",
            &[Value::from(*name)],
        )?;
        println!("  format_name({name:?}) = {out}");
    }
    let local_time = fed.now().saturating_sub(t1);
    let local_msgs = fed.net_stats().messages_sent - msgs1;
    println!(
        "  {} calls took {local_time} and {local_msgs} messages",
        names.len()
    );

    println!(
        "\nsplit decision moved {relay_msgs} messages off the WAN; \
         virtual time per batch {relay_time} -> {local_time}"
    );

    // The rarely used admin method still relays — a sensible mixed split.
    let out = fed.call_through_ambassador(
        client_site,
        client,
        amb,
        "set_style",
        &[Value::from("plain")],
    )?;
    println!("admin call still relayed to the server: set_style -> {out}");

    Ok(())
}
