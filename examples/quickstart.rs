//! Quickstart: build a mutable reflective object, interrogate it, mutate
//! it, wrap it, and ship it through its own migration image.
//!
//! Run with: `cargo run --example quickstart`

use mrom::core::{invoke, DataItem, Method, MethodBody, MromObject, NoWorld, ObjectBuilder};
use mrom::value::{IdGenerator, NodeId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ids = IdGenerator::new(NodeId(1));

    // 1. Construct an object with a fixed core (structure guaranteed for
    //    life) and nothing else. The nine MROM meta-methods are bundled in
    //    automatically — the object carries its own reflection.
    let mut obj = ObjectBuilder::new(ids.next_id())
        .class("greeter")
        .fixed_data("greeting", DataItem::public(Value::from("hello")))
        .fixed_method(
            "greet",
            Method::public(MethodBody::script(
                "param who; return self.get(\"greeting\") + \", \" + who + \"!\";",
            )?),
        )
        .build();

    let me = obj.id();
    let visitor = ids.next_id();
    let mut world = NoWorld;

    println!("== self-representation ==");
    // A host that has never seen this object asks it about itself.
    let description = invoke(
        &mut obj,
        &mut world,
        visitor,
        "getMethod",
        &[Value::from("greet")],
    )?;
    println!("visitor asks getMethod(\"greet\") -> {description}");
    println!("describe (visitor view): {}", obj.describe(visitor));

    println!("\n== invocation ==");
    let out = invoke(
        &mut obj,
        &mut world,
        visitor,
        "greet",
        &[Value::from("world")],
    )?;
    println!("greet(\"world\") -> {out}");

    println!("\n== weak typing ==");
    // The paper's example: an HTML-wrapped figure used in arithmetic.
    obj.add_data(me, "raw_metric", Value::from("<td><b> 42 </b></td>"))?;
    obj.add_method(
        me,
        "metric_plus",
        Method::public(MethodBody::script(
            "param n; return coerce(self.get(\"raw_metric\"), \"int\") + n;",
        )?),
    )?;
    let out = invoke(&mut obj, &mut world, me, "metric_plus", &[Value::Int(8)])?;
    println!("coerce(\"<td><b> 42 </b></td>\") + 8 -> {out}");

    println!("\n== runtime mutability ==");
    // Grow a method, then replace its body while keeping its name.
    obj.add_method(
        me,
        "mood",
        Method::public(MethodBody::script("return \"cheerful\";")?),
    )?;
    println!(
        "mood() -> {}",
        invoke(&mut obj, &mut world, visitor, "mood", &[])?
    );
    obj.set_method(
        me,
        "mood",
        &Value::map([("body", Value::from("return \"grumpy\";"))]),
    )?;
    println!(
        "after setMethod: mood() -> {}",
        invoke(&mut obj, &mut world, visitor, "mood", &[])?
    );

    println!("\n== wrapping: pre- and post-procedures ==");
    obj.add_method(
        me,
        "divide",
        Method::public(MethodBody::script("param a; param b; return a / b;")?)
            // Assertion-style pre: refuse zero divisors before the body runs.
            .with_pre(MethodBody::script("param a; param b; return b != 0;")?)
            // Post sees [result, ...args]: check the arithmetic.
            .with_post(MethodBody::script(
                "param r; param a; param b; return r * b <= a;",
            )?),
    )?;
    println!(
        "divide(10, 3) -> {}",
        invoke(
            &mut obj,
            &mut world,
            me,
            "divide",
            &[Value::Int(10), Value::Int(3)]
        )?
    );
    let veto = invoke(
        &mut obj,
        &mut world,
        me,
        "divide",
        &[Value::Int(10), Value::Int(0)],
    );
    println!("divide(10, 0) -> {}", veto.unwrap_err());

    println!("\n== security == encapsulation ==");
    obj.add_data(me, "secret", Value::from("classified"))?;
    let denied = obj.read_data(visitor, "secret");
    println!("visitor reads secret -> {}", denied.unwrap_err());
    // Grant exactly one principal — object-granularity ACLs.
    obj.set_data_item(
        me,
        "secret",
        &Value::map([("read_acl", Value::list([Value::Str(visitor.to_string())]))]),
    )?;
    println!("after grant      -> {}", obj.read_data(visitor, "secret")?);
    // What you may not read, you cannot even see listed.
    let other = ids.next_id();
    println!(
        "item names visible to a third party: {:?}",
        obj.list_data(other)
            .iter()
            .map(|(n, _)| n.clone())
            .collect::<Vec<_>>()
    );

    println!("\n== self-contained migration ==");
    let image = obj.migration_image(me)?;
    println!("object serialized itself into {} bytes", image.len());
    let mut clone = MromObject::from_image(&image)?;
    let out = invoke(
        &mut clone,
        &mut world,
        visitor,
        "greet",
        &[Value::from("new host")],
    )?;
    println!("unpacked copy still works: {out}");
    assert_eq!(clone, obj);
    println!("round trip is exact");

    Ok(())
}
