//! The paper's §5 running example, end to end: before shutting the
//! employee database down, its administrator rewrites the invocation
//! semantics of every deployed Ambassador so that remote users "can have
//! instant meaningful results for their queries, instead of long waiting
//! and misunderstood error messages".
//!
//! Run with: `cargo run --example db_maintenance`

use mrom::hadas::scenarios::{
    deploy_employee_db, lift_maintenance_notice, push_maintenance_notice, star_federation,
};
use mrom::net::LinkConfig;
use mrom::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut fed, nodes) = star_federation(2026, 4, LinkConfig::wan())?;
    let hub = nodes[0];
    let spokes = &nodes[1..];
    let ambassadors = deploy_employee_db(&mut fed, hub, spokes)?;
    println!(
        "employee DB at {hub}; ambassadors deployed to {:?}",
        ambassadors.iter().map(|(n, _)| *n).collect::<Vec<_>>()
    );

    let query = |fed: &mut mrom::hadas::Federation, label: &str| {
        println!("\n-- {label} --");
        for &(spoke, amb) in &ambassadors {
            let client = fed
                .runtime_mut(spoke)
                .expect("spoke exists")
                .ids_mut()
                .next_id();
            match fed.call_through_ambassador(spoke, client, amb, "count", &[]) {
                Ok(v) => println!("  client at {spoke}: count() = {v}"),
                Err(e) => println!("  client at {spoke}: ERROR {e}"),
            }
            match fed.call_through_ambassador(
                spoke,
                client,
                amb,
                "salary_of",
                &[Value::from("bob")],
            ) {
                Ok(v) => println!("  client at {spoke}: salary_of(bob) = {v}"),
                Err(e) => println!("  client at {spoke}: ERROR {e}"),
            }
        }
    };

    query(&mut fed, "normal operation");

    // The administrator announces maintenance: ONE push per ambassador, no
    // client-side change, no APO method touched.
    let updated = push_maintenance_notice(&mut fed, hub)?;
    println!("\nadministrator pushed maintenance notice to {updated} ambassadors");

    // Simulate the database being unreachable: partition the hub away.
    for &spoke in spokes {
        fed.net_config_mut().partition(hub, spoke);
    }
    println!("hub partitioned (database is now really down)");

    // Clients keep getting instant, meaningful answers — the ambassador's
    // rewritten invoke answers locally; nothing waits on the dead link.
    query(&mut fed, "during maintenance (hub unreachable)");

    // Maintenance over: heal and lift the notice.
    for &spoke in spokes {
        fed.net_config_mut().heal(hub, spoke);
    }
    let restored = lift_maintenance_notice(&mut fed, hub)?;
    println!("\nnotice lifted on {restored} ambassadors");
    query(&mut fed, "after maintenance");

    println!(
        "\ntotal protocol traffic: {} messages, {} bytes",
        fed.net_stats().messages_sent,
        fed.net_stats().bytes_sent
    );
    Ok(())
}
