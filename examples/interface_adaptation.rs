//! Interface adaptation — the §1 motivation for mutability: "Mutability is
//! necessary to enable objects to *adjust* to the new context under which
//! they are intended to operate ... particularly important when the object
//! may execute in different hosting environments, and/or when some
//! negotiation is needed in order to create the initial interaction."
//!
//! Three hosts expect three different calling conventions. One mobile
//! worker object visits each, interrogates the host's published contract
//! (self-representation on the host side), and *grows an adapter method*
//! matching that contract (mutability on its own side) — no recompilation,
//! no prior agreement, no common interface definition.
//!
//! Run with: `cargo run --example interface_adaptation`

use mrom::core::{
    invoke, Acl, DataItem, Method, MethodBody, MromObject, NoWorld, ObjectBuilder, Runtime,
};
use mrom::value::{NodeId, Value};

/// Builds one of the three host environments, each publishing a different
/// contract for the plugin slot: the method name it will call and the
/// argument shape it passes.
fn make_host(node: u64, contract_method: &str, arg_style: &str) -> Runtime {
    let mut rt = Runtime::new(NodeId(node));
    let contract = Value::map([
        ("plugin_method", Value::from(contract_method)),
        ("arg_style", Value::from(arg_style)),
    ]);
    let host_obj = ObjectBuilder::new(rt.ids_mut().next_id())
        .class("host-environment")
        .fixed_data("plugin_contract", DataItem::public(contract))
        .build();
    rt.adopt(host_obj).unwrap();
    rt
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The worker's stable core: a `summarize` capability with a fixed
    // calling convention of its own (one list argument).
    let mut scratch_ids = mrom::value::IdGenerator::new(NodeId(99));
    let worker = ObjectBuilder::new(scratch_ids.next_id())
        .class("word-counter")
        .meta_acl(Acl::Public) // it must reshape itself in foreign hosts
        .fixed_method(
            "summarize",
            Method::public(MethodBody::script(
                r#"
                param texts;
                let words = 0;
                for (t in texts) {
                    words = words + len(split(trim(t), " "));
                }
                return {"documents": len(texts), "words": words};
                "#,
            )?),
        )
        // The negotiation logic is itself part of the worker: given a host
        // contract, grow whatever adapter the host expects.
        .fixed_method(
            "adapt_to",
            Method::public(MethodBody::script(
                r#"
                param contract;
                let wanted = contract["plugin_method"];
                let style = contract["arg_style"];
                if (self.has_method(wanted)) {
                    return "already adapted";
                }
                let body = "";
                if (style == "single-text") {
                    # Host passes one string; wrap it in a list.
                    body = "param text; return self.invoke(\"summarize\", [[text]]);";
                }
                if (style == "list-of-texts") {
                    # Host already passes a list; forward as-is.
                    body = "param texts; return self.invoke(\"summarize\", [texts]);";
                }
                if (style == "batch-map") {
                    # Host passes {"batch": [...]}.
                    body = "param req; return self.invoke(\"summarize\", [req[\"batch\"]]);";
                }
                if (body == "") {
                    fail("cannot satisfy contract style: " + style);
                }
                self.add_method(wanted, {"body": body, "invoke_acl": "public"});
                return "grew " + wanted + " for style " + style;
                "#,
            )?),
        )
        .build();
    let worker_id = worker.id();
    let image = worker.migration_image(worker_id)?;
    println!("worker object built; core interface: summarize(texts)\n");

    let hosts: Vec<(Runtime, &str, Value)> = vec![
        (
            make_host(1, "process", "single-text"),
            "process",
            Value::from("the quick brown fox"),
        ),
        (
            make_host(2, "handle_documents", "list-of-texts"),
            "handle_documents",
            Value::list([Value::from("one two"), Value::from("three four five")]),
        ),
        (
            make_host(3, "run_batch", "batch-map"),
            "run_batch",
            Value::map([(
                "batch",
                Value::list([Value::from("a b c"), Value::from("d")]),
            )]),
        ),
    ];

    for (mut rt, call_as, payload) in hosts {
        let node = rt.node();
        // The worker arrives as data and is adopted.
        let visitor = MromObject::from_image(&image)?;
        rt.adopt(visitor)?;
        // Negotiation: the host hands its contract to the newcomer.
        let host_obj_id = rt
            .object_ids()
            .into_iter()
            .find(|&id| {
                rt.object(id)
                    .is_some_and(|o| o.class_name() == "host-environment")
            })
            .expect("host object exists");
        let contract = rt
            .object(host_obj_id)
            .unwrap()
            .read_data(host_obj_id, "plugin_contract")?;
        let verdict = rt.invoke(host_obj_id, worker_id, "adapt_to", &[contract])?;
        println!("host {node}: negotiation -> {verdict}");
        // The host now calls the worker in its own dialect.
        let result = rt.invoke(host_obj_id, worker_id, call_as, &[payload])?;
        println!("host {node}: {call_as}(...) -> {result}");
        // The worker's core was never touched.
        let mut check = rt.evict(worker_id)?;
        let mut world = NoWorld;
        assert!(invoke(
            &mut check,
            &mut world,
            worker_id,
            "summarize",
            &[Value::list([Value::from("still intact")])]
        )
        .is_ok());
        println!("host {node}: fixed core intact\n");
    }

    // A host with an unsupported convention is refused cleanly.
    let mut rt = make_host(4, "execute", "xml-envelope");
    let visitor = MromObject::from_image(&image)?;
    rt.adopt(visitor)?;
    let host_obj_id = rt.object_ids()[0];
    let contract = Value::map([
        ("plugin_method", Value::from("execute")),
        ("arg_style", Value::from("xml-envelope")),
    ]);
    let refusal = rt.invoke(host_obj_id, worker_id, "adapt_to", &[contract]);
    println!("host n4: unsupported contract -> {}", refusal.unwrap_err());

    Ok(())
}
