//! Script-language error type.

use std::fmt;

use mrom_value::{ValueError, ValueKind};

/// Errors raised while lexing, parsing, (de)serializing, or evaluating a
/// script program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScriptError {
    /// Lexical error: unexpected character or malformed literal.
    Lex {
        /// 1-based line.
        line: u32,
        /// Explanation.
        detail: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line of the offending token.
        line: u32,
        /// Explanation.
        detail: String,
    },
    /// Use of a variable that is not in scope.
    UndefinedVariable(String),
    /// Call of a builtin that does not exist.
    UnknownBuiltin(String),
    /// A builtin was called with a bad argument count or kinds.
    BuiltinArgs {
        /// Builtin name.
        name: String,
        /// Explanation.
        detail: String,
    },
    /// A binary/unary operator met operand kinds it does not support.
    TypeMismatch {
        /// Operator spelling (`"+"`, `"<"`, ...).
        op: String,
        /// Left (or only) operand kind.
        lhs: ValueKind,
        /// Right operand kind, if binary.
        rhs: Option<ValueKind>,
    },
    /// Index out of bounds or wrong index kind.
    BadIndex(String),
    /// Division or modulo by zero.
    DivisionByZero,
    /// The evaluator's fuel budget ran out (runaway or hostile code).
    FuelExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// Call stack (host re-entrancy) exceeded the limit.
    CallDepthExceeded(usize),
    /// `break`/`continue` reached the top level outside a loop — a parse
    /// bug if it ever escapes the evaluator.
    StrayLoopControl,
    /// The host rejected or failed a `self.*` call.
    Host(String),
    /// A value-layer error (coercion failure, wire error) surfaced.
    Value(ValueError),
    /// Program deserialization met a malformed tree.
    MalformedProgram(String),
    /// An explicit `fail(...)` was executed by the script.
    Raised(String),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { line, detail } => write!(f, "lex error at line {line}: {detail}"),
            ScriptError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            ScriptError::UndefinedVariable(name) => write!(f, "undefined variable {name:?}"),
            ScriptError::UnknownBuiltin(name) => write!(f, "unknown builtin {name:?}"),
            ScriptError::BuiltinArgs { name, detail } => {
                write!(f, "bad arguments to {name}: {detail}")
            }
            ScriptError::TypeMismatch { op, lhs, rhs } => match rhs {
                Some(rhs) => write!(f, "operator {op} not defined for {lhs} and {rhs}"),
                None => write!(f, "operator {op} not defined for {lhs}"),
            },
            ScriptError::BadIndex(detail) => write!(f, "bad index: {detail}"),
            ScriptError::DivisionByZero => write!(f, "division by zero"),
            ScriptError::FuelExhausted { budget } => {
                write!(f, "fuel budget of {budget} steps exhausted")
            }
            ScriptError::CallDepthExceeded(limit) => {
                write!(f, "call depth exceeded limit {limit}")
            }
            ScriptError::StrayLoopControl => {
                write!(f, "break or continue escaped all loops")
            }
            ScriptError::Host(detail) => write!(f, "host call failed: {detail}"),
            ScriptError::Value(e) => write!(f, "value error: {e}"),
            ScriptError::MalformedProgram(detail) => {
                write!(f, "malformed program encoding: {detail}")
            }
            ScriptError::Raised(msg) => write!(f, "script raised: {msg}"),
        }
    }
}

impl std::error::Error for ScriptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScriptError::Value(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValueError> for ScriptError {
    fn from(e: ValueError) -> Self {
        ScriptError::Value(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ScriptError::TypeMismatch {
            op: "+".into(),
            lhs: ValueKind::List,
            rhs: Some(ValueKind::Int),
        };
        assert_eq!(e.to_string(), "operator + not defined for list and int");
        assert!(ScriptError::FuelExhausted { budget: 10 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn value_error_is_source() {
        use std::error::Error;
        let e = ScriptError::from(ValueError::InvalidUtf8);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<ScriptError>();
    }
}
