//! Interprocedural effect signatures for method bodies.
//!
//! The admission analyzer ([`crate::analyze`]) inspects one body at a
//! time. This module lifts those per-body facts to the *method* level
//! and closes them over the call graph: a method's [`EffectSignature`]
//! accounts for everything the method itself does **plus** everything
//! every method it can reach through `self.invoke(...)` does — including
//! recursion (handled by widening) and dynamic dispatch (a computed
//! method name joins every method in the object, the sound worst case).
//!
//! The signature answers the questions the rest of the system gates on:
//!
//! * **purity** — no writes, no structural mutation, no world calls:
//!   safe to replay, reorder, or serve from a cache;
//! * **idempotence** — re-running cannot change the outcome (only
//!   constant-valued writes, nothing structural, no world calls): safe
//!   for a federation layer to *retry* without an exactly-once channel;
//! * **migration safety** — no site-local world calls anywhere in the
//!   reachable call graph: the method keeps working after the object
//!   migrates;
//! * **fuel bound** — a static interprocedural upper bound on fuel, or
//!   `None` when any reachable body loops, recurses, or is opaque.
//!
//! The module is object-agnostic: callers (the object layer in
//! `mrom-core`) build a name → [`LocalEffects`] map for an object's
//! methods — script bodies via [`LocalEffects::of_program`], native and
//! meta bodies via the explicit constructors — and [`solve`] returns the
//! fixpoint. Signatures are deterministic: all sets are ordered, and the
//! fixpoint is a monotone iteration over a finite lattice.

use std::collections::{BTreeMap, BTreeSet};

use mrom_value::Value;

use crate::analyze::{analyze_program, static_fuel_bound, HostManifest};
use crate::ast::{Expr, Program, Stmt};

/// Host-surface names whose use mutates object *structure* (the shape
/// of the data/method sections or the meta-invoke tower), as opposed to
/// writing a data item in place.
const STRUCTURAL_OPS: &[&str] = &[
    "add_data_item",
    "delete_data_item",
    "add_method",
    "set_method",
    "delete_method",
    "install_meta_invoke",
    "uninstall_meta_invoke",
];

/// Per-body effect facts, before interprocedural closure.
///
/// Built from one method body in isolation; [`solve`] joins these over
/// the call graph into [`EffectSignature`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalEffects {
    /// The body's `self.*` capability surface.
    pub manifest: HostManifest,
    /// Every data write (`self.set` / `self.set_data_item`) stores a
    /// literal value — re-running the body writes the same bytes.
    /// Vacuously true for a body with no writes.
    pub constant_writes_only: bool,
    /// Literal `self.invoke` call sites per callee name (site counts,
    /// used by the interprocedural fuel bound).
    pub invoke_counts: BTreeMap<String, u64>,
    /// Static fuel bound of this body alone; `None` when it loops.
    pub local_fuel: Option<u64>,
    /// The body is opaque to analysis (a native closure): assume the
    /// worst on every axis.
    pub opaque: bool,
}

impl LocalEffects {
    /// Extracts local effects from a script body: the analyzer's host
    /// manifest, plus a literal-argument walk for constant-write and
    /// invoke-site facts, plus the body's static fuel bound.
    #[must_use]
    pub fn of_program(program: &Program) -> LocalEffects {
        let manifest = analyze_program(program).manifest;
        let mut constant_writes_only = true;
        let mut invoke_counts = BTreeMap::new();
        for stmt in program.body() {
            walk_stmt(stmt, &mut constant_writes_only, &mut invoke_counts);
        }
        LocalEffects {
            manifest,
            constant_writes_only,
            invoke_counts,
            local_fuel: static_fuel_bound(program),
            opaque: false,
        }
    }

    /// The worst-case element: a body analysis cannot see into (native
    /// Rust closures). Poisons purity, idempotence, migration safety,
    /// and the fuel bound of everything that can reach it.
    #[must_use]
    pub fn opaque() -> LocalEffects {
        LocalEffects {
            opaque: true,
            constant_writes_only: false,
            ..LocalEffects::default()
        }
    }

    /// An effect-free leaf with a known fuel bound (reflective getters
    /// implemented natively: `getStats`, `getEffects`, ...).
    #[must_use]
    pub fn pure_native() -> LocalEffects {
        LocalEffects {
            constant_writes_only: true,
            local_fuel: Some(0),
            ..LocalEffects::default()
        }
    }
}

fn walk_stmt(
    stmt: &Stmt,
    constant_writes_only: &mut bool,
    invoke_counts: &mut BTreeMap<String, u64>,
) {
    let mut on_expr = |e: &Expr| walk_expr(e, constant_writes_only, invoke_counts);
    match stmt {
        Stmt::Let(_, e) | Stmt::Expr(e) | Stmt::Return(Some(e)) => on_expr(e),
        Stmt::Assign(target, e) => {
            on_expr(target);
            on_expr(e);
        }
        Stmt::If(cond, then_body, else_body) => {
            on_expr(cond);
            for s in then_body.iter().chain(else_body) {
                walk_stmt(s, constant_writes_only, invoke_counts);
            }
        }
        Stmt::While(cond, body) => {
            on_expr(cond);
            for s in body {
                walk_stmt(s, constant_writes_only, invoke_counts);
            }
        }
        Stmt::For(_, iter, body) => {
            on_expr(iter);
            for s in body {
                walk_stmt(s, constant_writes_only, invoke_counts);
            }
        }
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
    }
}

fn walk_expr(
    expr: &Expr,
    constant_writes_only: &mut bool,
    invoke_counts: &mut BTreeMap<String, u64>,
) {
    match expr {
        Expr::Literal(_) | Expr::Var(_) => {}
        Expr::Unary(_, a) => walk_expr(a, constant_writes_only, invoke_counts),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            walk_expr(a, constant_writes_only, invoke_counts);
            walk_expr(b, constant_writes_only, invoke_counts);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, constant_writes_only, invoke_counts);
            }
        }
        Expr::HostCall(name, args) => {
            for a in args {
                walk_expr(a, constant_writes_only, invoke_counts);
            }
            match name.as_str() {
                // A write whose value is computed may depend on prior
                // state — re-running it can store different bytes.
                "set" | "set_data_item" if !matches!(args.get(1), Some(Expr::Literal(_))) => {
                    *constant_writes_only = false;
                }
                "invoke" => {
                    if let Some(Expr::Literal(Value::Str(callee))) = args.first() {
                        *invoke_counts.entry(callee.to_string()).or_insert(0) += 1;
                    }
                    // Computed callees surface as `dynamic_methods` in
                    // the manifest; `solve` joins every method then.
                }
                _ => {}
            }
        }
        Expr::ListExpr(items) => {
            for item in items {
                walk_expr(item, constant_writes_only, invoke_counts);
            }
        }
        Expr::MapExpr(entries) => {
            for (_, v) in entries {
                walk_expr(v, constant_writes_only, invoke_counts);
            }
        }
    }
}

/// The interprocedurally closed effect signature of one method: what
/// the method — and everything it can reach through `self.invoke` —
/// can do to its object and host.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSignature {
    /// Data items read anywhere in the reachable call graph.
    pub reads: BTreeSet<String>,
    /// Data items written in place.
    pub writes: BTreeSet<String>,
    /// Structural mutation anywhere (items/methods added or deleted,
    /// method slots replaced, meta-invoke tower changed).
    pub structural: bool,
    /// Host world calls (site-local capabilities) anywhere.
    pub world_calls: BTreeSet<String>,
    /// Methods reachable through literal `self.invoke` edges.
    pub calls: BTreeSet<String>,
    /// A computed data or method name was used somewhere: the read /
    /// write / call sets are lower bounds, not exact.
    pub dynamic: bool,
    /// The reachable graph includes a native body analysis cannot see.
    pub opaque: bool,
    /// No writes, no structural mutation, no world calls: replayable.
    pub pure: bool,
    /// Re-running cannot change the outcome: only constant writes,
    /// nothing structural, no world calls, nothing dynamic or opaque.
    /// The property federation retry policies gate on.
    pub idempotent: bool,
    /// No site-local world calls anywhere: the method keeps working
    /// after migration. The property `Strict` dispatch gates on.
    pub migration_safe: bool,
    /// Interprocedural static fuel bound; `None` when any reachable
    /// body loops, recurses, dispatches dynamically, or is opaque.
    pub fuel_bound: Option<u64>,
}

impl EffectSignature {
    /// The signature as a deterministic value tree (the `getEffects`
    /// reflective surface).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let strs = |set: &BTreeSet<String>| {
            Value::List(set.iter().map(|s| Value::from(s.as_str())).collect())
        };
        Value::map([
            ("reads", strs(&self.reads)),
            ("writes", strs(&self.writes)),
            ("structural", Value::Bool(self.structural)),
            ("world_calls", strs(&self.world_calls)),
            ("calls", strs(&self.calls)),
            ("dynamic", Value::Bool(self.dynamic)),
            ("opaque", Value::Bool(self.opaque)),
            ("pure", Value::Bool(self.pure)),
            ("idempotent", Value::Bool(self.idempotent)),
            ("migration_safe", Value::Bool(self.migration_safe)),
            (
                "fuel_bound",
                match self.fuel_bound {
                    Some(f) => Value::Int(i64::try_from(f).unwrap_or(i64::MAX)),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// Per-method fixpoint state during [`solve`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct State {
    reads: BTreeSet<String>,
    writes: BTreeSet<String>,
    structural: bool,
    world_calls: BTreeSet<String>,
    calls: BTreeSet<String>,
    dynamic: bool,
    /// A computed *method* name reached an invoke: the call edge set is
    /// unknown, so the solver joins every method. Distinct from `dynamic`
    /// (which also covers computed data names — those make the read/write
    /// sets lower bounds but cannot call anything).
    dispatch: bool,
    opaque: bool,
    constant_writes_only: bool,
}

impl State {
    fn seed(local: &LocalEffects) -> State {
        let m = &local.manifest;
        let structural = !m.data_created.is_empty()
            || !m.data_deleted.is_empty()
            || !m.methods_created.is_empty()
            || m.meta_used
                .iter()
                .any(|op| STRUCTURAL_OPS.contains(&op.as_str()));
        State {
            reads: m.data_read.clone(),
            writes: m.data_written.clone(),
            structural,
            world_calls: m.world_calls.clone(),
            calls: m.methods_invoked.clone(),
            dynamic: m.dynamic_data || m.dynamic_methods,
            dispatch: m.dynamic_methods,
            opaque: local.opaque,
            constant_writes_only: local.constant_writes_only,
        }
    }

    /// Monotone join of a callee's state into the caller's. Returns
    /// true when anything grew (the fixpoint's progress test). Sets only
    /// grow and flags only flip one way, so cardinality + flag snapshots
    /// detect change without cloning the whole state.
    fn absorb(&mut self, callee: &State) -> bool {
        fn extend_missing(dst: &mut BTreeSet<String>, src: &BTreeSet<String>) {
            // Clone only what is actually new — re-absorbing an already
            // joined callee costs lookups, not allocations.
            for x in src {
                if !dst.contains(x) {
                    dst.insert(x.clone());
                }
            }
        }
        let before = self.fingerprint();
        extend_missing(&mut self.reads, &callee.reads);
        extend_missing(&mut self.writes, &callee.writes);
        self.structural |= callee.structural;
        extend_missing(&mut self.world_calls, &callee.world_calls);
        extend_missing(&mut self.calls, &callee.calls);
        self.dynamic |= callee.dynamic;
        self.dispatch |= callee.dispatch;
        self.opaque |= callee.opaque;
        self.constant_writes_only &= callee.constant_writes_only;
        self.fingerprint() != before
    }

    fn fingerprint(&self) -> (usize, usize, usize, usize, [bool; 5]) {
        (
            self.reads.len(),
            self.writes.len(),
            self.world_calls.len(),
            self.calls.len(),
            [
                self.structural,
                self.dynamic,
                self.dispatch,
                self.opaque,
                self.constant_writes_only,
            ],
        )
    }
}

/// Closes per-body [`LocalEffects`] over the `self.invoke` call graph
/// and derives the verdicts — the object-level fixpoint behind the
/// `getEffects` meta-method.
///
/// * A literal invoke edge to a **missing** method joins the worst case
///   (the runtime would fault, but a later `add_method` could bind it
///   to anything — the signature must stay sound across structural
///   change within the analyzed shape).
/// * A **dynamic** invoke (computed method name) joins *every* method.
/// * **Recursion** converges by monotone iteration for the set-based
///   facts and widens the fuel bound to `None`.
#[must_use]
pub fn solve(methods: &BTreeMap<String, LocalEffects>) -> BTreeMap<String, EffectSignature> {
    let names: Vec<&String> = methods.keys().collect();
    let index: BTreeMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let opaque_state = State {
        opaque: true,
        constant_writes_only: false,
        ..State::default()
    };

    // Seed states. A literal edge to a missing method joins the worst
    // case up front; the poison then rides ordinary absorption to every
    // transitive caller (a caller inheriting the ghost name in `calls`
    // also inherits the opaque flag from the same state).
    let mut states: Vec<State> = methods.values().map(State::seed).collect();
    for s in &mut states {
        if s.calls.iter().any(|c| !index.contains_key(c.as_str())) {
            s.absorb(&opaque_state);
        }
    }

    // The join of every seed is the least upper bound any state can
    // reach (every fixpoint state is a union of seeds). A dynamic
    // dispatch must join *every* method, so it absorbs this one
    // precomputed universe instead of walking all n states each round.
    let mut universe = State {
        constant_writes_only: true,
        ..State::default()
    };
    for s in &states {
        universe.absorb(s);
    }

    // Chaotic iteration to fixpoint with source-change tracking: the
    // edge (caller, callee) is re-joined only while one of its endpoints
    // changed in the previous or current round — a caller that grows a
    // new call edge is itself marked dirty, so the new edge gets a full
    // refresh next round. Every set is bounded by the finite universe of
    // names appearing in the object, so this terminates.
    let n = states.len();
    let mut dirty = vec![true; n];
    loop {
        let mut changed = false;
        let mut next_dirty = vec![false; n];
        for i in 0..n {
            let was_dirty = dirty[i];
            let mut s = std::mem::take(&mut states[i]);
            let mut grew = false;
            if s.dispatch {
                // The universe never changes: one absorb is final, and
                // a state that just turned dispatch is dirty next round.
                if was_dirty {
                    grew = s.absorb(&universe);
                }
            } else {
                let callees: Vec<usize> = s
                    .calls
                    .iter()
                    .filter_map(|c| index.get(c.as_str()).copied())
                    .filter(|&j| j != i)
                    .collect();
                for j in callees {
                    if was_dirty || dirty[j] || next_dirty[j] {
                        grew |= s.absorb(&states[j]);
                    }
                }
            }
            states[i] = s;
            if grew {
                next_dirty[i] = true;
                changed = true;
            }
        }
        dirty = next_dirty;
        if !changed {
            break;
        }
    }

    // Interprocedural fuel: DFS with on-stack cycle detection; a cycle,
    // a dynamic dispatch, an opaque body, or a loop (local None) widens
    // to None.
    let mut fuel_memo: BTreeMap<String, Option<u64>> = BTreeMap::new();
    let mut on_stack: BTreeSet<String> = BTreeSet::new();
    for name in &names {
        fuel_of(name, methods, &mut fuel_memo, &mut on_stack);
    }

    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let s = &states[i];
            let pure = s.writes.is_empty()
                && !s.structural
                && s.world_calls.is_empty()
                && !s.dynamic
                && !s.opaque;
            let idempotent = !s.structural
                && s.world_calls.is_empty()
                && !s.dynamic
                && !s.opaque
                && s.constant_writes_only;
            let migration_safe = s.world_calls.is_empty() && !s.opaque;
            (
                (*name).clone(),
                EffectSignature {
                    reads: s.reads.clone(),
                    writes: s.writes.clone(),
                    structural: s.structural,
                    world_calls: s.world_calls.clone(),
                    calls: s.calls.clone(),
                    dynamic: s.dynamic,
                    opaque: s.opaque,
                    pure,
                    idempotent,
                    migration_safe,
                    fuel_bound: fuel_memo.get(name.as_str()).copied().flatten(),
                },
            )
        })
        .collect()
}

fn fuel_of(
    name: &str,
    methods: &BTreeMap<String, LocalEffects>,
    memo: &mut BTreeMap<String, Option<u64>>,
    on_stack: &mut BTreeSet<String>,
) -> Option<u64> {
    if let Some(&cached) = memo.get(name) {
        return cached;
    }
    if on_stack.contains(name) {
        // Recursive edge: widen. The *cycle members* get None via their
        // own computation observing this None.
        return None;
    }
    let Some(local) = methods.get(name) else {
        memo.insert(name.to_owned(), None);
        return None;
    };
    if local.opaque || local.manifest.dynamic_methods {
        memo.insert(name.to_owned(), None);
        return None;
    }
    on_stack.insert(name.to_owned());
    let mut total = local.local_fuel;
    for (callee, &count) in &local.invoke_counts {
        let callee_fuel = fuel_of(callee, methods, memo, on_stack);
        total = match (total, callee_fuel) {
            (Some(t), Some(c)) => c.checked_mul(count).and_then(|x| t.checked_add(x)),
            _ => None,
        };
    }
    on_stack.remove(name);
    memo.insert(name.to_owned(), total);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;

    fn local(src: &str) -> LocalEffects {
        LocalEffects::of_program(&Program::parse(src).unwrap())
    }

    fn graph(entries: &[(&str, LocalEffects)]) -> BTreeMap<String, LocalEffects> {
        entries
            .iter()
            .map(|(n, l)| ((*n).to_owned(), l.clone()))
            .collect()
    }

    #[test]
    fn pure_reader_is_pure_idempotent_and_bounded() {
        let sigs = solve(&graph(&[("peek", local("return self.get(\"x\") + 1;"))]));
        let sig = &sigs["peek"];
        assert!(sig.pure && sig.idempotent && sig.migration_safe);
        assert!(sig.reads.contains("x"));
        assert!(sig.fuel_bound.is_some());
    }

    #[test]
    fn constant_write_is_idempotent_but_not_pure() {
        let sigs = solve(&graph(&[(
            "reset",
            local("self.set(\"x\", 0); return null;"),
        )]));
        let sig = &sigs["reset"];
        assert!(!sig.pure, "writes");
        assert!(sig.idempotent, "constant write replays identically");
        assert!(sig.writes.contains("x"));
    }

    #[test]
    fn computed_write_is_not_idempotent() {
        let sigs = solve(&graph(&[(
            "bump",
            local("self.set(\"x\", self.get(\"x\") + 1); return null;"),
        )]));
        let sig = &sigs["bump"];
        assert!(!sig.idempotent, "read-modify-write");
        assert!(sig.migration_safe);
    }

    #[test]
    fn effects_flow_through_invoke_edges() {
        let sigs = solve(&graph(&[
            ("outer", local("return self.invoke(\"inner\", []);")),
            (
                "inner",
                local("self.set(\"x\", self.get(\"x\") + 1); return null;"),
            ),
        ]));
        let outer = &sigs["outer"];
        assert!(
            outer.writes.contains("x"),
            "callee write visible: {outer:?}"
        );
        assert!(!outer.idempotent);
        assert!(outer.fuel_bound.is_some(), "loop-free chain stays bounded");
        assert!(
            outer.fuel_bound.unwrap() > sigs["inner"].fuel_bound.unwrap(),
            "caller pays for callee"
        );
    }

    #[test]
    fn recursion_widens_fuel_but_keeps_set_facts() {
        let sigs = solve(&graph(&[
            ("ping", local("return self.invoke(\"pong\", []);")),
            (
                "pong",
                local("let r = self.get(\"x\"); return self.invoke(\"ping\", []);"),
            ),
        ]));
        assert_eq!(sigs["ping"].fuel_bound, None, "cycle widens");
        assert_eq!(sigs["pong"].fuel_bound, None);
        assert!(sigs["ping"].reads.contains("x"), "set facts converge");
        assert!(sigs["ping"].migration_safe);
    }

    #[test]
    fn dynamic_invoke_joins_every_method() {
        let sigs = solve(&graph(&[
            ("router", local("param m; return self.invoke(m, []);")),
            ("worker", local("self.emit_to_console(1); return null;")),
        ]));
        let router = &sigs["router"];
        assert!(router.dynamic);
        assert!(
            router.world_calls.contains("emit_to_console"),
            "dynamic join pulled in the worker's world call: {router:?}"
        );
        assert!(!router.migration_safe);
        assert_eq!(router.fuel_bound, None);
    }

    #[test]
    fn computed_data_names_do_not_join_the_call_graph() {
        let sigs = solve(&graph(&[
            ("probe", local("param k; return self.get(k);")),
            ("noisy", local("self.beep(1); return null;")),
        ]));
        let probe = &sigs["probe"];
        assert!(probe.dynamic, "computed data name: sets are lower bounds");
        assert!(
            probe.world_calls.is_empty(),
            "a computed data name cannot call anything: {probe:?}"
        );
        assert!(probe.migration_safe);
    }

    #[test]
    fn missing_callee_is_opaque() {
        let sigs = solve(&graph(&[(
            "hopeful",
            local("return self.invoke(\"absent\", []);"),
        )]));
        assert!(sigs["hopeful"].opaque);
        assert!(!sigs["hopeful"].idempotent);
        assert!(!sigs["hopeful"].migration_safe);
    }

    #[test]
    fn structural_mutation_and_world_calls_are_flagged() {
        let sigs = solve(&graph(&[(
            "installer",
            local("self.add_method(\"m\", \"return 1;\"); return null;"),
        )]));
        assert!(sigs["installer"].structural);
        assert!(!sigs["installer"].idempotent);
        assert!(sigs["installer"].migration_safe, "structural but site-free");

        let sigs = solve(&graph(&[("beeper", local("self.beep(1); return null;"))]));
        assert!(sigs["beeper"].world_calls.contains("beep"));
        assert!(!sigs["beeper"].migration_safe);
    }

    #[test]
    fn opaque_native_poisons_callers() {
        let sigs = solve(&graph(&[
            ("caller", local("return self.invoke(\"native\", []);")),
            ("native", LocalEffects::opaque()),
        ]));
        assert!(sigs["caller"].opaque);
        assert!(!sigs["caller"].pure);
        assert!(!sigs["caller"].migration_safe);
        assert_eq!(sigs["caller"].fuel_bound, None);
    }

    #[test]
    fn signatures_are_deterministic() {
        let g = graph(&[
            (
                "a",
                local("return self.invoke(\"b\", []) + self.get(\"x\");"),
            ),
            ("b", local("self.set(\"y\", 2); return null;")),
            ("c", LocalEffects::pure_native()),
        ]);
        let one = solve(&g);
        let two = solve(&g);
        assert_eq!(one, two);
        let v1: Vec<Value> = one.values().map(EffectSignature::to_value).collect();
        let v2: Vec<Value> = two.values().map(EffectSignature::to_value).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn loops_widen_local_fuel() {
        let sigs = solve(&graph(&[(
            "spin",
            local("let i = 0; while (i < 10) { i = i + 1; } return i;"),
        )]));
        assert_eq!(sigs["spin"].fuel_bound, None);
        assert!(sigs["spin"].pure, "loops don't affect purity");
    }
}
