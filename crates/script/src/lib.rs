//! # mrom-script
//!
//! A small, fully serializable scripting language used as the *mobile*
//! representation of MROM method bodies.
//!
//! ## Why this exists
//!
//! The paper implements MROM in Java, where method bodies are bytecode that
//! the JVM can ship between heterogeneous hosts. Rust has neither runtime
//! reflection nor runtime code loading, so this reproduction makes
//! behaviour *data*: a method body is either a native Rust closure (fast,
//! host-resident, non-mobile) or a [`Program`] in this language (mobile —
//! it serializes into the same self-contained wire format as every other
//! value, travels inside migration images, and executes on any node).
//!
//! ## Language
//!
//! Statement-oriented with C-ish syntax and `#` line comments:
//!
//! ```text
//! let total = 0;
//! let i = 0;
//! while (i < len(args)) {
//!     total = total + coerce(args[i], "int");
//!     i = i + 1;
//! }
//! return total;
//! ```
//!
//! * Values are [`mrom_value::Value`]s; variables are dynamically typed.
//! * `args` is bound to the invocation parameter list; named parameters
//!   declared by the program (`param x;`) bind positionally on top of it.
//! * Builtins (`len`, `coerce`, `push`, ...) are pure; everything
//!   side-effecting goes through the *host interface* — calls of the form
//!   `self.name(...)` are routed to the embedding object, which is how
//!   scripts reach the MROM meta-methods (`self.invoke("m", [...])`,
//!   `self.set_data("x", v)`, ...).
//! * Execution is *fuel-metered*: every evaluation step burns fuel, so a
//!   hostile or buggy mobile method cannot hold a host hostage. Fuel
//!   exhaustion is an error, not a hang.
//!
//! ## Example
//!
//! ```
//! use mrom_script::{Program, Evaluator, NullHost};
//! use mrom_value::Value;
//!
//! # fn main() -> Result<(), mrom_script::ScriptError> {
//! let program = Program::parse(
//!     "param a; param b; return coerce(a, \"int\") + coerce(b, \"int\");",
//! )?;
//! let mut host = NullHost;
//! let out = Evaluator::new(&mut host)
//!     .run(&program, &[Value::from("<b>2</b>"), Value::Int(3)])?;
//! assert_eq!(out, Value::Int(5));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
mod ast;
mod compile;
pub mod effects;
mod encode;
mod error;
mod eval;
mod lexer;
mod parser;
pub mod verify;
mod vm;

pub use analyze::{
    analyze_program, analyze_with_budget, AnalysisReport, Diagnostic, DiagnosticKind, HostManifest,
    ResourceBudget, Severity,
};
pub use ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
pub use compile::CompiledProgram;
pub use effects::{solve as solve_effects, EffectSignature, LocalEffects};
pub use error::ScriptError;
pub use eval::{Evaluator, HostContext, NullHost, DEFAULT_FUEL};
pub use lexer::{Token, TokenKind};
pub use parser::MAX_EXPR_DEPTH;
pub use verify::{verify, VerifyError};
pub use vm::Vm;

/// Crate-local result alias over [`ScriptError`].
pub type Result<T> = std::result::Result<T, ScriptError>;
