//! Hand-written lexer for the script language.

use crate::error::ScriptError;

/// A lexical token with its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// The token vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable, builtin, or host-call name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (escapes already processed).
    Str(String),
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `let`
    Let,
    /// `param`
    Param,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `self`
    SelfKw,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Human-readable spelling for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier {name:?}"),
            TokenKind::Int(i) => format!("integer {i}"),
            TokenKind::Float(x) => format!("float {x}"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::True => "`true`".into(),
            TokenKind::False => "`false`".into(),
            TokenKind::Null => "`null`".into(),
            TokenKind::Let => "`let`".into(),
            TokenKind::Param => "`param`".into(),
            TokenKind::If => "`if`".into(),
            TokenKind::Else => "`else`".into(),
            TokenKind::While => "`while`".into(),
            TokenKind::For => "`for`".into(),
            TokenKind::In => "`in`".into(),
            TokenKind::Return => "`return`".into(),
            TokenKind::Break => "`break`".into(),
            TokenKind::Continue => "`continue`".into(),
            TokenKind::SelfKw => "`self`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Eq => "`==`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenizes `source` into a token vector ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// [`ScriptError::Lex`] on unexpected characters, unterminated strings, or
/// malformed numeric literals.
pub fn lex(source: &str) -> Result<Vec<Token>, ScriptError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;

    macro_rules! push {
        ($kind:expr) => {
            tokens.push(Token { kind: $kind, line })
        };
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Line comment.
                for t in chars.by_ref() {
                    if t == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                push!(TokenKind::LParen);
            }
            ')' => {
                chars.next();
                push!(TokenKind::RParen);
            }
            '{' => {
                chars.next();
                push!(TokenKind::LBrace);
            }
            '}' => {
                chars.next();
                push!(TokenKind::RBrace);
            }
            '[' => {
                chars.next();
                push!(TokenKind::LBracket);
            }
            ']' => {
                chars.next();
                push!(TokenKind::RBracket);
            }
            ',' => {
                chars.next();
                push!(TokenKind::Comma);
            }
            ';' => {
                chars.next();
                push!(TokenKind::Semi);
            }
            ':' => {
                chars.next();
                push!(TokenKind::Colon);
            }
            '.' => {
                chars.next();
                push!(TokenKind::Dot);
            }
            '+' => {
                chars.next();
                push!(TokenKind::Plus);
            }
            '-' => {
                chars.next();
                push!(TokenKind::Minus);
            }
            '*' => {
                chars.next();
                push!(TokenKind::Star);
            }
            '/' => {
                chars.next();
                push!(TokenKind::Slash);
            }
            '%' => {
                chars.next();
                push!(TokenKind::Percent);
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Eq);
                } else {
                    push!(TokenKind::Assign);
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Ne);
                } else {
                    push!(TokenKind::Bang);
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Le);
                } else {
                    push!(TokenKind::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Ge);
                } else {
                    push!(TokenKind::Gt);
                }
            }
            '&' => {
                chars.next();
                if chars.peek() == Some(&'&') {
                    chars.next();
                    push!(TokenKind::AndAnd);
                } else {
                    return Err(ScriptError::Lex {
                        line,
                        detail: "lone `&`; did you mean `&&`".into(),
                    });
                }
            }
            '|' => {
                chars.next();
                if chars.peek() == Some(&'|') {
                    chars.next();
                    push!(TokenKind::OrOr);
                } else {
                    return Err(ScriptError::Lex {
                        line,
                        detail: "lone `|`; did you mean `||`".into(),
                    });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some(t) = chars.next() {
                    match t {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('\\') => s.push('\\'),
                            Some('"') => s.push('"'),
                            Some('0') => s.push('\0'),
                            Some(other) => {
                                return Err(ScriptError::Lex {
                                    line,
                                    detail: format!("unknown escape `\\{other}`"),
                                })
                            }
                            None => {
                                return Err(ScriptError::Lex {
                                    line,
                                    detail: "unterminated string".into(),
                                })
                            }
                        },
                        '\n' => {
                            return Err(ScriptError::Lex {
                                line,
                                detail: "newline inside string literal".into(),
                            })
                        }
                        other => s.push(other),
                    }
                }
                if !closed {
                    return Err(ScriptError::Lex {
                        line,
                        detail: "unterminated string".into(),
                    });
                }
                push!(TokenKind::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&t) = chars.peek() {
                    if t.is_ascii_digit() {
                        text.push(t);
                        chars.next();
                    } else if t == '.' && !is_float {
                        // Only treat the dot as a decimal point when a digit
                        // follows; `1.foo` stays Int(1) Dot Ident(foo).
                        let mut lookahead = chars.clone();
                        lookahead.next();
                        if lookahead.peek().is_some_and(char::is_ascii_digit) {
                            is_float = true;
                            text.push('.');
                            chars.next();
                        } else {
                            break;
                        }
                    } else if (t == 'e' || t == 'E') && !text.is_empty() {
                        // Exponent part: e[+|-]digits. Only consume when a
                        // well-formed exponent follows; otherwise `2e` lexes
                        // as Int(2) Ident(e).
                        let mut lookahead = chars.clone();
                        lookahead.next();
                        let mut sign = false;
                        if matches!(lookahead.peek(), Some('+') | Some('-')) {
                            sign = true;
                            lookahead.next();
                        }
                        if lookahead.peek().is_some_and(char::is_ascii_digit) {
                            is_float = true;
                            text.push('e');
                            chars.next();
                            if sign {
                                text.push(chars.next().expect("sign present"));
                            }
                            while let Some(&d) = chars.peek() {
                                if d.is_ascii_digit() {
                                    text.push(d);
                                    chars.next();
                                } else {
                                    break;
                                }
                            }
                        }
                        break;
                    } else {
                        break;
                    }
                }
                if is_float {
                    let x: f64 = text.parse().map_err(|e| ScriptError::Lex {
                        line,
                        detail: format!("bad float literal {text:?}: {e}"),
                    })?;
                    push!(TokenKind::Float(x));
                } else {
                    let i: i64 = text.parse().map_err(|e| ScriptError::Lex {
                        line,
                        detail: format!("bad integer literal {text:?}: {e}"),
                    })?;
                    push!(TokenKind::Int(i));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&t) = chars.peek() {
                    if t.is_alphanumeric() || t == '_' {
                        name.push(t);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = match name.as_str() {
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "null" => TokenKind::Null,
                    "let" => TokenKind::Let,
                    "param" => TokenKind::Param,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "for" => TokenKind::For,
                    "in" => TokenKind::In,
                    "return" => TokenKind::Return,
                    "break" => TokenKind::Break,
                    "continue" => TokenKind::Continue,
                    "self" => TokenKind::SelfKw,
                    _ => TokenKind::Ident(name),
                };
                push!(kind);
            }
            other => {
                return Err(ScriptError::Lex {
                    line,
                    detail: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        assert_eq!(
            kinds("let x = 1;"),
            vec![
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_compound_operators() {
        assert_eq!(
            kinds("== = != ! <= < >= > && ||"),
            vec![
                TokenKind::Eq,
                TokenKind::Assign,
                TokenKind::Ne,
                TokenKind::Bang,
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::Ge,
                TokenKind::Gt,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 3.5 1.0"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1.0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dot_after_int_is_not_float_without_digit() {
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![TokenKind::Str("a\nb\"c".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(lex("\"abc"), Err(ScriptError::Lex { .. })));
        assert!(matches!(lex("\"a\nb\""), Err(ScriptError::Lex { .. })));
        assert!(matches!(lex(r#""a\q""#), Err(ScriptError::Lex { .. })));
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("# comment\nlet x = 1;").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Let);
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("self selfish if iffy"),
            vec![
                TokenKind::SelfKw,
                TokenKind::Ident("selfish".into()),
                TokenKind::If,
                TokenKind::Ident("iffy".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(lex("let x = 1 @"), Err(ScriptError::Lex { .. })));
        assert!(matches!(lex("a & b"), Err(ScriptError::Lex { .. })));
        assert!(matches!(lex("a | b"), Err(ScriptError::Lex { .. })));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t # only a comment"), vec![TokenKind::Eof]);
    }
}
