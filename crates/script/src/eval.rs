//! Fuel-metered tree-walking evaluator and the host interface.

use std::collections::{BTreeMap, HashMap};

use mrom_value::{Value, ValueError, ValueKind};

use crate::ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use crate::error::ScriptError;

/// Default fuel budget: generous for real method bodies, small enough that
/// a hostile infinite loop dies in well under a millisecond of wall time
/// per invocation.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// The interface through which a running script reaches its embedding
/// object (`self.name(...)` calls).
///
/// `mrom-core` implements this to expose the MROM meta-methods —
/// `self.invoke`, `self.get_data`, `self.set_data`, `self.add_method`, ... —
/// which is how mobile code performs reflection.
pub trait HostContext {
    /// Handles `self.name(args...)`.
    ///
    /// # Errors
    ///
    /// Implementations should return [`ScriptError::Host`] (or map their own
    /// error types into it) when the call is unknown, denied, or fails.
    fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError>;

    /// Handles `self.name(args...)` from a *compiled* body, carrying the
    /// static call-site index the compiler assigned. Hosts that keep
    /// per-site inline caches override this; the default forwards to
    /// [`HostContext::host_call`], so the two entry points are always
    /// semantically identical.
    ///
    /// # Errors
    ///
    /// Same contract as [`HostContext::host_call`].
    fn host_call_site(
        &mut self,
        site: u32,
        name: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        let _ = site;
        self.host_call(name, args)
    }
}

/// A host that rejects every `self.*` call — for evaluating pure programs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHost;

impl HostContext for NullHost {
    fn host_call(&mut self, name: &str, _args: &[Value]) -> Result<Value, ScriptError> {
        Err(ScriptError::Host(format!(
            "no host bound; cannot call self.{name}"
        )))
    }
}

/// Blanket impl so `&mut H` can be passed where a host is expected.
impl<H: HostContext + ?Sized> HostContext for &mut H {
    fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        (**self).host_call(name, args)
    }

    fn host_call_site(
        &mut self,
        site: u32,
        name: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        (**self).host_call_site(site, name, args)
    }
}

/// Control-flow outcome of executing a statement.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// A fuel-metered evaluator bound to a host.
///
/// # Example
///
/// ```
/// use mrom_script::{Evaluator, NullHost, Program};
/// use mrom_value::Value;
///
/// # fn main() -> Result<(), mrom_script::ScriptError> {
/// let p = Program::parse("let s = 0; for (i in range(5)) { s = s + i; } return s;")?;
/// let mut host = NullHost;
/// let out = Evaluator::new(&mut host).run(&p, &[])?;
/// assert_eq!(out, Value::Int(10));
/// # Ok(())
/// # }
/// ```
pub struct Evaluator<'h, H: HostContext + ?Sized> {
    host: &'h mut H,
    budget: u64,
    fuel: u64,
    host_calls: u64,
}

impl<'h, H: HostContext + ?Sized> Evaluator<'h, H> {
    /// Binds an evaluator to `host` with [`DEFAULT_FUEL`].
    pub fn new(host: &'h mut H) -> Self {
        Self::with_fuel(host, DEFAULT_FUEL)
    }

    /// Binds an evaluator with an explicit fuel budget.
    pub fn with_fuel(host: &'h mut H, fuel: u64) -> Self {
        Evaluator {
            host,
            budget: fuel,
            fuel,
            host_calls: 0,
        }
    }

    /// Fuel consumed by runs so far.
    pub fn fuel_used(&self) -> u64 {
        self.budget - self.fuel
    }

    /// Host calls (`self.…` / world operations) performed by runs so far.
    /// Feeds the observability layer's per-script host-call counters.
    pub fn host_calls(&self) -> u64 {
        self.host_calls
    }

    /// Runs `program` with the given argument list.
    ///
    /// `args` is bound to the variable `args`; declared parameters bind
    /// positionally (missing ones are `null`, extras remain reachable via
    /// `args`). The return value is the argument of the first executed
    /// `return`, or `null` if the body falls off the end.
    ///
    /// # Errors
    ///
    /// Any [`ScriptError`] raised during evaluation, including
    /// [`ScriptError::FuelExhausted`] for runaway programs.
    pub fn run(&mut self, program: &Program, args: &[Value]) -> Result<Value, ScriptError> {
        let mut scopes = Scopes::new();
        scopes.declare("args", Value::List(args.to_vec()));
        for (i, name) in program.params().iter().enumerate() {
            scopes.declare(name, args.get(i).cloned().unwrap_or(Value::Null));
        }
        match self.exec_block(program.body(), &mut scopes)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
            Flow::Break | Flow::Continue => Err(ScriptError::StrayLoopControl),
        }
    }

    fn burn(&mut self, amount: u64) -> Result<(), ScriptError> {
        if self.fuel < amount {
            self.fuel = 0;
            return Err(ScriptError::FuelExhausted {
                budget: self.budget,
            });
        }
        self.fuel -= amount;
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt], scopes: &mut Scopes) -> Result<Flow, ScriptError> {
        scopes.push();
        let result = self.exec_stmts(stmts, scopes);
        scopes.pop();
        result
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], scopes: &mut Scopes) -> Result<Flow, ScriptError> {
        for s in stmts {
            match self.exec_stmt(s, scopes)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt, scopes: &mut Scopes) -> Result<Flow, ScriptError> {
        self.burn(1)?;
        match s {
            Stmt::Let(name, e) => {
                let v = self.eval(e, scopes)?;
                scopes.declare(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(target, e) => {
                let v = self.eval(e, scopes)?;
                self.assign(target, v, scopes)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e, scopes)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then_body, else_body) => {
                if self.eval(cond, scopes)?.truthy() {
                    self.exec_block(then_body, scopes)
                } else {
                    self.exec_block(else_body, scopes)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, scopes)?.truthy() {
                    match self.exec_block(body, scopes)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(name, iter, body) => {
                let items = self.iterable(iter, scopes)?;
                for item in items {
                    scopes.push();
                    scopes.declare(name, item);
                    let flow = self.exec_stmts(body, scopes);
                    scopes.pop();
                    match flow? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(None) => Ok(Flow::Return(Value::Null)),
            Stmt::Return(Some(e)) => {
                let v = self.eval(e, scopes)?;
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    /// Materializes the item sequence a `for` loop walks: list elements,
    /// map keys, string characters, or byte values.
    fn iterable(&mut self, e: &Expr, scopes: &mut Scopes) -> Result<Vec<Value>, ScriptError> {
        let v = self.eval(e, scopes)?;
        iter_items(v)
    }

    fn assign(&mut self, target: &Expr, v: Value, scopes: &mut Scopes) -> Result<(), ScriptError> {
        match target {
            Expr::Var(name) => scopes.set(name, v),
            Expr::Index(base, idx_expr) => {
                let idx = self.eval(idx_expr, scopes)?;
                // Resolve the path (root variable + index chain), then
                // mutate in place.
                let mut path = vec![idx];
                let mut cursor: &Expr = base;
                loop {
                    match cursor {
                        Expr::Var(name) => {
                            let root = scopes.lookup_mut(name)?;
                            return write_path(root, &path, v);
                        }
                        Expr::Index(inner, inner_idx) => {
                            let idx = self.eval(inner_idx, scopes)?;
                            path.push(idx);
                            cursor = inner;
                        }
                        _ => {
                            return Err(ScriptError::BadIndex(
                                "assignment target must be rooted at a variable".into(),
                            ))
                        }
                    }
                }
            }
            _ => Err(ScriptError::BadIndex(
                "assignment target must be a variable or index chain".into(),
            )),
        }
    }

    fn eval(&mut self, e: &Expr, scopes: &mut Scopes) -> Result<Value, ScriptError> {
        self.burn(1)?;
        match e {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Var(name) => scopes.lookup(name),
            Expr::Unary(op, a) => {
                let v = self.eval(a, scopes)?;
                unary(*op, v)
            }
            Expr::Binary(op, a, b) => match op {
                BinaryOp::And => {
                    let lhs = self.eval(a, scopes)?;
                    if !lhs.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    Ok(Value::Bool(self.eval(b, scopes)?.truthy()))
                }
                BinaryOp::Or => {
                    let lhs = self.eval(a, scopes)?;
                    if lhs.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    Ok(Value::Bool(self.eval(b, scopes)?.truthy()))
                }
                _ => {
                    let lhs = self.eval(a, scopes)?;
                    let rhs = self.eval(b, scopes)?;
                    // Concatenation/repetition allocates output proportional
                    // to its inputs; charge for it before doing the work.
                    let extra = alloc_surcharge(*op, &lhs, &rhs);
                    if extra > 0 {
                        self.burn(extra)?;
                    }
                    binary(*op, lhs, rhs)
                }
            },
            Expr::Index(base, idx) => {
                let b = self.eval(base, scopes)?;
                let i = self.eval(idx, scopes)?;
                index(&b, &i)
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, scopes)?);
                }
                // Builtins that may traverse or allocate large structures
                // burn extra fuel proportional to data size — strings and
                // byte arrays count by length, not as scalars.
                self.burn(call_surcharge(&vals))?;
                match BuiltinId::from_name(name) {
                    Some(id) => {
                        let out = out_surcharge(id, &vals);
                        if out > 0 {
                            self.burn(out)?;
                        }
                        call_builtin(id, vals)
                    }
                    None => Err(ScriptError::UnknownBuiltin(name.clone())),
                }
            }
            Expr::HostCall(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, scopes)?);
                }
                self.burn(8)?;
                self.host_calls += 1;
                self.host.host_call(name, &vals)
            }
            Expr::ListExpr(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, scopes)?);
                }
                Ok(Value::List(out))
            }
            Expr::MapExpr(entries) => {
                let mut m = BTreeMap::new();
                for (k, v) in entries {
                    m.insert(k.clone(), self.eval(v, scopes)?);
                }
                Ok(Value::Map(m))
            }
        }
    }
}

/// Converts a value into the item sequence a `for` loop walks: list
/// elements, map keys, string characters, or byte values. Shared by the
/// interpreter's `iterable` and the VM's `IterNew` instruction.
pub(crate) fn iter_items(v: Value) -> Result<Vec<Value>, ScriptError> {
    match v {
        Value::List(items) => Ok(items),
        Value::Map(m) => Ok(m.into_keys().map(Value::Str).collect()),
        Value::Str(s) => Ok(s.chars().map(|c| Value::Str(c.to_string())).collect()),
        Value::Bytes(b) => Ok(b.into_iter().map(|x| Value::Int(i64::from(x))).collect()),
        other => Err(ScriptError::TypeMismatch {
            op: "for-in".into(),
            lhs: other.kind(),
            rhs: None,
        }),
    }
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

struct Scopes {
    frames: Vec<HashMap<String, Value>>,
}

impl Scopes {
    fn new() -> Self {
        Scopes {
            frames: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
        debug_assert!(!self.frames.is_empty(), "root scope must survive");
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.frames
            .last_mut()
            .expect("at least root scope")
            .insert(name.to_owned(), v);
    }

    fn lookup(&self, name: &str) -> Result<Value, ScriptError> {
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Ok(v.clone());
            }
        }
        Err(ScriptError::UndefinedVariable(name.to_owned()))
    }

    fn lookup_mut(&mut self, name: &str) -> Result<&mut Value, ScriptError> {
        for frame in self.frames.iter_mut().rev() {
            if let Some(v) = frame.get_mut(name) {
                return Ok(v);
            }
        }
        Err(ScriptError::UndefinedVariable(name.to_owned()))
    }

    fn set(&mut self, name: &str, v: Value) -> Result<(), ScriptError> {
        *self.lookup_mut(name)? = v;
        Ok(())
    }
}

/// Writes `v` through a reversed index path (`path[last]` is the outermost
/// index) into `root`.
pub(crate) fn write_path(root: &mut Value, path: &[Value], v: Value) -> Result<(), ScriptError> {
    let (idx, rest) = path.split_last().expect("path never empty");
    let slot = slot_mut(root, idx)?;
    if rest.is_empty() {
        *slot = v;
        Ok(())
    } else {
        write_path(slot, rest, v)
    }
}

fn slot_mut<'a>(container: &'a mut Value, idx: &Value) -> Result<&'a mut Value, ScriptError> {
    match (container, idx) {
        (Value::List(items), Value::Int(i)) => {
            let len = items.len();
            let i = usize::try_from(*i)
                .map_err(|_| ScriptError::BadIndex(format!("negative index {i}")))?;
            items
                .get_mut(i)
                .ok_or_else(|| ScriptError::BadIndex(format!("index {i} out of bounds ({len})")))
        }
        (Value::Map(m), Value::Str(k)) => {
            // Map assignment inserts when absent (convenient and matches
            // the `set` builtin).
            Ok(m.entry(k.clone()).or_insert(Value::Null))
        }
        (c, idx) => Err(ScriptError::BadIndex(format!(
            "cannot index {} with {}",
            c.kind(),
            idx.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

pub(crate) fn unary(op: UnaryOp, v: Value) -> Result<Value, ScriptError> {
    match (op, v) {
        (UnaryOp::Neg, Value::Int(i)) => i.checked_neg().map(Value::Int).ok_or_else(|| {
            ScriptError::Value(ValueError::NumericRange("negating i64::MIN".into()))
        }),
        (UnaryOp::Neg, Value::Float(x)) => Ok(Value::Float(-x)),
        (UnaryOp::Not, v) => Ok(Value::Bool(!v.truthy())),
        (op, v) => Err(ScriptError::TypeMismatch {
            op: op.spelling().into(),
            lhs: v.kind(),
            rhs: None,
        }),
    }
}

pub(crate) fn binary(op: BinaryOp, lhs: Value, rhs: Value) -> Result<Value, ScriptError> {
    use BinaryOp::*;
    let mismatch = |lhs: &Value, rhs: &Value| ScriptError::TypeMismatch {
        op: op.spelling().into(),
        lhs: lhs.kind(),
        rhs: Some(rhs.kind()),
    };
    match op {
        Eq => Ok(Value::Bool(lhs == rhs)),
        Ne => Ok(Value::Bool(lhs != rhs)),
        Lt | Le | Gt | Ge => {
            let ord = compare(&lhs, &rhs).ok_or_else(|| mismatch(&lhs, &rhs))?;
            Ok(Value::Bool(match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!("comparison ops only"),
            }))
        }
        Add => match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => checked_int(a.checked_add(b), "+"),
            (Value::Str(mut a), Value::Str(b)) => {
                a.push_str(&b);
                Ok(Value::Str(a))
            }
            (Value::List(mut a), Value::List(b)) => {
                a.extend(b);
                Ok(Value::List(a))
            }
            (Value::Bytes(mut a), Value::Bytes(b)) => {
                a.extend(b);
                Ok(Value::Bytes(a))
            }
            (a, b) => numeric(op, a, b, |x, y| x + y),
        },
        Sub => match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => checked_int(a.checked_sub(b), "-"),
            (a, b) => numeric(op, a, b, |x, y| x - y),
        },
        Mul => match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => checked_int(a.checked_mul(b), "*"),
            (Value::Str(s), Value::Int(n)) => {
                let n = usize::try_from(n).map_err(|_| {
                    ScriptError::Value(ValueError::NumericRange(format!(
                        "cannot repeat a string {n} times"
                    )))
                })?;
                if s.len().saturating_mul(n) > 1 << 20 {
                    return Err(ScriptError::Value(ValueError::NumericRange(
                        "string repetition exceeds 1 MiB".into(),
                    )));
                }
                Ok(Value::Str(s.repeat(n)))
            }
            (a, b) => numeric(op, a, b, |x, y| x * y),
        },
        Div => match (lhs, rhs) {
            (Value::Int(_), Value::Int(0)) => Err(ScriptError::DivisionByZero),
            (Value::Int(a), Value::Int(b)) => checked_int(a.checked_div(b), "/"),
            (a, b) => numeric(op, a, b, |x, y| x / y),
        },
        Rem => match (lhs, rhs) {
            (Value::Int(_), Value::Int(0)) => Err(ScriptError::DivisionByZero),
            (Value::Int(a), Value::Int(b)) => checked_int(a.checked_rem(b), "%"),
            (a, b) => numeric(op, a, b, |x, y| x % y),
        },
        And | Or => unreachable!("short-circuit ops handled in eval"),
    }
}

fn checked_int(v: Option<i64>, op: &str) -> Result<Value, ScriptError> {
    v.map(Value::Int).ok_or_else(|| {
        ScriptError::Value(ValueError::NumericRange(format!(
            "integer overflow in {op}"
        )))
    })
}

/// Applies a float operation to numeric operands, promoting ints.
fn numeric(
    op: BinaryOp,
    lhs: Value,
    rhs: Value,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Value, ScriptError> {
    let a = match &lhs {
        Value::Int(i) => *i as f64,
        Value::Float(x) => *x,
        _ => {
            return Err(ScriptError::TypeMismatch {
                op: op.spelling().into(),
                lhs: lhs.kind(),
                rhs: Some(rhs.kind()),
            })
        }
    };
    let b = match &rhs {
        Value::Int(i) => *i as f64,
        Value::Float(x) => *x,
        _ => {
            return Err(ScriptError::TypeMismatch {
                op: op.spelling().into(),
                lhs: lhs.kind(),
                rhs: Some(rhs.kind()),
            })
        }
    };
    Ok(Value::Float(f(a, b)))
}

/// Cross-kind ordering for `<`-family operators: numbers with numbers
/// (int/float mix allowed), strings with strings, bytes with bytes.
fn compare(lhs: &Value, rhs: &Value) -> Option<std::cmp::Ordering> {
    match (lhs, rhs) {
        (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
        (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
        (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
        (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
        (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
        (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
        _ => None,
    }
}

pub(crate) fn index(container: &Value, idx: &Value) -> Result<Value, ScriptError> {
    match (container, idx) {
        (Value::List(items), Value::Int(i)) => {
            let i = usize::try_from(*i)
                .map_err(|_| ScriptError::BadIndex(format!("negative index {i}")))?;
            items.get(i).cloned().ok_or_else(|| {
                ScriptError::BadIndex(format!("index {i} out of bounds ({})", items.len()))
            })
        }
        (Value::Map(m), Value::Str(k)) => m
            .get(k)
            .cloned()
            .ok_or_else(|| ScriptError::BadIndex(format!("missing key {k:?}"))),
        (Value::Str(s), Value::Int(i)) => {
            let i = usize::try_from(*i)
                .map_err(|_| ScriptError::BadIndex(format!("negative index {i}")))?;
            s.chars()
                .nth(i)
                .map(|c| Value::Str(c.to_string()))
                .ok_or_else(|| ScriptError::BadIndex(format!("index {i} beyond string end")))
        }
        (Value::Bytes(b), Value::Int(i)) => {
            let i = usize::try_from(*i)
                .map_err(|_| ScriptError::BadIndex(format!("negative index {i}")))?;
            b.get(i).map(|x| Value::Int(i64::from(*x))).ok_or_else(|| {
                ScriptError::BadIndex(format!("index {i} out of bounds ({})", b.len()))
            })
        }
        (c, i) => Err(ScriptError::BadIndex(format!(
            "cannot index {} with {}",
            c.kind(),
            i.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Fuel pricing shared by the interpreter and the bytecode VM
// ---------------------------------------------------------------------------

/// The fuel weight of one builtin argument: like [`Value::tree_size`], but
/// strings and byte arrays count by length (one step per 8 bytes) instead
/// of as scalars, so size-proportional builtins (`push` of big strings,
/// `coerce`, `split`, ...) cannot traverse megabytes for constant fuel.
pub(crate) fn arg_cost(v: &Value) -> u64 {
    match v {
        Value::Str(s) => 1 + s.len() as u64 / 8,
        Value::Bytes(b) => 1 + b.len() as u64 / 8,
        Value::List(items) => 1 + items.iter().map(arg_cost).sum::<u64>(),
        Value::Map(m) => 1 + m.values().map(arg_cost).sum::<u64>(),
        _ => 1,
    }
}

/// Input-size surcharge burned before any builtin dispatch (known or not).
pub(crate) fn call_surcharge(vals: &[Value]) -> u64 {
    vals.iter().map(arg_cost).sum::<u64>() / 4
}

/// Output-size surcharge for builtins whose result is much larger than
/// their arguments. Only `range` qualifies today; oversized requests are
/// left to the builtin's own guard so its error (not fuel exhaustion)
/// stays the observable outcome.
pub(crate) fn out_surcharge(id: BuiltinId, args: &[Value]) -> u64 {
    if id != BuiltinId::Range {
        return 0;
    }
    let (lo, hi) = match args {
        [Value::Int(hi)] => (0, *hi),
        [Value::Int(lo), Value::Int(hi)] => (*lo, *hi),
        _ => return 0,
    };
    let count = hi.saturating_sub(lo);
    if (0..=1 << 20).contains(&count) {
        count as u64 / 4
    } else {
        0
    }
}

/// Allocation surcharge for operators that build output proportional to
/// their inputs: string/list/bytes concatenation and string repetition.
/// Burned after both operands are evaluated, before the operator runs.
/// Shapes the operator would reject (or that trip its own size guard)
/// cost nothing — the operator's error stays the observable outcome.
pub(crate) fn alloc_surcharge(op: BinaryOp, lhs: &Value, rhs: &Value) -> u64 {
    match (op, lhs, rhs) {
        (BinaryOp::Add, Value::Str(_), Value::Str(b)) => b.len() as u64 / 8,
        (BinaryOp::Add, Value::Bytes(_), Value::Bytes(b)) => b.len() as u64 / 8,
        (BinaryOp::Add, Value::List(_), Value::List(b)) => b.len() as u64 / 4,
        (BinaryOp::Mul, Value::Str(s), Value::Int(n)) => match usize::try_from(*n) {
            Ok(n) if s.len().saturating_mul(n) <= 1 << 20 => s.len() as u64 * n as u64 / 8,
            _ => 0,
        },
        _ => 0,
    }
}

// ---------------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------------

/// Identifies one of the pure builtins. The compiler resolves builtin
/// names to ids at compile time; the interpreter resolves per call. Both
/// dispatch through [`call_builtin`], so semantics cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BuiltinId {
    Len,
    Typeof,
    Coerce,
    Str,
    Int,
    Float,
    Bool,
    Push,
    Pop,
    Last,
    Contains,
    Keys,
    Values,
    Set,
    Remove,
    Range,
    Substr,
    Split,
    Join,
    Upper,
    Lower,
    Trim,
    Abs,
    Min,
    Max,
    Fail,
    Bytes,
    ObjectRef,
}

impl BuiltinId {
    pub(crate) fn from_name(name: &str) -> Option<BuiltinId> {
        Some(match name {
            "len" => BuiltinId::Len,
            "typeof" => BuiltinId::Typeof,
            "coerce" => BuiltinId::Coerce,
            "str" => BuiltinId::Str,
            "int" => BuiltinId::Int,
            "float" => BuiltinId::Float,
            "bool" => BuiltinId::Bool,
            "push" => BuiltinId::Push,
            "pop" => BuiltinId::Pop,
            "last" => BuiltinId::Last,
            "contains" => BuiltinId::Contains,
            "keys" => BuiltinId::Keys,
            "values" => BuiltinId::Values,
            "set" => BuiltinId::Set,
            "remove" => BuiltinId::Remove,
            "range" => BuiltinId::Range,
            "substr" => BuiltinId::Substr,
            "split" => BuiltinId::Split,
            "join" => BuiltinId::Join,
            "upper" => BuiltinId::Upper,
            "lower" => BuiltinId::Lower,
            "trim" => BuiltinId::Trim,
            "abs" => BuiltinId::Abs,
            "min" => BuiltinId::Min,
            "max" => BuiltinId::Max,
            "fail" => BuiltinId::Fail,
            "bytes" => BuiltinId::Bytes,
            "objectref" => BuiltinId::ObjectRef,
            _ => return None,
        })
    }

    pub(crate) fn name(self) -> &'static str {
        match self {
            BuiltinId::Len => "len",
            BuiltinId::Typeof => "typeof",
            BuiltinId::Coerce => "coerce",
            BuiltinId::Str => "str",
            BuiltinId::Int => "int",
            BuiltinId::Float => "float",
            BuiltinId::Bool => "bool",
            BuiltinId::Push => "push",
            BuiltinId::Pop => "pop",
            BuiltinId::Last => "last",
            BuiltinId::Contains => "contains",
            BuiltinId::Keys => "keys",
            BuiltinId::Values => "values",
            BuiltinId::Set => "set",
            BuiltinId::Remove => "remove",
            BuiltinId::Range => "range",
            BuiltinId::Substr => "substr",
            BuiltinId::Split => "split",
            BuiltinId::Join => "join",
            BuiltinId::Upper => "upper",
            BuiltinId::Lower => "lower",
            BuiltinId::Trim => "trim",
            BuiltinId::Abs => "abs",
            BuiltinId::Min => "min",
            BuiltinId::Max => "max",
            BuiltinId::Fail => "fail",
            BuiltinId::Bytes => "bytes",
            BuiltinId::ObjectRef => "objectref",
        }
    }
}

fn arity(name: &str, args: &[Value], expected: usize) -> Result<(), ScriptError> {
    if args.len() != expected {
        return Err(ScriptError::BuiltinArgs {
            name: name.into(),
            detail: format!("expected {expected} arguments, got {}", args.len()),
        });
    }
    Ok(())
}

fn want_str<'a>(name: &str, v: &'a Value) -> Result<&'a str, ScriptError> {
    v.as_str().ok_or_else(|| ScriptError::BuiltinArgs {
        name: name.into(),
        detail: format!("expected a string, got {}", v.kind()),
    })
}

fn want_int(name: &str, v: &Value) -> Result<i64, ScriptError> {
    v.as_int().ok_or_else(|| ScriptError::BuiltinArgs {
        name: name.into(),
        detail: format!("expected an int, got {}", v.kind()),
    })
}

/// Dispatches a pure builtin call. The `id` is pre-resolved; callers burn
/// [`call_surcharge`] (and any [`out_surcharge`]) before dispatching.
pub(crate) fn call_builtin(id: BuiltinId, mut args: Vec<Value>) -> Result<Value, ScriptError> {
    let name = id.name();
    match id {
        BuiltinId::Len => {
            arity(name, &args, 1)?;
            let n = match &args[0] {
                Value::Str(s) => s.chars().count(),
                Value::Bytes(b) => b.len(),
                Value::List(items) => items.len(),
                Value::Map(m) => m.len(),
                other => {
                    return Err(ScriptError::BuiltinArgs {
                        name: name.into(),
                        detail: format!("{} has no length", other.kind()),
                    })
                }
            };
            Ok(Value::Int(n as i64))
        }
        BuiltinId::Typeof => {
            arity(name, &args, 1)?;
            Ok(Value::Str(args[0].kind().name().to_owned()))
        }
        BuiltinId::Coerce => {
            arity(name, &args, 2)?;
            let kind_name = want_str(name, &args[1])?;
            let kind = ValueKind::from_name(kind_name).ok_or_else(|| ScriptError::BuiltinArgs {
                name: name.into(),
                detail: format!("unknown kind {kind_name:?}"),
            })?;
            let v = args.swap_remove(0);
            Ok(v.coerce(kind)?)
        }
        BuiltinId::Str => {
            arity(name, &args, 1)?;
            Ok(args.swap_remove(0).coerce(ValueKind::Str)?)
        }
        BuiltinId::Int => {
            arity(name, &args, 1)?;
            Ok(args.swap_remove(0).coerce(ValueKind::Int)?)
        }
        BuiltinId::Float => {
            arity(name, &args, 1)?;
            Ok(args.swap_remove(0).coerce(ValueKind::Float)?)
        }
        BuiltinId::Bool => {
            arity(name, &args, 1)?;
            Ok(args.swap_remove(0).coerce(ValueKind::Bool)?)
        }
        BuiltinId::Push => {
            arity(name, &args, 2)?;
            let v = args.pop().expect("arity 2");
            let mut list = args.pop().expect("arity 2");
            match list.as_list_mut() {
                Some(items) => {
                    items.push(v);
                    Ok(list)
                }
                None => Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("first argument must be a list, got {}", list.kind()),
                }),
            }
        }
        BuiltinId::Pop => {
            arity(name, &args, 1)?;
            let mut list = args.pop().expect("arity 1");
            match list.as_list_mut() {
                Some(items) => {
                    items.pop().ok_or_else(|| ScriptError::BuiltinArgs {
                        name: name.into(),
                        detail: "cannot pop an empty list".into(),
                    })?;
                    Ok(list)
                }
                None => Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("expected a list, got {}", list.kind()),
                }),
            }
        }
        BuiltinId::Last => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::List(items) => {
                    items
                        .last()
                        .cloned()
                        .ok_or_else(|| ScriptError::BuiltinArgs {
                            name: name.into(),
                            detail: "empty list has no last element".into(),
                        })
                }
                other => Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("expected a list, got {}", other.kind()),
                }),
            }
        }
        BuiltinId::Contains => {
            arity(name, &args, 2)?;
            let needle = &args[1];
            let found = match &args[0] {
                Value::List(items) => items.contains(needle),
                Value::Map(m) => match needle.as_str() {
                    Some(k) => m.contains_key(k),
                    None => false,
                },
                Value::Str(s) => match needle.as_str() {
                    Some(sub) => s.contains(sub),
                    None => false,
                },
                other => {
                    return Err(ScriptError::BuiltinArgs {
                        name: name.into(),
                        detail: format!("{} is not a container", other.kind()),
                    })
                }
            };
            Ok(Value::Bool(found))
        }
        BuiltinId::Keys => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Map(m) => Ok(Value::List(m.keys().cloned().map(Value::Str).collect())),
                other => Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("expected a map, got {}", other.kind()),
                }),
            }
        }
        BuiltinId::Values => {
            arity(name, &args, 1)?;
            match args.swap_remove(0) {
                Value::Map(m) => Ok(Value::List(m.into_values().collect())),
                other => Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("expected a map, got {}", other.kind()),
                }),
            }
        }
        BuiltinId::Set => {
            arity(name, &args, 3)?;
            let v = args.pop().expect("arity 3");
            let key = args.pop().expect("arity 3");
            let mut m = args.pop().expect("arity 3");
            match (&mut m, key) {
                (Value::Map(m), Value::Str(k)) => {
                    m.insert(k, v);
                }
                (Value::List(items), Value::Int(i)) => {
                    let i = usize::try_from(i)
                        .map_err(|_| ScriptError::BadIndex(format!("negative index {i}")))?;
                    if i >= items.len() {
                        return Err(ScriptError::BadIndex(format!(
                            "index {i} out of bounds ({})",
                            items.len()
                        )));
                    }
                    items[i] = v;
                }
                (other, key) => {
                    return Err(ScriptError::BuiltinArgs {
                        name: name.into(),
                        detail: format!("cannot set {} on {}", key.kind(), other.kind()),
                    })
                }
            }
            Ok(m)
        }
        BuiltinId::Remove => {
            arity(name, &args, 2)?;
            let key = args.pop().expect("arity 2");
            let mut m = args.pop().expect("arity 2");
            match (&mut m, key) {
                (Value::Map(m), Value::Str(k)) => {
                    m.remove(&k);
                }
                (Value::List(items), Value::Int(i)) => {
                    let i = usize::try_from(i)
                        .map_err(|_| ScriptError::BadIndex(format!("negative index {i}")))?;
                    if i >= items.len() {
                        return Err(ScriptError::BadIndex(format!(
                            "index {i} out of bounds ({})",
                            items.len()
                        )));
                    }
                    items.remove(i);
                }
                (other, key) => {
                    return Err(ScriptError::BuiltinArgs {
                        name: name.into(),
                        detail: format!("cannot remove {} from {}", key.kind(), other.kind()),
                    })
                }
            }
            Ok(m)
        }
        BuiltinId::Range => {
            let (lo, hi) = match args.len() {
                1 => (0, want_int(name, &args[0])?),
                2 => (want_int(name, &args[0])?, want_int(name, &args[1])?),
                n => {
                    return Err(ScriptError::BuiltinArgs {
                        name: name.into(),
                        detail: format!("expected 1 or 2 arguments, got {n}"),
                    })
                }
            };
            let count = hi.saturating_sub(lo);
            if count > 1 << 20 {
                return Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("range of {count} elements exceeds the 1 Mi limit"),
                });
            }
            Ok(Value::List((lo..hi).map(Value::Int).collect()))
        }
        BuiltinId::Substr => {
            arity(name, &args, 3)?;
            let s = want_str(name, &args[0])?;
            let start = want_int(name, &args[1])?;
            let count = want_int(name, &args[2])?;
            let start = usize::try_from(start).unwrap_or(0);
            let count = usize::try_from(count).unwrap_or(0);
            Ok(Value::Str(s.chars().skip(start).take(count).collect()))
        }
        BuiltinId::Split => {
            arity(name, &args, 2)?;
            let s = want_str(name, &args[0])?;
            let sep = want_str(name, &args[1])?;
            if sep.is_empty() {
                return Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: "separator must be non-empty".into(),
                });
            }
            Ok(Value::List(
                s.split(sep).map(|p| Value::Str(p.to_owned())).collect(),
            ))
        }
        BuiltinId::Join => {
            arity(name, &args, 2)?;
            let sep = want_str(name, &args[1])?.to_owned();
            match &args[0] {
                Value::List(items) => {
                    let parts: Result<Vec<&str>, _> = items
                        .iter()
                        .map(|v| {
                            v.as_str().ok_or_else(|| ScriptError::BuiltinArgs {
                                name: name.into(),
                                detail: format!("join requires strings, found {}", v.kind()),
                            })
                        })
                        .collect();
                    Ok(Value::Str(parts?.join(&sep)))
                }
                other => Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("expected a list, got {}", other.kind()),
                }),
            }
        }
        BuiltinId::Upper => {
            arity(name, &args, 1)?;
            Ok(Value::Str(want_str(name, &args[0])?.to_uppercase()))
        }
        BuiltinId::Lower => {
            arity(name, &args, 1)?;
            Ok(Value::Str(want_str(name, &args[0])?.to_lowercase()))
        }
        BuiltinId::Trim => {
            arity(name, &args, 1)?;
            Ok(Value::Str(want_str(name, &args[0])?.trim().to_owned()))
        }
        BuiltinId::Abs => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Int(i) => checked_int(i.checked_abs(), "abs"),
                Value::Float(x) => Ok(Value::Float(x.abs())),
                other => Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("expected a number, got {}", other.kind()),
                }),
            }
        }
        BuiltinId::Min | BuiltinId::Max => {
            arity(name, &args, 2)?;
            let ord = compare(&args[0], &args[1]).ok_or_else(|| ScriptError::BuiltinArgs {
                name: name.into(),
                detail: format!("cannot compare {} with {}", args[0].kind(), args[1].kind()),
            })?;
            let pick_first = if id == BuiltinId::Min {
                ord.is_le()
            } else {
                ord.is_ge()
            };
            Ok(if pick_first {
                args.swap_remove(0)
            } else {
                args.swap_remove(1)
            })
        }
        BuiltinId::Fail => {
            arity(name, &args, 1)?;
            let msg = match &args[0] {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            };
            Err(ScriptError::Raised(msg))
        }
        BuiltinId::Bytes => {
            arity(name, &args, 1)?;
            let hex = want_str(name, &args[0])?;
            if hex.len() % 2 != 0 {
                return Err(ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: "hex string must have even length".into(),
                });
            }
            let raw: Result<Vec<u8>, _> = (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16))
                .collect();
            raw.map(Value::Bytes).map_err(|e| ScriptError::BuiltinArgs {
                name: name.into(),
                detail: format!("bad hex: {e}"),
            })
        }
        BuiltinId::ObjectRef => {
            arity(name, &args, 1)?;
            let s = want_str(name, &args[0])?;
            s.parse()
                .map(Value::ObjectRef)
                .map_err(|_| ScriptError::BuiltinArgs {
                    name: name.into(),
                    detail: format!("{s:?} is not an object id"),
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;

    fn run(src: &str, args: &[Value]) -> Result<Value, ScriptError> {
        let p = Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
        let mut host = NullHost;
        Evaluator::new(&mut host).run(&p, args)
    }

    fn run_ok(src: &str, args: &[Value]) -> Value {
        run(src, args).unwrap_or_else(|e| panic!("run {src:?}: {e}"))
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run_ok("return 1 + 2 * 3;", &[]), Value::Int(7));
        assert_eq!(run_ok("return (1 + 2) * 3;", &[]), Value::Int(9));
        assert_eq!(run_ok("return 7 % 3;", &[]), Value::Int(1));
        assert_eq!(run_ok("return 1.5 + 1;", &[]), Value::Float(2.5));
        assert_eq!(run_ok("return 7 / 2;", &[]), Value::Int(3));
        assert_eq!(run_ok("return 7.0 / 2;", &[]), Value::Float(3.5));
        assert_eq!(run_ok("return -(3 + 4);", &[]), Value::Int(-7));
    }

    #[test]
    fn string_and_list_concat() {
        assert_eq!(run_ok("return \"a\" + \"b\";", &[]), Value::from("ab"));
        assert_eq!(
            run_ok("return [1] + [2, 3];", &[]),
            Value::list([Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(run_ok("return \"ab\" * 3;", &[]), Value::from("ababab"));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(run("return 1 / 0;", &[]), Err(ScriptError::DivisionByZero));
        assert_eq!(run("return 1 % 0;", &[]), Err(ScriptError::DivisionByZero));
        // Float division by zero is IEEE.
        assert_eq!(
            run_ok("return 1.0 / 0.0;", &[]),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(matches!(
            run("return 9223372036854775807 + 1;", &[]),
            Err(ScriptError::Value(ValueError::NumericRange(_)))
        ));
    }

    #[test]
    fn comparisons() {
        assert_eq!(run_ok("return 1 < 2;", &[]), Value::Bool(true));
        assert_eq!(run_ok("return 2 <= 1;", &[]), Value::Bool(false));
        assert_eq!(run_ok("return 1.5 > 1;", &[]), Value::Bool(true));
        assert_eq!(run_ok("return \"a\" < \"b\";", &[]), Value::Bool(true));
        assert_eq!(run_ok("return 1 == 1.0;", &[]), Value::Bool(false));
        assert_eq!(run_ok("return [1] == [1];", &[]), Value::Bool(true));
        assert!(run("return [] < [];", &[]).is_err());
    }

    #[test]
    fn short_circuit() {
        // Division by zero on the right side must not be evaluated.
        assert_eq!(
            run_ok("return false && (1 / 0 == 0);", &[]),
            Value::Bool(false)
        );
        assert_eq!(
            run_ok("return true || (1 / 0 == 0);", &[]),
            Value::Bool(true)
        );
    }

    #[test]
    fn variables_and_scoping() {
        assert_eq!(
            run_ok("let x = 1; if (true) { let x = 2; } return x;", &[]),
            Value::Int(1)
        );
        assert_eq!(
            run_ok("let x = 1; if (true) { x = 2; } return x;", &[]),
            Value::Int(2)
        );
        assert!(matches!(
            run("return missing;", &[]),
            Err(ScriptError::UndefinedVariable(_))
        ));
    }

    #[test]
    fn params_and_args() {
        assert_eq!(
            run_ok(
                "param a; param b; return a + b;",
                &[Value::Int(1), Value::Int(2)]
            ),
            Value::Int(3)
        );
        // Missing params are null; args still reachable.
        assert_eq!(run_ok("param a; return a;", &[]), Value::Null);
        assert_eq!(
            run_ok("return args[1];", &[Value::Int(10), Value::Int(20)]),
            Value::Int(20)
        );
        assert_eq!(run_ok("return len(args);", &[Value::Null]), Value::Int(1));
    }

    #[test]
    fn while_loop_with_break_continue() {
        let src = "
            let total = 0;
            let i = 0;
            while (true) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            return total;";
        assert_eq!(run_ok(src, &[]), Value::Int(25)); // 1+3+5+7+9
    }

    #[test]
    fn for_loops_over_everything() {
        assert_eq!(
            run_ok(
                "let s = 0; for (i in range(5)) { s = s + i; } return s;",
                &[]
            ),
            Value::Int(10)
        );
        assert_eq!(
            run_ok(
                "let s = 0; for (i in range(2, 5)) { s = s + i; } return s;",
                &[]
            ),
            Value::Int(9)
        );
        assert_eq!(
            run_ok(
                "let out = \"\"; for (k in {\"b\": 1, \"a\": 2}) { out = out + k; } return out;",
                &[]
            ),
            Value::from("ab") // map keys in sorted order
        );
        assert_eq!(
            run_ok(
                "let n = 0; for (c in \"hey\") { n = n + 1; } return n;",
                &[]
            ),
            Value::Int(3)
        );
        assert_eq!(
            run_ok(
                "let s = 0; for (b in bytes(\"0102\")) { s = s + b; } return s;",
                &[]
            ),
            Value::Int(3)
        );
        assert!(run("for (x in 5) { }", &[]).is_err());
    }

    #[test]
    fn index_read_and_write() {
        assert_eq!(
            run_ok("let xs = [1, 2, 3]; return xs[1];", &[]),
            Value::Int(2)
        );
        assert_eq!(
            run_ok("let xs = [1, 2, 3]; xs[1] = 9; return xs;", &[]),
            Value::list([Value::Int(1), Value::Int(9), Value::Int(3)])
        );
        assert_eq!(
            run_ok(
                "let m = {\"a\": [1, 2]}; m[\"a\"][0] = 7; return m[\"a\"][0];",
                &[]
            ),
            Value::Int(7)
        );
        // Map assignment inserts.
        assert_eq!(
            run_ok("let m = {}; m[\"new\"] = 1; return m[\"new\"];", &[]),
            Value::Int(1)
        );
        assert!(matches!(
            run("let xs = [1]; return xs[5];", &[]),
            Err(ScriptError::BadIndex(_))
        ));
        assert!(matches!(
            run("let xs = [1]; xs[5] = 0;", &[]),
            Err(ScriptError::BadIndex(_))
        ));
        assert!(matches!(
            run("let m = {\"a\": 1}; return m[\"b\"];", &[]),
            Err(ScriptError::BadIndex(_))
        ));
        assert_eq!(run_ok("return \"héllo\"[1];", &[]), Value::from("é"));
    }

    #[test]
    fn builtins() {
        assert_eq!(run_ok("return len(\"héllo\");", &[]), Value::Int(5));
        assert_eq!(run_ok("return typeof(3.5);", &[]), Value::from("float"));
        assert_eq!(
            run_ok("return coerce(\"<b>42</b>\", \"int\");", &[]),
            Value::Int(42)
        );
        assert_eq!(run_ok("return str(12) + \"!\";", &[]), Value::from("12!"));
        assert_eq!(run_ok("return int(\"7\") + 1;", &[]), Value::Int(8));
        assert_eq!(run_ok("return bool(\"yes\");", &[]), Value::Bool(true));
        assert_eq!(
            run_ok("return push([1], 2);", &[]),
            Value::list([Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            run_ok("return pop([1, 2]);", &[]),
            Value::list([Value::Int(1)])
        );
        assert_eq!(run_ok("return last([1, 2]);", &[]), Value::Int(2));
        assert_eq!(
            run_ok("return contains([1, 2], 2);", &[]),
            Value::Bool(true)
        );
        assert_eq!(
            run_ok("return contains({\"k\": 1}, \"k\");", &[]),
            Value::Bool(true)
        );
        assert_eq!(
            run_ok("return contains(\"hello\", \"ell\");", &[]),
            Value::Bool(true)
        );
        assert_eq!(
            run_ok("return keys({\"b\": 1, \"a\": 2});", &[]),
            Value::list([Value::from("a"), Value::from("b")])
        );
        assert_eq!(
            run_ok("return values({\"a\": 2});", &[]),
            Value::list([Value::Int(2)])
        );
        assert_eq!(
            run_ok("return set({}, \"k\", 5);", &[]),
            Value::map([("k", Value::Int(5))])
        );
        assert_eq!(
            run_ok("return remove({\"k\": 5}, \"k\");", &[]),
            Value::map::<String, _>([])
        );
        assert_eq!(
            run_ok("return set([1, 2], 0, 9);", &[]),
            Value::list([Value::Int(9), Value::Int(2)])
        );
        assert_eq!(
            run_ok("return remove([1, 2], 0);", &[]),
            Value::list([Value::Int(2)])
        );
        assert_eq!(
            run_ok("return substr(\"hello\", 1, 3);", &[]),
            Value::from("ell")
        );
        assert_eq!(
            run_ok("return split(\"a,b\", \",\");", &[]),
            Value::list([Value::from("a"), Value::from("b")])
        );
        assert_eq!(
            run_ok("return join([\"a\", \"b\"], \"-\");", &[]),
            Value::from("a-b")
        );
        assert_eq!(run_ok("return upper(\"ab\");", &[]), Value::from("AB"));
        assert_eq!(run_ok("return lower(\"AB\");", &[]), Value::from("ab"));
        assert_eq!(run_ok("return trim(\"  x \");", &[]), Value::from("x"));
        assert_eq!(run_ok("return abs(-4);", &[]), Value::Int(4));
        assert_eq!(run_ok("return abs(-1.5);", &[]), Value::Float(1.5));
        assert_eq!(run_ok("return min(3, 1);", &[]), Value::Int(1));
        assert_eq!(run_ok("return max(3, 1.5);", &[]), Value::Int(3));
        assert!(matches!(
            run("return nosuch(1);", &[]),
            Err(ScriptError::UnknownBuiltin(_))
        ));
        assert!(matches!(
            run("return len(1, 2);", &[]),
            Err(ScriptError::BuiltinArgs { .. })
        ));
    }

    #[test]
    fn fail_builtin_raises() {
        assert_eq!(
            run("fail(\"boom\");", &[]),
            Err(ScriptError::Raised("boom".into()))
        );
    }

    #[test]
    fn fuel_exhaustion_stops_infinite_loops() {
        let p = Program::parse("while (true) { }").unwrap();
        let mut host = NullHost;
        let mut ev = Evaluator::with_fuel(&mut host, 10_000);
        assert_eq!(
            ev.run(&p, &[]),
            Err(ScriptError::FuelExhausted { budget: 10_000 })
        );
        assert_eq!(ev.fuel_used(), 10_000);
    }

    #[test]
    fn fuel_scales_with_work() {
        let p =
            Program::parse("let s = 0; for (i in range(100)) { s = s + i; } return s;").unwrap();
        let mut host = NullHost;
        let mut ev = Evaluator::new(&mut host);
        ev.run(&p, &[]).unwrap();
        let small = ev.fuel_used();
        let p2 =
            Program::parse("let s = 0; for (i in range(1000)) { s = s + i; } return s;").unwrap();
        let mut host2 = NullHost;
        let mut ev2 = Evaluator::new(&mut host2);
        ev2.run(&p2, &[]).unwrap();
        assert!(
            ev2.fuel_used() > small * 5,
            "fuel must scale with iterations"
        );
    }

    #[test]
    fn null_host_rejects_host_calls() {
        assert!(matches!(
            run("self.anything(1);", &[]),
            Err(ScriptError::Host(_))
        ));
    }

    #[test]
    fn host_calls_reach_the_host() {
        struct Recorder(Vec<(String, Vec<Value>)>);
        impl HostContext for Recorder {
            fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
                self.0.push((name.to_owned(), args.to_vec()));
                Ok(Value::Int(self.0.len() as i64))
            }
        }
        let p = Program::parse("let a = self.first(1, 2); return self.second(a);").unwrap();
        let mut host = Recorder(Vec::new());
        let out = Evaluator::new(&mut host).run(&p, &[]).unwrap();
        assert_eq!(out, Value::Int(2));
        assert_eq!(host.0.len(), 2);
        assert_eq!(host.0[0].0, "first");
        assert_eq!(host.0[0].1, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(host.0[1].1, vec![Value::Int(1)]);
    }

    #[test]
    fn falls_off_end_returns_null() {
        assert_eq!(run_ok("let x = 1;", &[]), Value::Null);
        assert_eq!(run_ok("return;", &[]), Value::Null);
    }

    #[test]
    fn range_guard_rejects_huge_ranges() {
        assert!(matches!(
            run("return range(99999999);", &[]),
            Err(ScriptError::BuiltinArgs { .. })
        ));
    }

    #[test]
    fn string_repeat_guard() {
        assert!(run("return \"aaaa\" * 9999999;", &[]).is_err());
    }

    #[test]
    fn neg_unary_on_wrong_kind() {
        assert!(matches!(
            run("return -\"x\";", &[]),
            Err(ScriptError::TypeMismatch { .. })
        ));
        assert_eq!(run_ok("return !\"x\";", &[]), Value::Bool(false));
        assert_eq!(run_ok("return !null;", &[]), Value::Bool(true));
    }
}
