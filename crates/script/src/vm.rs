//! Bytecode virtual machine.
//!
//! Executes a [`CompiledProgram`] with *exact* observational equivalence
//! to [`crate::eval::Evaluator`]: the same results and errors, the same
//! host-call sequence, and the same `fuel_used()` at every exhaustion
//! point. Value semantics cannot drift because every operator, builtin,
//! and surcharge is the same shared function the interpreter calls
//! (`binary`, `index`, `call_builtin`, `iter_items`, ...); only the
//! control and fuel plumbing differ.
//!
//! ## Fuel discipline
//!
//! Each basic block opens with [`Instr::Charge`], pre-paying the block's
//! static cost in one subtraction — the source of the VM's speedup over
//! per-node burning. Exactness at the edges:
//!
//! * a taken jump, a return, or a non-fuel error refunds the unexecuted
//!   suffix of the block (`refunds[pc]`);
//! * an unpayable `Charge` switches to **lockstep** mode — no error, no
//!   fuel change — and lockstep burns `costs[pc]` before each
//!   instruction, so exhaustion surfaces at exactly the interpreter's
//!   instruction with exactly the interpreter's side-effect prefix;
//! * value-dependent surcharges (argument size, allocation size) that
//!   exceed remaining fuel first refund the suffix and drop to lockstep,
//!   then retry — a pre-charge can never exhaust earlier than the
//!   interpreter would.
//!
//! Refunds never follow a `FuelExhausted`: the failed burn has already
//! pinned `fuel_used()` to the full budget, matching the interpreter.

use std::collections::BTreeMap;

use mrom_value::Value;

use crate::compile::{CompiledProgram, Instr};
use crate::error::ScriptError;
use crate::eval::{
    alloc_surcharge, binary, call_builtin, call_surcharge, index, iter_items, out_surcharge, unary,
    write_path, HostContext, DEFAULT_FUEL,
};

/// Int⊗Int fast path for the binary arms: the exact result
/// [`crate::eval`]'s `binary` would produce, or `None` for any case that
/// errors or is non-integral (overflow, division by zero) — those fall
/// through to the shared slow path so the error text and fuel surcharges
/// stay identical. Never sees `And`/`Or` (compiled to short-circuit
/// checks, not `Binary`).
#[inline]
fn int_binary(op: crate::ast::BinaryOp, a: i64, b: i64) -> Option<Value> {
    use crate::ast::BinaryOp::*;
    Some(match op {
        Add => Value::Int(a.checked_add(b)?),
        Sub => Value::Int(a.checked_sub(b)?),
        Mul => Value::Int(a.checked_mul(b)?),
        Div => Value::Int(a.checked_div(b)?),
        Rem => Value::Int(a.checked_rem(b)?),
        Eq => Value::Bool(a == b),
        Ne => Value::Bool(a != b),
        Lt => Value::Bool(a < b),
        Le => Value::Bool(a <= b),
        Gt => Value::Bool(a > b),
        Ge => Value::Bool(a >= b),
        And | Or => return None,
    })
}

/// A fuel-metered bytecode executor bound to a host. Mirrors
/// [`crate::eval::Evaluator`]'s API so the two engines are drop-in
/// interchangeable.
///
/// # Example
///
/// ```
/// use mrom_script::{NullHost, Program, Vm};
/// use mrom_value::Value;
///
/// # fn main() -> Result<(), mrom_script::ScriptError> {
/// let p = Program::parse("let s = 0; for (i in range(5)) { s = s + i; } return s;")?;
/// let mut host = NullHost;
/// let out = Vm::new(&mut host).run(&p.compiled(), &[])?;
/// assert_eq!(out, Value::Int(10));
/// # Ok(())
/// # }
/// ```
pub struct Vm<'h, H: HostContext + ?Sized> {
    host: &'h mut H,
    budget: u64,
    fuel: u64,
    host_calls: u64,
}

impl<'h, H: HostContext + ?Sized> Vm<'h, H> {
    /// Binds a VM to `host` with [`DEFAULT_FUEL`].
    pub fn new(host: &'h mut H) -> Self {
        Self::with_fuel(host, DEFAULT_FUEL)
    }

    /// Binds a VM with an explicit fuel budget.
    pub fn with_fuel(host: &'h mut H, fuel: u64) -> Self {
        Vm {
            host,
            budget: fuel,
            fuel,
            host_calls: 0,
        }
    }

    /// Fuel consumed by runs so far.
    pub fn fuel_used(&self) -> u64 {
        self.budget - self.fuel
    }

    /// Host calls (`self.…` / world operations) performed by runs so far.
    pub fn host_calls(&self) -> u64 {
        self.host_calls
    }

    fn burn(&mut self, amount: u64) -> Result<(), ScriptError> {
        if self.fuel < amount {
            self.fuel = 0;
            return Err(ScriptError::FuelExhausted {
                budget: self.budget,
            });
        }
        self.fuel -= amount;
        Ok(())
    }

    /// Runs a compiled program with the given argument list. Argument
    /// binding, return behaviour, and every error match
    /// [`crate::eval::Evaluator::run`] exactly.
    ///
    /// # Errors
    ///
    /// Any [`ScriptError`] raised during execution, including
    /// [`ScriptError::FuelExhausted`] at precisely the point the
    /// interpreter would exhaust.
    pub fn run(&mut self, cp: &CompiledProgram, args: &[Value]) -> Result<Value, ScriptError> {
        let mut locals: Vec<Value> = vec![Value::Null; cp.n_locals as usize];
        if let Some(slot0) = locals.first_mut() {
            *slot0 = Value::List(args.to_vec());
        }
        for (i, &slot) in cp.param_slots.iter().enumerate() {
            locals[slot as usize] = args.get(i).cloned().unwrap_or(Value::Null);
        }

        let mut stack: Vec<Value> = Vec::new();
        let mut iters: Vec<std::vec::IntoIter<Value>> = Vec::new();
        let mut pc: usize = 0;
        // True while executing a block whose `Charge` could not be paid:
        // fuel is burned per instruction, exactly as the interpreter does.
        let mut lockstep = false;

        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .expect("operand stack underflow: compiler invariant")
            };
        }
        // Fallible step: on a non-fuel error, refund the block suffix the
        // pre-charge paid for but which will now never execute.
        macro_rules! vtry {
            ($r:expr) => {
                match $r {
                    Ok(v) => v,
                    Err(e) => {
                        if !lockstep {
                            self.fuel += u64::from(cp.refunds[pc]);
                        }
                        return Err(e);
                    }
                }
            };
        }
        // Value-dependent surcharge: pay outright when fuel allows; else
        // restore interpreter-exact fuel (refund the suffix, enter
        // lockstep) and burn for real, which errors iff the interpreter's
        // own burn would.
        macro_rules! dyn_burn {
            ($amount:expr) => {{
                let amount: u64 = $amount;
                if self.fuel >= amount {
                    self.fuel -= amount;
                } else {
                    if !lockstep {
                        self.fuel += u64::from(cp.refunds[pc]);
                        lockstep = true;
                    }
                    self.burn(amount)?;
                }
            }};
        }
        // A taken branch skips the rest of the block; hand back its cost.
        macro_rules! refund_jump {
            () => {
                if !lockstep {
                    self.fuel += u64::from(cp.refunds[pc]);
                }
            };
        }

        loop {
            let instr = cp.instrs[pc];
            if let Instr::Charge(total) = instr {
                let total = u64::from(total);
                if self.fuel >= total {
                    self.fuel -= total;
                    lockstep = false;
                } else {
                    lockstep = true;
                }
                pc += 1;
                continue;
            }
            if lockstep {
                self.burn(u64::from(cp.costs[pc]))?;
            }
            match instr {
                Instr::Charge(_) => unreachable!("handled above"),
                Instr::Nop => {}
                Instr::LoadConst(i) => stack.push(cp.consts[i as usize].clone()),
                Instr::LoadLocal(s) => stack.push(locals[s as usize].clone()),
                Instr::StoreLocal(s) => locals[s as usize] = pop!(),
                Instr::LoadUndef(n) => {
                    vtry!(Err::<(), _>(ScriptError::UndefinedVariable(
                        cp.names[n as usize].clone()
                    )));
                }
                Instr::StoreUndef(n) => {
                    let _rhs = pop!();
                    vtry!(Err::<(), _>(ScriptError::UndefinedVariable(
                        cp.names[n as usize].clone()
                    )));
                }
                Instr::Pop => {
                    let _ = pop!();
                }
                Instr::Unary(op) => {
                    let v = pop!();
                    let out = vtry!(unary(op, v));
                    stack.push(out);
                }
                Instr::Binary(op) => {
                    let rhs = pop!();
                    let lhs = pop!();
                    if let (Value::Int(x), Value::Int(y)) = (&lhs, &rhs) {
                        if let Some(v) = int_binary(op, *x, *y) {
                            stack.push(v);
                            pc += 1;
                            continue;
                        }
                    }
                    dyn_burn!(alloc_surcharge(op, &lhs, &rhs));
                    let out = vtry!(binary(op, lhs, rhs));
                    stack.push(out);
                }
                Instr::BinaryLL { op, a, b } => {
                    if let (Value::Int(x), Value::Int(y)) =
                        (&locals[a as usize], &locals[b as usize])
                    {
                        if let Some(v) = int_binary(op, *x, *y) {
                            stack.push(v);
                            pc += 1;
                            continue;
                        }
                    }
                    let lhs = locals[a as usize].clone();
                    let rhs = locals[b as usize].clone();
                    dyn_burn!(alloc_surcharge(op, &lhs, &rhs));
                    let out = vtry!(binary(op, lhs, rhs));
                    stack.push(out);
                }
                Instr::BinaryLC { op, a, c } => {
                    if let (Value::Int(x), Value::Int(y)) =
                        (&locals[a as usize], &cp.consts[c as usize])
                    {
                        if let Some(v) = int_binary(op, *x, *y) {
                            stack.push(v);
                            pc += 1;
                            continue;
                        }
                    }
                    let lhs = locals[a as usize].clone();
                    let rhs = cp.consts[c as usize].clone();
                    dyn_burn!(alloc_surcharge(op, &lhs, &rhs));
                    let out = vtry!(binary(op, lhs, rhs));
                    stack.push(out);
                }
                Instr::BinaryTL { op, b } => {
                    let lhs = pop!();
                    if let (Value::Int(x), Value::Int(y)) = (&lhs, &locals[b as usize]) {
                        if let Some(v) = int_binary(op, *x, *y) {
                            stack.push(v);
                            pc += 1;
                            continue;
                        }
                    }
                    let rhs = locals[b as usize].clone();
                    dyn_burn!(alloc_surcharge(op, &lhs, &rhs));
                    let out = vtry!(binary(op, lhs, rhs));
                    stack.push(out);
                }
                Instr::BinaryTC { op, c } => {
                    let lhs = pop!();
                    if let (Value::Int(x), Value::Int(y)) = (&lhs, &cp.consts[c as usize]) {
                        if let Some(v) = int_binary(op, *x, *y) {
                            stack.push(v);
                            pc += 1;
                            continue;
                        }
                    }
                    let rhs = cp.consts[c as usize].clone();
                    dyn_burn!(alloc_surcharge(op, &lhs, &rhs));
                    let out = vtry!(binary(op, lhs, rhs));
                    stack.push(out);
                }
                Instr::Truthy => {
                    let v = pop!();
                    stack.push(Value::Bool(v.truthy()));
                }
                Instr::Jump(t) => {
                    refund_jump!();
                    pc = t as usize;
                    continue;
                }
                Instr::JumpIfFalse(t) => {
                    let v = pop!();
                    if !v.truthy() {
                        refund_jump!();
                        pc = t as usize;
                        continue;
                    }
                }
                Instr::AndCheck(t) => {
                    let v = pop!();
                    if !v.truthy() {
                        stack.push(Value::Bool(false));
                        refund_jump!();
                        pc = t as usize;
                        continue;
                    }
                }
                Instr::OrCheck(t) => {
                    let v = pop!();
                    if v.truthy() {
                        stack.push(Value::Bool(true));
                        refund_jump!();
                        pc = t as usize;
                        continue;
                    }
                }
                Instr::Index => {
                    let i = pop!();
                    let b = pop!();
                    let out = vtry!(index(&b, &i));
                    stack.push(out);
                }
                Instr::Call { builtin, argc } => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    dyn_burn!(call_surcharge(&vals));
                    let out = out_surcharge(builtin, &vals);
                    if out > 0 {
                        dyn_burn!(out);
                    }
                    let result = vtry!(call_builtin(builtin, vals));
                    stack.push(result);
                }
                Instr::CallUnknown { name, argc } => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    dyn_burn!(call_surcharge(&vals));
                    vtry!(Err::<(), _>(ScriptError::UnknownBuiltin(
                        cp.names[name as usize].clone()
                    )));
                }
                Instr::HostCall { name, argc, site } => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    self.host_calls += 1;
                    let out =
                        vtry!(self
                            .host
                            .host_call_site(site, &cp.names[name as usize], &vals));
                    stack.push(out);
                }
                Instr::MakeList(n) => {
                    let vals = stack.split_off(stack.len() - n as usize);
                    stack.push(Value::List(vals));
                }
                Instr::MakeMap { keys, n } => {
                    let vals = stack.split_off(stack.len() - n as usize);
                    let mut m = BTreeMap::new();
                    for (i, v) in vals.into_iter().enumerate() {
                        m.insert(cp.names[keys as usize + i].clone(), v);
                    }
                    stack.push(Value::Map(m));
                }
                Instr::AssignPath { root, n_idx } => {
                    // Stack: rhs, then indices outermost-first. Popping
                    // yields innermost-first; reversing restores the
                    // interpreter's path orientation for `write_path`.
                    let mut path = Vec::with_capacity(n_idx as usize);
                    for _ in 0..n_idx {
                        path.push(pop!());
                    }
                    path.reverse();
                    let rhs = pop!();
                    vtry!(write_path(&mut locals[root as usize], &path, rhs));
                }
                Instr::AssignPathUndef { name, n_idx } => {
                    for _ in 0..=n_idx {
                        let _ = pop!();
                    }
                    vtry!(Err::<(), _>(ScriptError::UndefinedVariable(
                        cp.names[name as usize].clone()
                    )));
                }
                Instr::AssignErrBadTarget => {
                    vtry!(Err::<(), _>(ScriptError::BadIndex(
                        "assignment target must be a variable or index chain".into()
                    )));
                }
                Instr::AssignErrBadRoot => {
                    vtry!(Err::<(), _>(ScriptError::BadIndex(
                        "assignment target must be rooted at a variable".into()
                    )));
                }
                Instr::IterNew => {
                    let v = pop!();
                    let items = vtry!(iter_items(v));
                    iters.push(items.into_iter());
                }
                Instr::IterNext { slot, end } => {
                    let it = iters
                        .last_mut()
                        .expect("iterator stack: compiler invariant");
                    match it.next() {
                        Some(item) => locals[slot as usize] = item,
                        None => {
                            refund_jump!();
                            pc = end as usize;
                            continue;
                        }
                    }
                }
                Instr::IterPop => {
                    iters.pop();
                }
                Instr::LoopControlErr => {
                    vtry!(Err::<(), _>(ScriptError::StrayLoopControl));
                }
                Instr::Return => {
                    refund_jump!();
                    return Ok(pop!());
                }
                Instr::ReturnNull => {
                    refund_jump!();
                    return Ok(Value::Null);
                }
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;
    use crate::eval::{Evaluator, NullHost};

    /// Runs both engines on `src` with `budget` fuel, asserting identical
    /// outcomes and fuel accounting; returns the shared outcome.
    fn both(src: &str, budget: u64) -> Result<Value, ScriptError> {
        let p = Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
        let mut h1 = NullHost;
        let mut interp = Evaluator::with_fuel(&mut h1, budget);
        let a = interp.run(&p, &[]);
        let mut h2 = NullHost;
        let mut vm = Vm::with_fuel(&mut h2, budget);
        let b = vm.run(&p.compiled(), &[]);
        assert_eq!(a, b, "result drift on {src:?} at budget {budget}");
        assert_eq!(
            interp.fuel_used(),
            vm.fuel_used(),
            "fuel drift on {src:?} at budget {budget}"
        );
        b
    }

    #[test]
    fn arithmetic_and_locals_agree() {
        assert_eq!(
            both("let x = 2; let y = 3; return x * y + 1;", 1000).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn loops_and_branches_agree() {
        let src = "let s = 0; let i = 0; \
                   while (i < 10) { if (i % 2 == 0) { s = s + i; } i = i + 1; } \
                   return s;";
        // `%` is not an operator spelling here; use rem-style arithmetic.
        let src = src.replace("i % 2 == 0", "i - (i / 2) * 2 == 0");
        assert_eq!(both(&src, 10_000).unwrap(), Value::Int(20));
    }

    #[test]
    fn exhaustion_points_agree_across_full_budget_sweep() {
        let src = "let s = \"\"; for (i in range(6)) { s = s + str(i); \
                   if (i > 3) { break; } } return s;";
        let p = Program::parse(src).unwrap();
        let full = {
            let mut h = NullHost;
            let mut vm = Vm::new(&mut h);
            vm.run(&p.compiled(), &[]).unwrap();
            vm.fuel_used()
        };
        for budget in 0..=full + 2 {
            let _ = both(src, budget);
        }
    }

    #[test]
    fn undefined_and_stray_control_errors_agree() {
        assert!(matches!(
            both("return nope;", 100),
            Err(ScriptError::UndefinedVariable(_))
        ));
        assert!(matches!(
            both("if (true) { let x = 1; } return x;", 100),
            Err(ScriptError::UndefinedVariable(_))
        ));
        assert!(matches!(
            both("break;", 100),
            Err(ScriptError::StrayLoopControl)
        ));
    }

    #[test]
    fn indexed_assignment_agrees() {
        let src = "let m = {\"a\": [1, 2], \"b\": 0}; m[\"a\"][1] = 9; return m[\"a\"][1];";
        assert_eq!(both(src, 1000).unwrap(), Value::Int(9));

        // Malformed targets are parser-rejected, but `from_parts` can still
        // build them; both engines must raise the same runtime error.
        use crate::ast::{Expr, Stmt};
        let bad_root = Program::from_parts(
            Vec::new(),
            vec![Stmt::Assign(
                Expr::Index(
                    Box::new(Expr::Call(
                        "len".into(),
                        vec![Expr::Literal(Value::from("x"))],
                    )),
                    Box::new(Expr::Literal(Value::Int(0))),
                ),
                Expr::Literal(Value::Int(1)),
            )],
        );
        let bad_target = Program::from_parts(
            Vec::new(),
            vec![Stmt::Assign(
                Expr::Literal(Value::Int(3)),
                Expr::Literal(Value::Int(1)),
            )],
        );
        for p in [bad_root, bad_target] {
            let mut h1 = NullHost;
            let mut interp = Evaluator::new(&mut h1);
            let a = interp.run(&p, &[]);
            let mut h2 = NullHost;
            let mut vm = Vm::new(&mut h2);
            let b = vm.run(&p.compiled(), &[]);
            assert!(matches!(a, Err(ScriptError::BadIndex(_))), "{a:?}");
            assert_eq!(a, b);
            assert_eq!(interp.fuel_used(), vm.fuel_used());
        }
    }

    #[test]
    fn host_call_traces_agree() {
        struct Recorder(Vec<(String, Vec<Value>)>);
        impl HostContext for Recorder {
            fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
                self.0.push((name.to_owned(), args.to_vec()));
                Ok(Value::Int(self.0.len() as i64))
            }
        }
        let src = "let a = self.first(1, \"two\"); let b = self.second(a); return b;";
        let p = Program::parse(src).unwrap();
        let mut r1 = Recorder(Vec::new());
        let out1 = Evaluator::new(&mut r1).run(&p, &[]);
        let mut r2 = Recorder(Vec::new());
        let out2 = Vm::new(&mut r2).run(&p.compiled(), &[]);
        assert_eq!(out1, out2);
        assert_eq!(r1.0, r2.0, "host-call trace drift");
    }

    #[test]
    fn params_bind_positionally_like_the_interpreter() {
        let p = Program::from_parts(
            vec!["a".into(), "b".into()],
            Program::parse("return [a, b, args];")
                .unwrap()
                .body()
                .to_vec(),
        );
        let args = [Value::Int(1)];
        let mut h1 = NullHost;
        let a = Evaluator::new(&mut h1).run(&p, &args).unwrap();
        let mut h2 = NullHost;
        let b = Vm::new(&mut h2).run(&p.compiled(), &args).unwrap();
        assert_eq!(a, b);
    }
}
