//! Static admission analysis for mobile method programs.
//!
//! A host that accepts foreign, self-describing objects should not discover
//! dangling `self.*` calls, uses of undeclared variables, or hostile
//! resource shapes only when (or if) a body finally runs. This module is
//! the *checking half* of MROM's self-representation story: a multi-pass
//! analyzer over [`Program`] ASTs that produces structured [`Diagnostic`]s
//! and a [`HostManifest`] — the exact `self.*` capability surface a body
//! touches — which `mrom-core` cross-checks against the owning object's
//! actual items and ACLs at every trust boundary (migration images,
//! `addMethod`/`setMethod`, ambassador instantiation).
//!
//! Passes:
//!
//! 1. **Scope / def-use** — mirrors the evaluator's frame semantics
//!    exactly: `args` and declared params live in the root frame, every
//!    block pushes a frame, `let` declares in the current frame, `for`
//!    declares its loop variable per iteration. A name that can never
//!    resolve is [`DiagnosticKind::UndefinedVariable`]; a name that is
//!    declared somewhere but not on this path (a `let` inside one `if` arm,
//!    or later in the block) is [`DiagnosticKind::UseBeforeAssign`].
//! 2. **Host-call manifest** — classifies every `self.*` call against the
//!    known host surface, recording which data items are read/written,
//!    which methods are invoked, and which meta-methods are exercised.
//!    Names outside the surface route to the world hook and are bucketed,
//!    not flagged.
//! 3. **Resource shape** — node count, nesting depth, and a static fuel
//!    upper bound for loop-free bodies, so hosts can price admission
//!    before running anything.
//!
//! The object-level cross-check (pass 4 of the admission pipeline) lives in
//! `mrom-core`, which knows the owning object's items and ACLs.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use mrom_value::Value;

use crate::ast::{Expr, Program, Stmt};
use crate::parser::MAX_EXPR_DEPTH;

/// Default node-count budget: far above any real method body, low enough
/// that a host prices a megabyte of mobile AST as hostile.
pub const DEFAULT_NODE_BUDGET: usize = 20_000;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Style/suspicion: admission proceeds even under strict policies.
    Warning,
    /// The body will (or can never not) fail at run time, or violates a
    /// resource budget. Strict admission rejects.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What kind of defect a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagnosticKind {
    /// A variable that is declared nowhere in the program.
    UndefinedVariable,
    /// A variable that is declared somewhere — in one `if` arm, in a loop
    /// body, or later in the same block — but is not in scope at this use.
    UseBeforeAssign,
    /// A declared parameter the body never reads.
    UnusedParam,
    /// An assignment that overwrites a declared parameter.
    AssignToParam,
    /// A call to a builtin the evaluator does not define.
    UnknownBuiltin,
    /// A known builtin called with an argument count it never accepts.
    BuiltinArity,
    /// A known `self.*` host call with an argument count it never accepts.
    HostCallArity,
    /// `break`/`continue` outside any loop.
    StrayLoopControl,
    /// A `self.*` data access naming an item the owning object lacks.
    DanglingDataItem,
    /// A `self.invoke`/method reference naming a method the owning object
    /// lacks.
    DanglingMethodCall,
    /// A reflective meta-method referenced by name that the owning object
    /// does not carry.
    UnknownMetaMethod,
    /// A call that no principal — the executing object included — could
    /// ever be permitted to make (an `Acl::Nobody` gate).
    AclUnsatisfiable,
    /// Nesting depth exceeds the admission budget.
    DepthBudget,
    /// AST node count exceeds the admission budget.
    NodeBudget,
    /// The static fuel upper bound exceeds the admission budget.
    FuelBudget,
    /// The compiled bytecode failed independent verification
    /// ([`crate::verify`]) — the compiled form must not be executed.
    BytecodeVerify,
}

impl DiagnosticKind {
    /// Stable lowercase identifier (CLI output, logs).
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagnosticKind::UndefinedVariable => "undefined-variable",
            DiagnosticKind::UseBeforeAssign => "use-before-assign",
            DiagnosticKind::UnusedParam => "unused-param",
            DiagnosticKind::AssignToParam => "assign-to-param",
            DiagnosticKind::UnknownBuiltin => "unknown-builtin",
            DiagnosticKind::BuiltinArity => "builtin-arity",
            DiagnosticKind::HostCallArity => "host-call-arity",
            DiagnosticKind::StrayLoopControl => "stray-loop-control",
            DiagnosticKind::DanglingDataItem => "dangling-data-item",
            DiagnosticKind::DanglingMethodCall => "dangling-method-call",
            DiagnosticKind::UnknownMetaMethod => "unknown-meta-method",
            DiagnosticKind::AclUnsatisfiable => "acl-unsatisfiable",
            DiagnosticKind::DepthBudget => "depth-budget",
            DiagnosticKind::NodeBudget => "node-budget",
            DiagnosticKind::FuelBudget => "fuel-budget",
            DiagnosticKind::BytecodeVerify => "bytecode-verify",
        }
    }

    /// The severity this kind carries.
    pub fn severity(&self) -> Severity {
        match self {
            DiagnosticKind::UnusedParam | DiagnosticKind::AssignToParam => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: kind, severity, a statement path into the AST, and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What was found.
    pub kind: DiagnosticKind,
    /// How serious it is.
    pub severity: Severity,
    /// A dotted path into the program (`body[1].then[0]`), prefixed with
    /// the method/part context when the diagnostic comes from an object
    /// cross-check (`greet.body: body[0]`).
    pub path: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with the kind's default severity.
    pub fn new(kind: DiagnosticKind, path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            severity: kind.severity(),
            path: path.into(),
            message: message.into(),
        }
    }

    /// Returns the diagnostic with its path prefixed by an owning context
    /// (used by object-level cross-checks).
    #[must_use]
    pub fn in_context(mut self, context: &str) -> Self {
        self.path = if self.path.is_empty() {
            context.to_owned()
        } else {
            format!("{context}: {}", self.path)
        };
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.kind, self.path, self.message
        )
    }
}

/// The exact `self.*` capability surface a program touches — what a host
/// learns about a body without running it. Names are recorded when they
/// appear as literal strings; computed names set the `dynamic_*` flags
/// instead (the body's surface is then not statically bounded).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostManifest {
    /// Data items read (`self.get`, `self.get_data_item`).
    pub data_read: BTreeSet<String>,
    /// Data items written (`self.set`, `self.set_data_item`).
    pub data_written: BTreeSet<String>,
    /// Data items created (`self.add_data_item`).
    pub data_created: BTreeSet<String>,
    /// Data items deleted (`self.delete_data_item`).
    pub data_deleted: BTreeSet<String>,
    /// Methods invoked (`self.invoke`).
    pub methods_invoked: BTreeSet<String>,
    /// Methods referenced structurally (`self.get_method`, `self.set_method`,
    /// `self.delete_method`, `self.install_meta_invoke`).
    pub methods_referenced: BTreeSet<String>,
    /// Methods created (`self.add_method`).
    pub methods_created: BTreeSet<String>,
    /// Reflective meta-methods exercised, by host-surface name
    /// (`"add_method"`, `"invoke"`, ...).
    pub meta_used: BTreeSet<String>,
    /// `self.*` names outside the host surface, routed to the world hook.
    pub world_calls: BTreeSet<String>,
    /// Total number of `self.*` call sites.
    pub host_call_sites: usize,
    /// A data-item access used a computed (non-literal) name.
    pub dynamic_data: bool,
    /// A method access used a computed (non-literal) name.
    pub dynamic_methods: bool,
}

impl HostManifest {
    /// True when the body touches no host surface at all (a pure program).
    pub fn is_pure(&self) -> bool {
        self.host_call_sites == 0
    }

    /// Folds another manifest into this one (used to summarize a whole
    /// object from its per-body manifests).
    pub fn merge(&mut self, other: &HostManifest) {
        self.data_read.extend(other.data_read.iter().cloned());
        self.data_written.extend(other.data_written.iter().cloned());
        self.data_created.extend(other.data_created.iter().cloned());
        self.data_deleted.extend(other.data_deleted.iter().cloned());
        self.methods_invoked
            .extend(other.methods_invoked.iter().cloned());
        self.methods_referenced
            .extend(other.methods_referenced.iter().cloned());
        self.methods_created
            .extend(other.methods_created.iter().cloned());
        self.meta_used.extend(other.meta_used.iter().cloned());
        self.world_calls.extend(other.world_calls.iter().cloned());
        self.host_call_sites += other.host_call_sites;
        self.dynamic_data |= other.dynamic_data;
        self.dynamic_methods |= other.dynamic_methods;
    }
}

/// Resource-shape budgets a host imposes at admission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Maximum AST node count ([`Program::node_count`]).
    pub max_nodes: usize,
    /// Maximum structural nesting depth (statements and expressions
    /// combined).
    pub max_depth: usize,
    /// Maximum static fuel bound for loop-free bodies; `None` disables the
    /// check. Bodies with loops have no static bound and are never flagged.
    pub max_static_fuel: Option<u64>,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget {
            max_nodes: DEFAULT_NODE_BUDGET,
            max_depth: MAX_EXPR_DEPTH,
            max_static_fuel: None,
        }
    }
}

/// Everything the analyzer learned about one program.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// All findings, in AST order.
    pub diagnostics: Vec<Diagnostic>,
    /// The `self.*` capability surface.
    pub manifest: HostManifest,
    /// AST node count.
    pub node_count: usize,
    /// Maximum structural nesting depth.
    pub max_depth: usize,
    /// Static fuel upper bound for loop-free bodies; `None` when the body
    /// loops (no static bound exists). The bound prices every statement,
    /// expression, and host-call surcharge the evaluator would burn;
    /// builtin data-size surcharges are priced at literal argument sizes,
    /// so container-valued runtime arguments may exceed it.
    pub static_fuel: Option<u64>,
    /// True when this pass also compiled the body to bytecode ("verify +
    /// compile", like a classloader). Set whenever no error-severity
    /// diagnostic was found; the compiled form is cached on the
    /// [`Program`] itself and reused by every subsequent VM execution.
    pub precompiled: bool,
    /// True when the compiled form also passed the independent bytecode
    /// verifier ([`crate::verify`]). Always true for compiler output in
    /// practice; a `false` here (with a
    /// [`DiagnosticKind::BytecodeVerify`] error) means the compiled form
    /// must not be executed.
    pub verified: bool,
}

impl AnalysisReport {
    /// True when no diagnostics (of any severity) were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

/// Analyzes a program under the default [`ResourceBudget`].
pub fn analyze_program(program: &Program) -> AnalysisReport {
    analyze_with_budget(program, &ResourceBudget::default())
}

/// Analyzes a program under an explicit resource budget.
pub fn analyze_with_budget(program: &Program, budget: &ResourceBudget) -> AnalysisReport {
    let mut diagnostics = Vec::new();

    // Pass 1: scope / def-use.
    scope_pass(program, &mut diagnostics);

    // Pass 2: host-call manifest (+ host/builtin surface diagnostics).
    let manifest = manifest_pass(program, &mut diagnostics);

    // Pass 3: resource shape.
    let node_count = program.node_count();
    let max_depth = program_depth(program);
    let static_fuel = static_fuel_bound(program);
    if node_count > budget.max_nodes {
        diagnostics.push(Diagnostic::new(
            DiagnosticKind::NodeBudget,
            "program",
            format!(
                "{node_count} AST nodes exceed the admission budget of {}",
                budget.max_nodes
            ),
        ));
    }
    if max_depth > budget.max_depth {
        diagnostics.push(Diagnostic::new(
            DiagnosticKind::DepthBudget,
            "program",
            format!(
                "nesting depth {max_depth} exceeds the admission budget of {}",
                budget.max_depth
            ),
        ));
    }
    if let (Some(bound), Some(limit)) = (static_fuel, budget.max_static_fuel) {
        if bound > limit {
            diagnostics.push(Diagnostic::new(
                DiagnosticKind::FuelBudget,
                "program",
                format!("static fuel bound {bound} exceeds the admission budget of {limit}"),
            ));
        }
    }

    // Multiple passes can trip over the same defect at the same spot
    // (scope *and* manifest both flag one expression, or a repeated
    // subexpression repeats its finding). One defect, one diagnostic:
    // dedup by (kind, path, message), keeping first-found order.
    let mut seen: HashSet<(DiagnosticKind, String, String)> = HashSet::new();
    diagnostics.retain(|d| seen.insert((d.kind, d.path.clone(), d.message.clone())));

    // Admission doubles as the compile pass: a body that verified clean
    // (warnings allowed) is lowered to bytecode here, so the first
    // invocation already finds the cache on the `Program` hot. The
    // compiled form is then *independently* checked by the bytecode
    // verifier — trust in the compiler is not assumed at a boundary.
    let has_errors = diagnostics.iter().any(|d| d.severity == Severity::Error);
    let (precompiled, verified) = if has_errors {
        (false, false)
    } else {
        match crate::verify::verify(&program.compiled()) {
            Ok(()) => (true, true),
            Err(e) => {
                diagnostics.push(Diagnostic::new(
                    DiagnosticKind::BytecodeVerify,
                    "program",
                    format!("compiled form failed bytecode verification: {e}"),
                ));
                (true, false)
            }
        }
    };

    AnalysisReport {
        diagnostics,
        manifest,
        node_count,
        max_depth,
        static_fuel,
        precompiled,
        verified,
    }
}

// ---------------------------------------------------------------------------
// Pass 1: scope / def-use
// ---------------------------------------------------------------------------

struct ScopeCheck<'p> {
    /// Lexical frames, innermost last — exactly the evaluator's `Scopes`.
    frames: Vec<BTreeSet<String>>,
    /// Every name the program declares anywhere (params, `let`s, loop
    /// vars): distinguishes a typo from a scoping mistake.
    declared_anywhere: BTreeSet<String>,
    params: &'p [String],
    params_read: BTreeSet<String>,
    args_used: bool,
    loop_depth: usize,
    diagnostics: &'p mut Vec<Diagnostic>,
}

fn scope_pass(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    let mut declared_anywhere = BTreeSet::new();
    declared_anywhere.insert("args".to_owned());
    declared_anywhere.extend(program.params().iter().cloned());
    collect_declarations(program.body(), &mut declared_anywhere);

    let mut root = BTreeSet::new();
    root.insert("args".to_owned());
    root.extend(program.params().iter().cloned());

    let mut check = ScopeCheck {
        frames: vec![root],
        declared_anywhere,
        params: program.params(),
        params_read: BTreeSet::new(),
        args_used: false,
        loop_depth: 0,
        diagnostics,
    };
    check.block(program.body(), &Path::root());

    // Params reachable only through `args` still count as used: once a body
    // touches `args`, positional parameters are aliased and the warning
    // would be noise.
    if !check.args_used {
        for p in program.params() {
            if !check.params_read.contains(p) {
                check.diagnostics.push(Diagnostic::new(
                    DiagnosticKind::UnusedParam,
                    "params",
                    format!("parameter {p:?} is never read"),
                ));
            }
        }
    }
}

fn collect_declarations(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::Let(name, _) => {
                out.insert(name.clone());
            }
            Stmt::If(_, a, b) => {
                collect_declarations(a, out);
                collect_declarations(b, out);
            }
            Stmt::While(_, body) => collect_declarations(body, out),
            Stmt::For(name, _, body) => {
                out.insert(name.clone());
                collect_declarations(body, out);
            }
            _ => {}
        }
    }
}

impl ScopeCheck<'_> {
    fn in_scope(&self, name: &str) -> bool {
        self.frames.iter().any(|f| f.contains(name))
    }

    /// Whether a resolved name is a parameter binding (declared in the root
    /// frame and not shadowed by an inner frame).
    fn resolves_to_param(&self, name: &str) -> bool {
        self.params.iter().any(|p| p == name) && !self.frames[1..].iter().any(|f| f.contains(name))
    }

    fn read(&mut self, name: &str, path: &Path) {
        if self.in_scope(name) {
            if name == "args" {
                self.args_used = true;
            }
            if self.resolves_to_param(name) {
                self.params_read.insert(name.to_owned());
            }
            return;
        }
        self.unresolved(name, "read", path);
    }

    fn write(&mut self, name: &str, path: &Path) {
        if self.in_scope(name) {
            if self.resolves_to_param(name) {
                self.diagnostics.push(Diagnostic::new(
                    DiagnosticKind::AssignToParam,
                    path.render(),
                    format!("assignment overwrites parameter {name:?}"),
                ));
            }
            return;
        }
        self.unresolved(name, "assign to", path);
    }

    fn unresolved(&mut self, name: &str, action: &str, path: &Path) {
        let (kind, hint) = if self.declared_anywhere.contains(name) {
            (
                DiagnosticKind::UseBeforeAssign,
                " (declared in another branch or later in the block; block-local `let`s do not survive their block)",
            )
        } else {
            (DiagnosticKind::UndefinedVariable, "")
        };
        self.diagnostics.push(Diagnostic::new(
            kind,
            path.render(),
            format!("cannot {action} {name:?}: not in scope here{hint}"),
        ));
    }

    fn block(&mut self, stmts: &[Stmt], path: &Path) {
        self.frames.push(BTreeSet::new());
        for (i, s) in stmts.iter().enumerate() {
            self.stmt(s, &path.index(i));
        }
        self.frames.pop();
    }

    fn stmt(&mut self, s: &Stmt, path: &Path) {
        match s {
            Stmt::Let(name, e) => {
                // RHS evaluates before the declaration takes effect.
                self.expr(e, path);
                self.frames
                    .last_mut()
                    .expect("root frame always present")
                    .insert(name.clone());
            }
            Stmt::Assign(target, e) => {
                self.expr(e, path);
                self.assign_target(target, path);
            }
            Stmt::Expr(e) => self.expr(e, path),
            Stmt::If(c, a, b) => {
                self.expr(c, path);
                self.block(a, &path.branch("then"));
                self.block(b, &path.branch("else"));
            }
            Stmt::While(c, body) => {
                self.expr(c, path);
                self.loop_depth += 1;
                self.block(body, &path.branch("while"));
                self.loop_depth -= 1;
            }
            Stmt::For(name, iter, body) => {
                self.expr(iter, path);
                self.loop_depth += 1;
                self.frames.push(BTreeSet::from([name.clone()]));
                for (i, s) in body.iter().enumerate() {
                    self.stmt(s, &path.branch("for").index(i));
                }
                self.frames.pop();
                self.loop_depth -= 1;
            }
            Stmt::Return(Some(e)) => self.expr(e, path),
            Stmt::Return(None) => {}
            Stmt::Break | Stmt::Continue => {
                if self.loop_depth == 0 {
                    self.diagnostics.push(Diagnostic::new(
                        DiagnosticKind::StrayLoopControl,
                        path.render(),
                        "break/continue outside any loop".to_owned(),
                    ));
                }
            }
        }
    }

    fn assign_target(&mut self, target: &Expr, path: &Path) {
        match target {
            Expr::Var(name) => self.write(name, path),
            Expr::Index(base, idx) => {
                self.expr(idx, path);
                self.assign_target(base, path);
            }
            // Unreachable from the parser/decoder; tolerate gracefully.
            other => self.expr(other, path),
        }
    }

    fn expr(&mut self, e: &Expr, path: &Path) {
        match e {
            Expr::Literal(_) => {}
            Expr::Var(name) => self.read(name, path),
            Expr::Unary(_, a) => self.expr(a, path),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                self.expr(a, path);
                self.expr(b, path);
            }
            Expr::Call(name, args) => {
                for a in args {
                    self.expr(a, path);
                }
                match builtin_arities(name) {
                    None => self.diagnostics.push(Diagnostic::new(
                        DiagnosticKind::UnknownBuiltin,
                        path.render(),
                        format!("no builtin named {name:?}"),
                    )),
                    Some(allowed) if !allowed.contains(&args.len()) => {
                        self.diagnostics.push(Diagnostic::new(
                            DiagnosticKind::BuiltinArity,
                            path.render(),
                            format!(
                                "builtin {name:?} accepts {allowed:?} arguments, got {}",
                                args.len()
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
            Expr::HostCall(_, args) | Expr::ListExpr(args) => {
                for a in args {
                    self.expr(a, path);
                }
            }
            Expr::MapExpr(entries) => {
                for (_, v) in entries {
                    self.expr(v, path);
                }
            }
        }
    }
}

/// The argument counts each builtin accepts (mirrors the evaluator's
/// dispatch table exactly).
fn builtin_arities(name: &str) -> Option<&'static [usize]> {
    Some(match name {
        "len" | "typeof" | "str" | "int" | "float" | "bool" | "pop" | "last" | "keys"
        | "values" | "upper" | "lower" | "trim" | "abs" | "fail" | "bytes" | "objectref" => &[1],
        "coerce" | "push" | "contains" | "remove" | "split" | "join" | "min" | "max" => &[2],
        "set" | "substr" => &[3],
        "range" => &[1, 2],
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Pass 2: host-call manifest
// ---------------------------------------------------------------------------

/// What a known host call touches.
enum HostTarget {
    DataRead,
    DataWrite,
    DataCreate,
    DataDelete,
    DataProbe,
    MethodInvoke,
    MethodRef,
    MethodCreate,
    MethodProbe,
    None,
}

struct HostSig {
    arities: &'static [usize],
    target: HostTarget,
    /// Which reflective meta-method the call exercises, if any.
    meta: bool,
}

/// The `self.*` surface `mrom-core`'s script bridge serves (anything else
/// is forwarded to the world hook).
fn host_signature(name: &str) -> Option<HostSig> {
    fn sig(arities: &'static [usize], target: HostTarget, meta: bool) -> Option<HostSig> {
        Some(HostSig {
            arities,
            target,
            meta,
        })
    }
    match name {
        "get" => sig(&[1], HostTarget::DataRead, false),
        "set" => sig(&[2], HostTarget::DataWrite, false),
        "get_data_item" => sig(&[1], HostTarget::DataRead, true),
        "set_data_item" => sig(&[2], HostTarget::DataWrite, true),
        "add_data_item" => sig(&[2, 3], HostTarget::DataCreate, true),
        "delete_data_item" => sig(&[1], HostTarget::DataDelete, true),
        "get_method" => sig(&[1], HostTarget::MethodRef, true),
        "set_method" => sig(&[2], HostTarget::MethodRef, true),
        "add_method" => sig(&[2], HostTarget::MethodCreate, true),
        "delete_method" => sig(&[1], HostTarget::MethodRef, true),
        "invoke" => sig(&[1, 2], HostTarget::MethodInvoke, true),
        "install_meta_invoke" => sig(&[1], HostTarget::MethodRef, false),
        "uninstall_meta_invoke" => sig(&[0], HostTarget::None, false),
        "id" | "origin" | "class" | "caller" | "describe" | "list_data" | "list_methods" => {
            sig(&[0], HostTarget::None, false)
        }
        "get_stats" => sig(&[0], HostTarget::None, true),
        "get_effects" => sig(&[0, 1], HostTarget::None, true),
        "has_data" => sig(&[1], HostTarget::DataProbe, false),
        "has_method" => sig(&[1], HostTarget::MethodProbe, false),
        _ => None,
    }
}

fn manifest_pass(program: &Program, diagnostics: &mut Vec<Diagnostic>) -> HostManifest {
    let mut m = HostManifest::default();
    walk_manifest(program.body(), &Path::root(), &mut m, diagnostics);
    m
}

fn walk_manifest(
    stmts: &[Stmt],
    path: &Path,
    m: &mut HostManifest,
    diagnostics: &mut Vec<Diagnostic>,
) {
    for (i, s) in stmts.iter().enumerate() {
        let p = path.index(i);
        match s {
            Stmt::Let(_, e) | Stmt::Expr(e) | Stmt::Return(Some(e)) => {
                manifest_expr(e, &p, m, diagnostics);
            }
            Stmt::Assign(t, e) => {
                manifest_expr(t, &p, m, diagnostics);
                manifest_expr(e, &p, m, diagnostics);
            }
            Stmt::If(c, a, b) => {
                manifest_expr(c, &p, m, diagnostics);
                walk_manifest(a, &p.branch("then"), m, diagnostics);
                walk_manifest(b, &p.branch("else"), m, diagnostics);
            }
            Stmt::While(c, body) => {
                manifest_expr(c, &p, m, diagnostics);
                walk_manifest(body, &p.branch("while"), m, diagnostics);
            }
            Stmt::For(_, e, body) => {
                manifest_expr(e, &p, m, diagnostics);
                walk_manifest(body, &p.branch("for"), m, diagnostics);
            }
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

fn manifest_expr(e: &Expr, path: &Path, m: &mut HostManifest, diagnostics: &mut Vec<Diagnostic>) {
    match e {
        Expr::Literal(_) | Expr::Var(_) => {}
        Expr::Unary(_, a) => manifest_expr(a, path, m, diagnostics),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            manifest_expr(a, path, m, diagnostics);
            manifest_expr(b, path, m, diagnostics);
        }
        Expr::Call(_, args) | Expr::ListExpr(args) => {
            for a in args {
                manifest_expr(a, path, m, diagnostics);
            }
        }
        Expr::MapExpr(entries) => {
            for (_, v) in entries {
                manifest_expr(v, path, m, diagnostics);
            }
        }
        Expr::HostCall(name, args) => {
            for a in args {
                manifest_expr(a, path, m, diagnostics);
            }
            m.host_call_sites += 1;
            let Some(sig) = host_signature(name) else {
                m.world_calls.insert(name.clone());
                return;
            };
            if !sig.arities.contains(&args.len()) {
                diagnostics.push(Diagnostic::new(
                    DiagnosticKind::HostCallArity,
                    path.render(),
                    format!(
                        "self.{name} accepts {:?} arguments, got {}",
                        sig.arities,
                        args.len()
                    ),
                ));
            }
            if sig.meta {
                m.meta_used.insert(name.clone());
            }
            let literal_name = args.first().and_then(|a| match a {
                Expr::Literal(Value::Str(s)) => Some(s.clone()),
                _ => None,
            });
            let (set, dynamic): (Option<&mut BTreeSet<String>>, Option<&mut bool>) = match sig
                .target
            {
                HostTarget::DataRead => (Some(&mut m.data_read), Some(&mut m.dynamic_data)),
                HostTarget::DataWrite => (Some(&mut m.data_written), Some(&mut m.dynamic_data)),
                HostTarget::DataCreate => (Some(&mut m.data_created), Some(&mut m.dynamic_data)),
                HostTarget::DataDelete => (Some(&mut m.data_deleted), Some(&mut m.dynamic_data)),
                HostTarget::DataProbe => (None, None),
                HostTarget::MethodInvoke => {
                    (Some(&mut m.methods_invoked), Some(&mut m.dynamic_methods))
                }
                HostTarget::MethodRef => (
                    Some(&mut m.methods_referenced),
                    Some(&mut m.dynamic_methods),
                ),
                HostTarget::MethodCreate => {
                    (Some(&mut m.methods_created), Some(&mut m.dynamic_methods))
                }
                HostTarget::MethodProbe => (None, None),
                HostTarget::None => (None, None),
            };
            if let Some(set) = set {
                match literal_name {
                    Some(n) => {
                        set.insert(n);
                    }
                    None => {
                        if !args.is_empty() {
                            if let Some(flag) = dynamic {
                                *flag = true;
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: resource shape
// ---------------------------------------------------------------------------

/// Maximum structural nesting depth: statements and expressions combined,
/// the same notion the parser and the tree decoder bound.
pub fn program_depth(program: &Program) -> usize {
    fn expr_depth(e: &Expr) -> usize {
        1 + match e {
            Expr::Literal(_) | Expr::Var(_) => 0,
            Expr::Unary(_, a) => expr_depth(a),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => expr_depth(a).max(expr_depth(b)),
            Expr::Call(_, args) | Expr::HostCall(_, args) | Expr::ListExpr(args) => {
                args.iter().map(expr_depth).max().unwrap_or(0)
            }
            Expr::MapExpr(entries) => entries
                .iter()
                .map(|(_, v)| expr_depth(v))
                .max()
                .unwrap_or(0),
        }
    }
    fn stmt_depth(s: &Stmt) -> usize {
        1 + match s {
            Stmt::Let(_, e) | Stmt::Expr(e) | Stmt::Return(Some(e)) => expr_depth(e),
            Stmt::Assign(t, e) => expr_depth(t).max(expr_depth(e)),
            Stmt::If(c, a, b) => expr_depth(c).max(block_depth(a)).max(block_depth(b)),
            Stmt::While(c, body) => expr_depth(c).max(block_depth(body)),
            Stmt::For(_, e, body) => expr_depth(e).max(block_depth(body)),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => 0,
        }
    }
    fn block_depth(stmts: &[Stmt]) -> usize {
        stmts.iter().map(stmt_depth).max().unwrap_or(0)
    }
    block_depth(program.body())
}

/// Static upper bound on the fuel a loop-free body can burn, mirroring the
/// evaluator's burn sites: 1 per statement, 1 per expression, 8 extra per
/// host call, and the builtin data-size surcharge priced at literal
/// argument sizes (non-literal arguments are priced as scalars — see
/// [`AnalysisReport::static_fuel`]). Returns `None` when the body contains
/// a loop.
pub fn static_fuel_bound(program: &Program) -> Option<u64> {
    fn block(stmts: &[Stmt]) -> Option<u64> {
        stmts
            .iter()
            .try_fold(0u64, |acc, s| Some(acc.saturating_add(stmt(s)?)))
    }
    fn stmt(s: &Stmt) -> Option<u64> {
        Some(match s {
            Stmt::Let(_, e) | Stmt::Expr(e) | Stmt::Return(Some(e)) => 1u64.saturating_add(expr(e)),
            Stmt::Assign(t, e) => 1u64.saturating_add(expr(e)).saturating_add(target_cost(t)),
            Stmt::If(c, a, b) => 1u64
                .saturating_add(expr(c))
                .saturating_add(block(a)?.max(block(b)?)),
            Stmt::While(..) | Stmt::For(..) => return None,
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => 1,
        })
    }
    /// An assignment target's base variable is not evaluated; only its
    /// index expressions are.
    fn target_cost(t: &Expr) -> u64 {
        match t {
            Expr::Index(base, idx) => expr(idx).saturating_add(target_cost(base)),
            _ => 0,
        }
    }
    fn expr(e: &Expr) -> u64 {
        use crate::eval::{alloc_surcharge, arg_cost, out_surcharge, BuiltinId};
        1u64.saturating_add(match e {
            Expr::Literal(_) | Expr::Var(_) => 0,
            Expr::Unary(_, a) => expr(a),
            Expr::Binary(op, a, b) => {
                // Literal operands price the evaluator's allocation
                // surcharge exactly; non-literal operand sizes are unknown
                // statically (see the caveat on `static_fuel`).
                let alloc = match (&**a, &**b) {
                    (Expr::Literal(va), Expr::Literal(vb)) => alloc_surcharge(*op, va, vb),
                    _ => 0,
                };
                expr(a).saturating_add(expr(b)).saturating_add(alloc)
            }
            Expr::Index(a, b) => expr(a).saturating_add(expr(b)),
            Expr::HostCall(_, args) => args.iter().fold(8u64, |acc, a| acc.saturating_add(expr(a))),
            Expr::Call(name, args) => {
                let eval: u64 = args.iter().fold(0u64, |acc, a| acc.saturating_add(expr(a)));
                // Price the evaluator's argument surcharge: exact for
                // literal arguments, scalar-minimum for computed ones.
                let surcharge: u64 = args
                    .iter()
                    .map(|a| match a {
                        Expr::Literal(v) => arg_cost(v),
                        _ => 1,
                    })
                    .sum::<u64>()
                    / 4;
                // Output-sized surcharge (`range`) is exact when every
                // argument is literal.
                let out: u64 = match BuiltinId::from_name(name) {
                    Some(id) if args.iter().all(|a| matches!(a, Expr::Literal(_))) => {
                        let vals: Vec<_> = args
                            .iter()
                            .filter_map(|a| match a {
                                Expr::Literal(v) => Some(v.clone()),
                                _ => None,
                            })
                            .collect();
                        out_surcharge(id, &vals)
                    }
                    _ => 0,
                };
                eval.saturating_add(surcharge).saturating_add(out)
            }
            Expr::ListExpr(args) => args.iter().fold(0u64, |acc, a| acc.saturating_add(expr(a))),
            Expr::MapExpr(entries) => entries
                .iter()
                .fold(0u64, |acc, (_, v)| acc.saturating_add(expr(v))),
        })
    }
    block(program.body())
}

// ---------------------------------------------------------------------------
// Statement paths
// ---------------------------------------------------------------------------

/// A cheap, purely-appending path builder (`body[1].then[0]`).
struct Path {
    rendered: String,
}

impl Path {
    fn root() -> Path {
        Path {
            rendered: "body".to_owned(),
        }
    }

    fn index(&self, i: usize) -> Path {
        Path {
            rendered: format!("{}[{i}]", self.rendered),
        }
    }

    fn branch(&self, name: &str) -> Path {
        Path {
            rendered: format!("{}.{name}", self.rendered),
        }
    }

    fn render(&self) -> String {
        self.rendered.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Evaluator, NullHost};

    fn report(src: &str) -> AnalysisReport {
        analyze_program(&Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}")))
    }

    fn kinds(src: &str) -> Vec<DiagnosticKind> {
        report(src).diagnostics.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_programs_are_clean() {
        for src in [
            "return 1 + 2;",
            "param a; param b; return a + b;",
            "let x = 1; if (x > 0) { x = 2; } return x;",
            "let s = 0; for (i in range(5)) { s = s + i; } return s;",
            "let i = 0; while (i < 3) { i = i + 1; if (i == 2) { break; } }",
            "return args[0];",
            "let v = self.get(\"count\"); self.set(\"count\", v + 1); return v;",
            "param m; param a; return self.invoke(m, a);",
        ] {
            let r = report(src);
            assert!(r.is_clean(), "{src:?} produced {:?}", r.diagnostics);
        }
    }

    #[test]
    fn undefined_variable() {
        assert_eq!(kinds("return ghost;"), [DiagnosticKind::UndefinedVariable]);
        assert_eq!(kinds("ghost = 1;"), [DiagnosticKind::UndefinedVariable]);
    }

    #[test]
    fn use_before_assign_across_joins() {
        // Declared in one if-arm only: out of scope at the join.
        assert_eq!(
            kinds("if (true) { let x = 1; } return x;"),
            [DiagnosticKind::UseBeforeAssign]
        );
        // Declared in a while body: may run zero times and is block-local.
        assert_eq!(
            kinds("while (false) { let y = 1; } return y;"),
            [DiagnosticKind::UseBeforeAssign]
        );
        // Declared later in the same block.
        assert_eq!(
            kinds("return z; let z = 1;"),
            [DiagnosticKind::UseBeforeAssign]
        );
        // Loop variables do not survive their loop.
        assert_eq!(
            kinds("for (i in range(3)) { } return i;"),
            [DiagnosticKind::UseBeforeAssign]
        );
    }

    #[test]
    fn let_rhs_does_not_see_its_own_binding() {
        // `x` IS declared (by this very let), just not yet in scope when
        // the RHS evaluates — a use-before-assign, not a typo.
        assert_eq!(kinds("let x = x;"), [DiagnosticKind::UseBeforeAssign]);
        // ... but an outer binding is fine (shadowing).
        assert!(report("let x = 1; if (true) { let x = x + 1; }").is_clean());
    }

    #[test]
    fn unused_param_is_a_warning() {
        let r = report("param used; param spare; return used;");
        assert_eq!(
            r.diagnostics.iter().map(|d| d.kind).collect::<Vec<_>>(),
            [DiagnosticKind::UnusedParam]
        );
        assert!(!r.has_errors());
        assert!(r.diagnostics[0].message.contains("spare"));
        // A body that touches `args` aliases every param positionally.
        assert!(report("param spare; return len(args);").is_clean());
    }

    #[test]
    fn assign_to_param_is_a_warning() {
        let r = report("param a; a = 1; return a;");
        assert_eq!(
            r.diagnostics.iter().map(|d| d.kind).collect::<Vec<_>>(),
            [DiagnosticKind::AssignToParam]
        );
        assert!(!r.has_errors());
        // Shadowing a param with a local is not an assignment to it.
        assert!(report("param a; if (true) { let a = 2; a = 3; } return a;").is_clean());
    }

    #[test]
    fn unknown_builtin_and_arity() {
        assert_eq!(
            kinds("return frobnicate(1);"),
            [DiagnosticKind::UnknownBuiltin]
        );
        assert_eq!(kinds("return len(1, 2);"), [DiagnosticKind::BuiltinArity]);
        assert!(report("return range(1, 5);").is_clean());
        assert_eq!(kinds("return range();"), [DiagnosticKind::BuiltinArity]);
    }

    #[test]
    fn host_call_arity() {
        assert_eq!(
            kinds("return self.get(\"a\", \"b\");"),
            [DiagnosticKind::HostCallArity]
        );
        assert_eq!(kinds("self.set(\"a\");"), [DiagnosticKind::HostCallArity]);
        assert!(report("return self.describe();").is_clean());
    }

    #[test]
    fn stray_loop_control() {
        assert_eq!(kinds("break;"), [DiagnosticKind::StrayLoopControl]);
        assert_eq!(
            kinds("if (true) { continue; }"),
            [DiagnosticKind::StrayLoopControl]
        );
        assert!(report("while (true) { if (true) { break; } }").is_clean());
    }

    #[test]
    fn manifest_captures_the_host_surface() {
        let r = report(
            "let v = self.get(\"hops\"); \
             self.set(\"hops\", v + 1); \
             self.add_data_item(\"fresh\", 0); \
             self.invoke(\"greet\", [1]); \
             self.add_method(\"extra\", \"return 1;\"); \
             self.install_meta_invoke(\"mi\"); \
             self.charge_account(3); \
             return self.describe();",
        );
        let m = &r.manifest;
        assert!(m.data_read.contains("hops"));
        assert!(m.data_written.contains("hops"));
        assert!(m.data_created.contains("fresh"));
        assert!(m.methods_invoked.contains("greet"));
        assert!(m.methods_created.contains("extra"));
        assert!(m.methods_referenced.contains("mi"));
        assert!(m.world_calls.contains("charge_account"));
        assert!(m.meta_used.contains("invoke"));
        assert!(m.meta_used.contains("add_method"));
        assert_eq!(m.host_call_sites, 8);
        assert!(!m.dynamic_data);
        assert!(!m.dynamic_methods);
    }

    #[test]
    fn computed_names_set_dynamic_flags() {
        let r = report("param n; return self.get(n);");
        assert!(r.manifest.dynamic_data);
        assert!(r.manifest.data_read.is_empty());
        let r = report("param m; self.invoke(m, []);");
        assert!(r.manifest.dynamic_methods);
    }

    #[test]
    fn pure_programs_have_empty_manifests() {
        let r = report("return 1 + 2;");
        assert!(r.manifest.is_pure());
    }

    #[test]
    fn node_budget() {
        let p = Program::parse("return 1 + 2 + 3;").unwrap();
        let tight = ResourceBudget {
            max_nodes: 2,
            ..ResourceBudget::default()
        };
        let r = analyze_with_budget(&p, &tight);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagnosticKind::NodeBudget));
    }

    #[test]
    fn depth_budget() {
        let p = Program::parse("return ((((1))));").unwrap(); // parens fold; build deep by hand
        let deep = Program::from_parts(
            vec![],
            vec![Stmt::Return(Some(
                (0..20).fold(Expr::Literal(Value::Int(1)), |acc, _| {
                    Expr::Unary(crate::ast::UnaryOp::Not, Box::new(acc))
                }),
            ))],
        );
        let tight = ResourceBudget {
            max_depth: 8,
            ..ResourceBudget::default()
        };
        assert!(analyze_with_budget(&deep, &tight)
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagnosticKind::DepthBudget));
        assert!(analyze_with_budget(&p, &ResourceBudget::default()).is_clean());
    }

    #[test]
    fn fuel_budget_flags_expensive_loop_free_bodies() {
        let p = Program::parse("self.a(); self.b(); self.c();").unwrap();
        let bound = static_fuel_bound(&p).expect("loop-free");
        let tight = ResourceBudget {
            max_static_fuel: Some(bound - 1),
            ..ResourceBudget::default()
        };
        assert!(analyze_with_budget(&p, &tight)
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagnosticKind::FuelBudget));
        let loose = ResourceBudget {
            max_static_fuel: Some(bound),
            ..ResourceBudget::default()
        };
        assert!(analyze_with_budget(&p, &loose).is_clean());
    }

    #[test]
    fn static_fuel_bound_dominates_actual_burn() {
        // For loop-free bodies with scalar data, the bound must dominate
        // what the evaluator actually burns.
        for src in [
            "return 1 + 2 * 3;",
            "param a; param b; if (a > b) { return a; } else { return b; }",
            "let x = [1, 2, 3]; x[0] = 9; return x[0] + x[1];",
            "return len([1, 2, 3]) + contains(\"abc\", \"b\");",
            "let m = {\"k\": 1}; return m[\"k\"] == 1 && true || false;",
            "self.x(); self.y(1, 2); return min(3, 4);",
            "return substr(\"hello\", 1, 3) + str(42);",
        ] {
            let p = Program::parse(src).unwrap();
            let bound = static_fuel_bound(&p).expect("loop-free");
            struct Free;
            impl crate::eval::HostContext for Free {
                fn host_call(
                    &mut self,
                    _: &str,
                    _: &[Value],
                ) -> Result<Value, crate::error::ScriptError> {
                    Ok(Value::Null)
                }
            }
            let mut host = Free;
            let mut ev = Evaluator::new(&mut host);
            let _ = ev.run(&p, &[Value::Int(1), Value::Int(2)]);
            assert!(
                ev.fuel_used() <= bound,
                "{src:?}: burned {} > bound {bound}",
                ev.fuel_used()
            );
        }
    }

    #[test]
    fn loops_have_no_static_bound() {
        assert_eq!(
            static_fuel_bound(&Program::parse("while (true) { }").unwrap()),
            None
        );
        assert_eq!(
            static_fuel_bound(&Program::parse("for (i in range(3)) { }").unwrap()),
            None
        );
        assert!(static_fuel_bound(&Program::parse("return 1;").unwrap()).is_some());
    }

    #[test]
    fn diagnostics_have_paths_and_render() {
        let r = report("if (true) { return ghost; }");
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert!(d.path.contains("then"), "path was {:?}", d.path);
        let line = d.to_string();
        assert!(line.contains("undefined-variable"));
        assert!(line.contains("ghost"));
        assert_eq!(
            d.clone().in_context("greet.body").path,
            format!("greet.body: {}", d.path)
        );
    }

    #[test]
    fn repeated_defects_dedup_to_one_diagnostic() {
        // The same undefined name twice in one statement used to emit
        // one diagnostic per visit; one defect reports once.
        let p = Program::parse("return ghost + ghost;").unwrap();
        let report = analyze_program(&p);
        let undefined: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.kind == DiagnosticKind::UndefinedVariable)
            .collect();
        assert_eq!(undefined.len(), 1, "{:?}", report.diagnostics);

        // Distinct defects of the same kind at the same spot survive.
        let p = Program::parse("return ghost + phantom;").unwrap();
        let report = analyze_program(&p);
        assert_eq!(report.diagnostics.len(), 2, "{:?}", report.diagnostics);
    }

    #[test]
    fn clean_bodies_are_compiled_and_verified() {
        let report = analyze_program(&Program::parse("return 1 + 2;").unwrap());
        assert!(report.precompiled && report.verified);
        // Error-bearing bodies are neither compiled nor verified.
        let report = analyze_program(&Program::parse("return ghost;").unwrap());
        assert!(!report.precompiled && !report.verified);
        // Warnings alone don't block the compile+verify step.
        let report = analyze_program(&Program::parse("param spare; return 1;").unwrap());
        assert!(report.precompiled && report.verified);
    }

    #[test]
    fn null_host_eval_agrees_on_scope_errors() {
        // Programs the analyzer flags as UndefinedVariable/UseBeforeAssign
        // hit the same error at run time.
        for src in [
            "return ghost;",
            "if (true) { let x = 1; } return x;",
            "for (i in range(2)) { } return i;",
        ] {
            let p = Program::parse(src).unwrap();
            assert!(!analyze_program(&p).is_clean());
            let mut host = NullHost;
            let out = Evaluator::new(&mut host).run(&p, &[]);
            assert!(
                matches!(out, Err(crate::error::ScriptError::UndefinedVariable(_))),
                "{src:?} evaluated to {out:?}"
            );
        }
    }
}
