//! Abstract syntax tree and pretty-printer.
//!
//! The AST is the canonical, serializable form of a mobile method body.
//! [`Program`] implements `Display` as a pretty-printer whose output
//! re-parses to the same tree (round-trip tested by property tests).

use std::fmt;
use std::sync::{Arc, OnceLock};

use mrom_value::Value;

use crate::compile::{self, CompiledProgram};
use crate::error::ScriptError;
use crate::parser;

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `||` (short-circuit).
    Or,
    /// `&&` (short-circuit).
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+` (numeric addition, string/list concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinaryOp {
    /// Operator spelling as written in source.
    pub fn spelling(&self) -> &'static str {
        match self {
            BinaryOp::Or => "||",
            BinaryOp::And => "&&",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
        }
    }

    /// Precedence level (higher binds tighter).
    pub fn precedence(&self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq | BinaryOp::Ne => 3,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 4,
            BinaryOp::Add | BinaryOp::Sub => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => 6,
        }
    }

    /// Canonical name used in the serialized form.
    pub fn name(&self) -> &'static str {
        match self {
            BinaryOp::Or => "or",
            BinaryOp::And => "and",
            BinaryOp::Eq => "eq",
            BinaryOp::Ne => "ne",
            BinaryOp::Lt => "lt",
            BinaryOp::Le => "le",
            BinaryOp::Gt => "gt",
            BinaryOp::Ge => "ge",
            BinaryOp::Add => "add",
            BinaryOp::Sub => "sub",
            BinaryOp::Mul => "mul",
            BinaryOp::Div => "div",
            BinaryOp::Rem => "rem",
        }
    }

    /// Inverse of [`BinaryOp::name`].
    pub fn from_name(name: &str) -> Option<BinaryOp> {
        Some(match name {
            "or" => BinaryOp::Or,
            "and" => BinaryOp::And,
            "eq" => BinaryOp::Eq,
            "ne" => BinaryOp::Ne,
            "lt" => BinaryOp::Lt,
            "le" => BinaryOp::Le,
            "gt" => BinaryOp::Gt,
            "ge" => BinaryOp::Ge,
            "add" => BinaryOp::Add,
            "sub" => BinaryOp::Sub,
            "mul" => BinaryOp::Mul,
            "div" => BinaryOp::Div,
            "rem" => BinaryOp::Rem,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

impl UnaryOp {
    /// Operator spelling as written in source.
    pub fn spelling(&self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "!",
        }
    }

    /// Canonical name used in the serialized form.
    pub fn name(&self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
        }
    }

    /// Inverse of [`UnaryOp::name`].
    pub fn from_name(name: &str) -> Option<UnaryOp> {
        match name {
            "neg" => Some(UnaryOp::Neg),
            "not" => Some(UnaryOp::Not),
            _ => None,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value (restricted to scalars + nested literal lists/maps).
    Literal(Value),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Indexing: `base[index]` (lists by int, maps by string).
    Index(Box<Expr>, Box<Expr>),
    /// Builtin call: `len(x)`, `coerce(v, "int")`, ...
    Call(String, Vec<Expr>),
    /// Host call: `self.name(args...)` — routed to the embedding object.
    HostCall(String, Vec<Expr>),
    /// List constructor: `[a, b, c]`.
    ListExpr(Vec<Expr>),
    /// Map constructor: `{"k": v, ...}` (string-literal keys).
    MapExpr(Vec<(String, Expr)>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;` — declares in the current scope.
    Let(String, Expr),
    /// `target = expr;` where target is a variable or an index chain.
    Assign(Expr, Expr),
    /// Bare expression statement (evaluated for effect).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }` — `else` branch may be empty.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `for (name in expr) { .. }` — iterates lists, map keys, or
    /// `range(..)` results.
    For(String, Expr, Vec<Stmt>),
    /// `return;` / `return expr;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A parsed, executable, serializable program: the mobile body of an MROM
/// method (or pre-/post-procedure).
///
/// # Example
///
/// ```
/// use mrom_script::Program;
///
/// # fn main() -> Result<(), mrom_script::ScriptError> {
/// let p = Program::parse("param x; return x * 2;")?;
/// assert_eq!(p.params(), ["x"]);
/// // Pretty-printed source re-parses to the same tree.
/// let q = Program::parse(&p.to_string())?;
/// assert_eq!(p, q);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    params: Vec<String>,
    body: Vec<Stmt>,
    /// Site-local bytecode cache, filled lazily (or eagerly by the
    /// admission pass). Never serialized: the AST stays the single mobile
    /// representation, and a program rebuilt from the wire starts with an
    /// empty cache. Cloning shares nothing mutable — the compiled form is
    /// immutable behind an `Arc`.
    compiled: OnceLock<Arc<CompiledProgram>>,
    /// Per-body effect facts ([`crate::effects::LocalEffects`]), filled
    /// on first use by the effect solver. Same rules as the bytecode
    /// cache: never serialized, ignored by equality. Caching here means
    /// a re-solve after a structural object change only re-extracts the
    /// bodies that actually changed.
    effects: OnceLock<Arc<crate::effects::LocalEffects>>,
}

/// Equality ignores the bytecode cache: two programs are the same mobile
/// body when their parameter lists and statement trees agree.
impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params && self.body == other.body
    }
}

impl Program {
    /// Parses source text into a program.
    ///
    /// # Errors
    ///
    /// [`ScriptError::Lex`] / [`ScriptError::Parse`] with the offending
    /// line number.
    pub fn parse(source: &str) -> Result<Program, ScriptError> {
        parser::parse(source)
    }

    /// Builds a program directly from parts (used by deserialization and
    /// programmatic construction).
    pub fn from_parts(params: Vec<String>, body: Vec<Stmt>) -> Program {
        Program {
            params,
            body,
            compiled: OnceLock::new(),
            effects: OnceLock::new(),
        }
    }

    /// The bytecode form of this program, compiling (and caching) it on
    /// first use. Compilation is total for any well-formed tree, so this
    /// never fails; the admission pass calls it eagerly so admitted
    /// methods pay the cost once, classloader-style.
    pub fn compiled(&self) -> Arc<CompiledProgram> {
        Arc::clone(
            self.compiled
                .get_or_init(|| Arc::new(compile::compile(self))),
        )
    }

    /// True when the bytecode cache is already populated (admission ran,
    /// or the program executed at least once under the VM engine).
    pub fn is_compiled(&self) -> bool {
        self.compiled.get().is_some()
    }

    /// This body's effect facts ([`crate::effects::LocalEffects`]),
    /// extracted and cached on first use.
    #[must_use]
    pub fn local_effects(&self) -> Arc<crate::effects::LocalEffects> {
        Arc::clone(
            self.effects
                .get_or_init(|| Arc::new(crate::effects::LocalEffects::of_program(self))),
        )
    }

    /// Declared named parameters, bound positionally from the argument list.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// The statement list.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Counts AST nodes — a proxy for code size in migration benches.
    pub fn node_count(&self) -> usize {
        fn expr_nodes(e: &Expr) -> usize {
            1 + match e {
                Expr::Literal(_) | Expr::Var(_) => 0,
                Expr::Unary(_, a) => expr_nodes(a),
                Expr::Binary(_, a, b) => expr_nodes(a) + expr_nodes(b),
                Expr::Index(a, b) => expr_nodes(a) + expr_nodes(b),
                Expr::Call(_, args) | Expr::HostCall(_, args) | Expr::ListExpr(args) => {
                    args.iter().map(expr_nodes).sum()
                }
                Expr::MapExpr(entries) => entries.iter().map(|(_, e)| expr_nodes(e)).sum(),
            }
        }
        fn stmt_nodes(s: &Stmt) -> usize {
            1 + match s {
                Stmt::Let(_, e) | Stmt::Expr(e) => expr_nodes(e),
                Stmt::Assign(t, e) => expr_nodes(t) + expr_nodes(e),
                Stmt::If(c, a, b) => {
                    expr_nodes(c)
                        + a.iter().map(stmt_nodes).sum::<usize>()
                        + b.iter().map(stmt_nodes).sum::<usize>()
                }
                Stmt::While(c, body) => expr_nodes(c) + body.iter().map(stmt_nodes).sum::<usize>(),
                Stmt::For(_, e, body) => expr_nodes(e) + body.iter().map(stmt_nodes).sum::<usize>(),
                Stmt::Return(Some(e)) => expr_nodes(e),
                Stmt::Return(None) | Stmt::Break | Stmt::Continue => 0,
            }
        }
        self.body.iter().map(stmt_nodes).sum()
    }
}

// ---------------------------------------------------------------------------
// Pretty-printer. Output is valid source that re-parses to the same AST.
// ---------------------------------------------------------------------------

fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Int(i) => {
            if *i < 0 {
                // i64::MIN has no positive counterpart; print via parens-free
                // literal semantics: the parser folds `-LITERAL`.
                write!(f, "({i})")
            } else {
                write!(f, "{i}")
            }
        }
        Value::Float(x) => {
            if x.is_finite() {
                if *x < 0.0 {
                    write!(f, "({x:?})")
                } else {
                    write!(f, "{x:?}")
                }
            } else {
                // inf/-inf/NaN have no literal syntax; emit the `float`
                // constructor, which the parser folds back to a literal.
                write!(f, "float({:?})", x.to_string())
            }
        }
        Value::Str(s) => write!(f, "{s:?}"),
        Value::List(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_literal(item, f)?;
            }
            f.write_str("]")
        }
        Value::Map(m) => {
            f.write_str("{")?;
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k:?}: ")?;
                fmt_literal(v, f)?;
            }
            f.write_str("}")
        }
        // Bytes/ObjectRef literals cannot be written in source; encode as
        // builtin constructor calls that evaluate back to the same value.
        Value::Bytes(b) => {
            let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
            write!(f, "bytes({hex:?})")
        }
        Value::ObjectRef(id) => write!(f, "objectref({:?})", id.to_string()),
    }
}

fn fmt_expr(e: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Literal(v) => fmt_literal(v, f),
        Expr::Var(name) => f.write_str(name),
        Expr::Unary(op, a) => {
            // Under a postfix (indexing) context `!x[0]` would re-bind as
            // `!(x[0])`; parenthesize the whole unary expression there.
            let needs_parens = parent_prec > 7;
            if needs_parens {
                f.write_str("(")?;
            }
            write!(f, "{}", op.spelling())?;
            fmt_expr(a, 7, f)?;
            if needs_parens {
                f.write_str(")")?;
            }
            Ok(())
        }
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            let needs_parens = prec < parent_prec;
            if needs_parens {
                f.write_str("(")?;
            }
            fmt_expr(a, prec, f)?;
            write!(f, " {} ", op.spelling())?;
            // Right operand needs a tighter context to preserve
            // left-associativity on reparse.
            fmt_expr(b, prec + 1, f)?;
            if needs_parens {
                f.write_str(")")?;
            }
            Ok(())
        }
        Expr::Index(base, idx) => {
            fmt_expr(base, 8, f)?;
            f.write_str("[")?;
            fmt_expr(idx, 0, f)?;
            f.write_str("]")
        }
        Expr::Call(name, args) => {
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(a, 0, f)?;
            }
            f.write_str(")")
        }
        Expr::HostCall(name, args) => {
            write!(f, "self.{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(a, 0, f)?;
            }
            f.write_str(")")
        }
        Expr::ListExpr(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(item, 0, f)?;
            }
            f.write_str("]")
        }
        Expr::MapExpr(entries) => {
            f.write_str("{")?;
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k:?}: ")?;
                fmt_expr(v, 0, f)?;
            }
            f.write_str("}")
        }
    }
}

fn fmt_block(stmts: &[Stmt], indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for s in stmts {
        fmt_stmt(s, indent, f)?;
    }
    Ok(())
}

fn fmt_stmt(s: &Stmt, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Let(name, e) => {
            write!(f, "{pad}let {name} = ")?;
            fmt_expr(e, 0, f)?;
            writeln!(f, ";")
        }
        Stmt::Assign(t, e) => {
            f.write_str(&pad)?;
            fmt_expr(t, 0, f)?;
            f.write_str(" = ")?;
            fmt_expr(e, 0, f)?;
            writeln!(f, ";")
        }
        Stmt::Expr(e) => {
            f.write_str(&pad)?;
            fmt_expr(e, 0, f)?;
            writeln!(f, ";")
        }
        Stmt::If(c, then_body, else_body) => {
            write!(f, "{pad}if (")?;
            fmt_expr(c, 0, f)?;
            writeln!(f, ") {{")?;
            fmt_block(then_body, indent + 1, f)?;
            if else_body.is_empty() {
                writeln!(f, "{pad}}}")
            } else {
                writeln!(f, "{pad}}} else {{")?;
                fmt_block(else_body, indent + 1, f)?;
                writeln!(f, "{pad}}}")
            }
        }
        Stmt::While(c, body) => {
            write!(f, "{pad}while (")?;
            fmt_expr(c, 0, f)?;
            writeln!(f, ") {{")?;
            fmt_block(body, indent + 1, f)?;
            writeln!(f, "{pad}}}")
        }
        Stmt::For(name, e, body) => {
            write!(f, "{pad}for ({name} in ")?;
            fmt_expr(e, 0, f)?;
            writeln!(f, ") {{")?;
            fmt_block(body, indent + 1, f)?;
            writeln!(f, "{pad}}}")
        }
        Stmt::Return(None) => writeln!(f, "{pad}return;"),
        Stmt::Return(Some(e)) => {
            write!(f, "{pad}return ")?;
            fmt_expr(e, 0, f)?;
            writeln!(f, ";")
        }
        Stmt::Break => writeln!(f, "{pad}break;"),
        Stmt::Continue => writeln!(f, "{pad}continue;"),
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.params {
            writeln!(f, "param {p};")?;
        }
        fmt_block(&self.body, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_counts_everything() {
        let p = Program::parse("let x = 1 + 2; if (x > 1) { return x; }").unwrap();
        // let(1) + binary(1)+lit(2) ; if(1)+binary(1)+var+lit ; return(1)+var(1)
        assert!(p.node_count() >= 9, "got {}", p.node_count());
    }

    #[test]
    fn display_reparses_simple() {
        let src = "param a;\nlet x = a * (2 + 3);\nreturn x;\n";
        let p = Program::parse(src).unwrap();
        let q = Program::parse(&p.to_string()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn display_preserves_precedence_and_associativity() {
        for src in [
            "return (1 + 2) * 3;",
            "return 1 + 2 * 3;",
            "return 1 - (2 - 3);",
            "return 1 - 2 - 3;",
            "return !(1 < 2) || false && true;",
            "return -x[0] + y[\"k\"];",
            "return 10 / 2 / 5;",
            "return 10 / (2 / 5);",
        ] {
            let p = Program::parse(src).unwrap();
            let q = Program::parse(&p.to_string()).unwrap();
            assert_eq!(p, q, "round-trip failed for {src}\npretty:\n{p}");
        }
    }

    #[test]
    fn operator_names_round_trip() {
        for op in [
            BinaryOp::Or,
            BinaryOp::And,
            BinaryOp::Eq,
            BinaryOp::Ne,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::Rem,
        ] {
            assert_eq!(BinaryOp::from_name(op.name()), Some(op));
        }
        for op in [UnaryOp::Neg, UnaryOp::Not] {
            assert_eq!(UnaryOp::from_name(op.name()), Some(op));
        }
        assert_eq!(BinaryOp::from_name("zzz"), None);
        assert_eq!(UnaryOp::from_name("zzz"), None);
    }
}
