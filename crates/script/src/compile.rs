//! AST → bytecode compiler.
//!
//! Compiles a [`Program`] into a flat instruction array executed by
//! [`crate::vm::Vm`]. The compiled form is a **site-local cache** — it is
//! never serialized; the AST remains the single mobile representation —
//! and is designed for *exact* observational equivalence with the
//! tree-walking interpreter: same results, same errors, same host-call
//! sequences, and the same `fuel_used()` at every exhaustion point.
//!
//! ## Fuel model
//!
//! The interpreter burns 1 fuel at every statement and expression entry,
//! 8 per host call, plus data-size surcharges at builtins and
//! concatenations. The compiler attaches each static burn to the **first
//! instruction** of the construct's compiled form (preorder), so the
//! per-instruction cost sequence along any execution path equals the
//! interpreter's burn sequence. At runtime the VM does not burn per
//! instruction: each basic block begins with a [`Instr::Charge`] that
//! pre-pays the block's total static cost in one subtraction. Exactness
//! is restored at the edges:
//!
//! * leaving a block early (taken jump, `return`, or a non-fuel error)
//!   refunds the unexecuted suffix (`refunds[pc]`);
//! * a `Charge` that cannot be paid switches the block to **lockstep**
//!   mode, burning `costs[pc]` before each instruction so the run
//!   exhausts at exactly the interpreter's instruction — having performed
//!   exactly the interpreter's side-effect prefix;
//! * dynamic (value-dependent) surcharges that cannot be paid refund the
//!   suffix first and retry in lockstep, so a pre-charge can never cause
//!   an early exhaustion the interpreter would not have hit.
//!
//! ## Variables
//!
//! Locals live in numbered slots resolved at compile time by replaying
//! the interpreter's scope discipline (one frame per block, a fresh slot
//! per `let`). Declarations within a frame are straight-line in this
//! language, so lexical resolution is exact: a name that resolves to a
//! slot is always defined when the instruction runs, and a name that does
//! not resolve is *never* defined — it compiles to [`Instr::LoadUndef`] /
//! [`Instr::StoreUndef`], which raise the interpreter's
//! `UndefinedVariable` error at the same point.

use std::collections::HashMap;

use mrom_value::Value;

use crate::ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use crate::eval::BuiltinId;

/// One bytecode instruction. Jump operands are instruction indices; pool
/// operands index [`CompiledProgram`]'s constant / name tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Instr {
    /// Basic-block header: pre-pays the block's static fuel total.
    Charge(u32),
    /// No effect; exists to carry an attached fuel cost (e.g. a `while`
    /// statement's entry burn, which must land *before* the loop head).
    Nop,
    /// Push a clone of `consts[i]`.
    LoadConst(u32),
    /// Push a clone of local slot `i`.
    LoadLocal(u32),
    /// Pop into local slot `i`.
    StoreLocal(u32),
    /// Raise `UndefinedVariable(names[i])` — lexically unresolved read.
    LoadUndef(u32),
    /// Raise `UndefinedVariable(names[i])` — lexically unresolved write
    /// (after the right-hand side was evaluated, as the interpreter does).
    StoreUndef(u32),
    /// Discard the top of stack (expression statement).
    Pop,
    /// Apply a unary operator to the top of stack.
    Unary(UnaryOp),
    /// Pop rhs then lhs, push the binary result (non-short-circuit ops).
    Binary(BinaryOp),
    /// Fused `LoadLocal a; LoadLocal b; Binary op` (peephole). Fuel cost
    /// is the sum of the fused parts; safe because loads are effect-free
    /// and every jump target is a `Charge`, never a fused interior pc.
    BinaryLL {
        /// Operator.
        op: BinaryOp,
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// Fused `LoadLocal a; LoadConst c; Binary op` (peephole).
    BinaryLC {
        /// Operator.
        op: BinaryOp,
        /// Left operand slot.
        a: u32,
        /// Right operand constant index.
        c: u32,
    },
    /// Fused `LoadLocal b; Binary op`: lhs from the stack, rhs a local.
    BinaryTL {
        /// Operator.
        op: BinaryOp,
        /// Right operand slot.
        b: u32,
    },
    /// Fused `LoadConst c; Binary op`: lhs from the stack, rhs a constant.
    BinaryTC {
        /// Operator.
        op: BinaryOp,
        /// Right operand constant index.
        c: u32,
    },
    /// Replace the top of stack with `Bool(truthy)`.
    Truthy,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// `&&`: pop; when falsy push `Bool(false)` and jump past the rhs.
    AndCheck(u32),
    /// `||`: pop; when truthy push `Bool(true)` and jump past the rhs.
    OrCheck(u32),
    /// Pop index then container, push the element.
    Index,
    /// Pop `argc` arguments, dispatch a known builtin.
    Call {
        /// Which builtin.
        builtin: BuiltinId,
        /// Argument count.
        argc: u32,
    },
    /// Pop `argc` arguments, burn the argument surcharge, then raise
    /// `UnknownBuiltin(names[name])` — exactly the interpreter's order.
    CallUnknown {
        /// Name-pool index of the unknown builtin.
        name: u32,
        /// Argument count.
        argc: u32,
    },
    /// Pop `argc` arguments and perform `self.names[name](...)` through
    /// the host, identified by its static call-site index for inline
    /// caching. The 8-fuel host-call burn is attached to this pc.
    HostCall {
        /// Name-pool index of the host method.
        name: u32,
        /// Argument count.
        argc: u32,
        /// Static call-site index (dense, per program).
        site: u32,
    },
    /// Pop `n` values, push a list of them (in evaluation order).
    MakeList(u32),
    /// Pop `n` values, push a map pairing them with
    /// `names[keys..keys + n]` in entry order (later duplicates win).
    MakeMap {
        /// Name-pool index of the first key.
        keys: u32,
        /// Entry count.
        n: u32,
    },
    /// Indexed assignment `root[i1][i2]… = v`: pop `n_idx` index values
    /// and the right-hand side, write through the path into local `root`.
    AssignPath {
        /// Root local slot.
        root: u32,
        /// Number of index values on the stack.
        n_idx: u32,
    },
    /// As [`Instr::AssignPath`] but the root name did not resolve: pop
    /// the operands, then raise `UndefinedVariable(names[name])`.
    AssignPathUndef {
        /// Name-pool index of the unresolved root.
        name: u32,
        /// Number of index values on the stack.
        n_idx: u32,
    },
    /// Raise the interpreter's "assignment target must be a variable or
    /// index chain" error (after evaluating the right-hand side).
    AssignErrBadTarget,
    /// Raise the interpreter's "assignment target must be rooted at a
    /// variable" error (after evaluating the index expressions).
    AssignErrBadRoot,
    /// Pop a value, convert it to a `for` item sequence, push it on the
    /// iterator stack.
    IterNew,
    /// Advance the top iterator: store the next item into local `slot`,
    /// or jump to `end` when exhausted.
    IterNext {
        /// Loop-variable slot.
        slot: u32,
        /// Jump target on exhaustion (the loop's end label).
        end: u32,
    },
    /// Pop the top iterator (loop exited normally or via `break`).
    IterPop,
    /// Raise `StrayLoopControl` (`break`/`continue` outside any loop).
    LoopControlErr,
    /// Pop and return the top of stack.
    Return,
    /// Return `null` (explicit bare `return;` or falling off the end).
    ReturnNull,
}

/// A compiled program: flat bytecode plus its pools and fuel tables.
///
/// Produced by [`Program::compiled`]; executed by [`crate::vm::Vm`].
/// Immutable once built — sharing is by `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    pub(crate) instrs: Vec<Instr>,
    /// Static fuel attached at each pc (burned via block pre-charge, or
    /// per instruction in lockstep mode).
    pub(crate) costs: Vec<u32>,
    /// Unexecuted-suffix cost from each pc to its block's end; refunded
    /// when control leaves the block early in pre-charged mode.
    pub(crate) refunds: Vec<u32>,
    /// Literal pool.
    pub(crate) consts: Vec<Value>,
    /// Interned strings: variable/builtin/host names and map keys.
    pub(crate) names: Vec<String>,
    /// Total local slots (slot 0 is `args`).
    pub(crate) n_locals: u32,
    /// Slot for each declared parameter, bound positionally at entry.
    pub(crate) param_slots: Vec<u32>,
    /// Number of `self.*` call sites (sizes a host's inline-cache table).
    n_sites: u32,
}

impl CompiledProgram {
    /// Reassembles a compiled program from raw parts — the constructor
    /// behind [`CompiledProgram::from_bytes`]. The parts are *untrusted*:
    /// the caller must pass the result through [`crate::verify::verify`]
    /// before handing it to a VM.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        instrs: Vec<Instr>,
        costs: Vec<u32>,
        refunds: Vec<u32>,
        consts: Vec<Value>,
        names: Vec<String>,
        n_locals: u32,
        param_slots: Vec<u32>,
        n_sites: u32,
    ) -> CompiledProgram {
        CompiledProgram {
            instrs,
            costs,
            refunds,
            consts,
            names,
            n_locals,
            param_slots,
            n_sites,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for a body with no instructions (never produced by
    /// [`compile`], which always emits at least a return).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of distinct `self.*` call sites, for sizing per-run inline
    /// cache tables.
    pub fn site_count(&self) -> u32 {
        self.n_sites
    }

    /// Number of resolved local-variable slots.
    pub fn local_count(&self) -> u32 {
        self.n_locals
    }

    /// Human-readable disassembly: constant pool, name pool, and one line
    /// per instruction with its attached static fuel cost. Block headers
    /// show the pre-charged total for the block.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; {} instrs, {} locals, {} host-call sites",
            self.instrs.len(),
            self.n_locals,
            self.n_sites
        );
        if !self.consts.is_empty() {
            let _ = writeln!(out, "; constants:");
            for (i, c) in self.consts.iter().enumerate() {
                let _ = writeln!(out, ";   c{i} = {c:?}");
            }
        }
        if !self.names.is_empty() {
            let _ = writeln!(out, "; names:");
            for (i, n) in self.names.iter().enumerate() {
                let _ = writeln!(out, ";   n{i} = {n:?}");
            }
        }
        for (pc, instr) in self.instrs.iter().enumerate() {
            let cost = self.costs[pc];
            let cost = if cost > 0 {
                format!("  ; fuel {cost}")
            } else {
                String::new()
            };
            let text = match *instr {
                Instr::Charge(total) => format!("charge {total}  ; -- block --"),
                Instr::Nop => "nop".into(),
                Instr::LoadConst(i) => format!("load_const c{i}"),
                Instr::LoadLocal(s) => format!("load_local {s}"),
                Instr::StoreLocal(s) => format!("store_local {s}"),
                Instr::LoadUndef(n) => format!("load_undef n{n}"),
                Instr::StoreUndef(n) => format!("store_undef n{n}"),
                Instr::Pop => "pop".into(),
                Instr::Unary(op) => format!("unary {}", op.name()),
                Instr::Binary(op) => format!("binary {}", op.name()),
                Instr::BinaryLL { op, a, b } => format!("binary_ll {} {a} {b}", op.name()),
                Instr::BinaryLC { op, a, c } => format!("binary_lc {} {a} c{c}", op.name()),
                Instr::BinaryTL { op, b } => format!("binary_tl {} {b}", op.name()),
                Instr::BinaryTC { op, c } => format!("binary_tc {} c{c}", op.name()),
                Instr::Truthy => "truthy".into(),
                Instr::Jump(t) => format!("jump {t}"),
                Instr::JumpIfFalse(t) => format!("jump_if_false {t}"),
                Instr::AndCheck(t) => format!("and_check {t}"),
                Instr::OrCheck(t) => format!("or_check {t}"),
                Instr::Index => "index".into(),
                Instr::Call { builtin, argc } => {
                    format!("call {} argc={argc}", builtin.name())
                }
                Instr::CallUnknown { name, argc } => {
                    format!("call_unknown n{name} argc={argc}")
                }
                Instr::HostCall { name, argc, site } => {
                    format!("host_call n{name} argc={argc} site={site}")
                }
                Instr::MakeList(n) => format!("make_list {n}"),
                Instr::MakeMap { keys, n } => format!("make_map n{keys}.. n={n}"),
                Instr::AssignPath { root, n_idx } => {
                    format!("assign_path root={root} n_idx={n_idx}")
                }
                Instr::AssignPathUndef { name, n_idx } => {
                    format!("assign_path_undef n{name} n_idx={n_idx}")
                }
                Instr::AssignErrBadTarget => "assign_err_bad_target".into(),
                Instr::AssignErrBadRoot => "assign_err_bad_root".into(),
                Instr::IterNew => "iter_new".into(),
                Instr::IterNext { slot, end } => format!("iter_next slot={slot} end={end}"),
                Instr::IterPop => "iter_pop".into(),
                Instr::LoopControlErr => "loop_control_err".into(),
                Instr::Return => "return".into(),
                Instr::ReturnNull => "return_null".into(),
            };
            let _ = writeln!(out, "{pc:5}: {text}{cost}");
        }
        out
    }
}

/// Compiles `program` to bytecode. Total: every well-formed tree compiles
/// (trees only expressible via [`Program::from_parts`] — stray loop
/// control, malformed assignment targets — compile to instructions that
/// raise the interpreter's exact runtime error).
pub fn compile(program: &Program) -> CompiledProgram {
    let mut c = Compiler {
        instrs: Vec::new(),
        costs: Vec::new(),
        consts: Vec::new(),
        names: Vec::new(),
        frames: vec![HashMap::new()],
        n_locals: 0,
        n_sites: 0,
        pending: 0,
        labels: Vec::new(),
        charges: Vec::new(),
        loops: Vec::new(),
    };

    // Root frame mirrors `Evaluator::run`: `args`, then each parameter
    // positionally (a later duplicate shadows an earlier one, exactly as
    // repeated `declare` calls overwrite).
    let args_slot = c.declare("args");
    debug_assert_eq!(args_slot, 0);
    let param_slots: Vec<u32> = program.params().iter().map(|p| c.declare(p)).collect();

    c.start_block();
    c.stmts(program.body());
    c.emit(Instr::ReturnNull);

    c.finish(param_slots)
}

struct LoopCtx {
    head: usize,
    end: usize,
}

struct Compiler {
    instrs: Vec<Instr>,
    costs: Vec<u32>,
    consts: Vec<Value>,
    names: Vec<String>,
    /// Compile-time replay of the interpreter's scope frames.
    frames: Vec<HashMap<String, u32>>,
    n_locals: u32,
    n_sites: u32,
    /// Fuel waiting to be attached to the next emitted instruction.
    pending: u64,
    /// Label id → instruction index (bound at `bind`).
    labels: Vec<Option<u32>>,
    /// Indices of emitted `Charge` instructions, in order.
    charges: Vec<usize>,
    loops: Vec<LoopCtx>,
}

impl Compiler {
    // -- pools and frames ---------------------------------------------------

    fn declare(&mut self, name: &str) -> u32 {
        let slot = self.n_locals;
        self.n_locals += 1;
        self.frames
            .last_mut()
            .expect("root frame")
            .insert(name.to_owned(), slot);
        slot
    }

    fn resolve(&self, name: &str) -> Option<u32> {
        self.frames.iter().rev().find_map(|f| f.get(name)).copied()
    }

    fn push_frame(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop_frame(&mut self) {
        self.frames.pop();
        debug_assert!(!self.frames.is_empty(), "root frame must survive");
    }

    fn const_idx(&mut self, v: &Value) -> u32 {
        // Dedup only kinds with exact, representation-faithful equality
        // (float equality would conflate 0.0 with -0.0).
        if matches!(
            v,
            Value::Null | Value::Bool(_) | Value::Int(_) | Value::Str(_)
        ) {
            if let Some(i) = self.consts.iter().position(|c| c == v) {
                return i as u32;
            }
        }
        self.consts.push(v.clone());
        (self.consts.len() - 1) as u32
    }

    fn name_idx(&mut self, name: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as u32;
        }
        self.names.push(name.to_owned());
        (self.names.len() - 1) as u32
    }

    // -- emission -----------------------------------------------------------

    /// Queues `amount` fuel to be attached to the next emitted
    /// instruction (the preorder attachment rule).
    fn attach(&mut self, amount: u64) {
        self.pending += amount;
    }

    fn emit(&mut self, instr: Instr) -> usize {
        let cost = u32::try_from(self.pending).unwrap_or(u32::MAX);
        self.pending = 0;
        self.costs.push(cost);
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    /// Materializes queued fuel as a `Nop` so it lands *before* an
    /// upcoming label (e.g. a `while` entry burn must not re-fire per
    /// iteration).
    fn flush_pending(&mut self) {
        if self.pending > 0 {
            self.emit(Instr::Nop);
        }
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    /// Binds `label` here and opens a new basic block (every jump target
    /// is a block leader).
    fn bind(&mut self, label: usize) {
        self.flush_pending();
        self.labels[label] = Some(self.instrs.len() as u32);
        self.start_block();
    }

    /// Opens a basic block: emits a `Charge` placeholder whose total is
    /// filled in by `finish`.
    fn start_block(&mut self) {
        debug_assert_eq!(self.pending, 0, "pending cost at block start");
        let idx = self.emit(Instr::Charge(0));
        self.charges.push(idx);
    }

    // -- statements ---------------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        // Interpreter: `exec_stmt` burns 1 at entry.
        self.attach(1);
        match s {
            Stmt::Let(name, e) => {
                self.expr(e);
                let slot = self.declare(name);
                self.emit(Instr::StoreLocal(slot));
            }
            Stmt::Assign(target, e) => {
                self.expr(e);
                self.assign_target(target);
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.emit(Instr::Pop);
            }
            Stmt::If(cond, then_body, else_body) => {
                self.expr(cond);
                let l_else = self.new_label();
                let l_end = self.new_label();
                self.emit(Instr::JumpIfFalse(l_else as u32));
                self.start_block();
                self.push_frame();
                self.stmts(then_body);
                self.pop_frame();
                self.emit(Instr::Jump(l_end as u32));
                self.bind(l_else);
                self.push_frame();
                self.stmts(else_body);
                self.pop_frame();
                self.bind(l_end);
            }
            Stmt::While(cond, body) => {
                let l_cond = self.new_label();
                let l_end = self.new_label();
                // The statement's entry burn fires once, before the loop
                // head; `bind` flushes it into a Nop in the current block.
                self.bind(l_cond);
                self.expr(cond);
                self.emit(Instr::JumpIfFalse(l_end as u32));
                self.start_block();
                self.push_frame();
                self.loops.push(LoopCtx {
                    head: l_cond,
                    end: l_end,
                });
                self.stmts(body);
                self.loops.pop();
                self.pop_frame();
                self.emit(Instr::Jump(l_cond as u32));
                self.bind(l_end);
            }
            Stmt::For(name, iter, body) => {
                // Entry burn + iterable evaluation run once, straight-line.
                self.expr(iter);
                self.emit(Instr::IterNew);
                let l_head = self.new_label();
                let l_end = self.new_label();
                self.push_frame();
                let slot = self.declare(name);
                self.bind(l_head);
                self.emit(Instr::IterNext {
                    slot,
                    end: l_end as u32,
                });
                self.loops.push(LoopCtx {
                    head: l_head,
                    end: l_end,
                });
                self.stmts(body);
                self.loops.pop();
                self.pop_frame();
                self.emit(Instr::Jump(l_head as u32));
                self.bind(l_end);
                self.emit(Instr::IterPop);
            }
            Stmt::Return(None) => {
                self.emit(Instr::ReturnNull);
            }
            Stmt::Return(Some(e)) => {
                self.expr(e);
                self.emit(Instr::Return);
            }
            Stmt::Break => {
                match self.loops.last() {
                    Some(ctx) => {
                        let t = ctx.end as u32;
                        self.emit(Instr::Jump(t));
                    }
                    None => {
                        self.emit(Instr::LoopControlErr);
                    }
                };
            }
            Stmt::Continue => {
                match self.loops.last() {
                    Some(ctx) => {
                        let t = ctx.head as u32;
                        self.emit(Instr::Jump(t));
                    }
                    None => {
                        self.emit(Instr::LoopControlErr);
                    }
                };
            }
        }
    }

    /// Compiles the target side of an assignment, right-hand side already
    /// on the stack. Mirrors `Evaluator::assign` exactly, including the
    /// evaluation order of index expressions (outermost first) and the
    /// runtime errors for malformed targets.
    fn assign_target(&mut self, target: &Expr) {
        match target {
            Expr::Var(name) => match self.resolve(name) {
                Some(slot) => {
                    self.emit(Instr::StoreLocal(slot));
                }
                None => {
                    let n = self.name_idx(name);
                    self.emit(Instr::StoreUndef(n));
                }
            },
            Expr::Index(base, idx_expr) => {
                self.expr(idx_expr);
                let mut n_idx: u32 = 1;
                let mut cursor: &Expr = base;
                loop {
                    match cursor {
                        Expr::Var(name) => {
                            match self.resolve(name) {
                                Some(root) => {
                                    self.emit(Instr::AssignPath { root, n_idx });
                                }
                                None => {
                                    let n = self.name_idx(name);
                                    self.emit(Instr::AssignPathUndef { name: n, n_idx });
                                }
                            }
                            return;
                        }
                        Expr::Index(inner, inner_idx) => {
                            self.expr(inner_idx);
                            n_idx += 1;
                            cursor = inner;
                        }
                        _ => {
                            self.emit(Instr::AssignErrBadRoot);
                            return;
                        }
                    }
                }
            }
            _ => {
                self.emit(Instr::AssignErrBadTarget);
            }
        }
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self, e: &Expr) {
        // Interpreter: `eval` burns 1 at entry.
        self.attach(1);
        match e {
            Expr::Literal(v) => {
                let i = self.const_idx(v);
                self.emit(Instr::LoadConst(i));
            }
            Expr::Var(name) => match self.resolve(name) {
                Some(slot) => {
                    self.emit(Instr::LoadLocal(slot));
                }
                None => {
                    let n = self.name_idx(name);
                    self.emit(Instr::LoadUndef(n));
                }
            },
            Expr::Unary(op, a) => {
                self.expr(a);
                self.emit(Instr::Unary(*op));
            }
            Expr::Binary(BinaryOp::And, a, b) => {
                self.expr(a);
                let l_end = self.new_label();
                self.emit(Instr::AndCheck(l_end as u32));
                self.start_block();
                self.expr(b);
                self.emit(Instr::Truthy);
                self.bind(l_end);
            }
            Expr::Binary(BinaryOp::Or, a, b) => {
                self.expr(a);
                let l_end = self.new_label();
                self.emit(Instr::OrCheck(l_end as u32));
                self.start_block();
                self.expr(b);
                self.emit(Instr::Truthy);
                self.bind(l_end);
            }
            Expr::Binary(op, a, b) => {
                self.expr(a);
                self.expr(b);
                self.emit(Instr::Binary(*op));
            }
            Expr::Index(base, idx) => {
                self.expr(base);
                self.expr(idx);
                self.emit(Instr::Index);
            }
            Expr::Call(name, args) => {
                for a in args {
                    self.expr(a);
                }
                let argc = args.len() as u32;
                match BuiltinId::from_name(name) {
                    Some(builtin) => {
                        self.emit(Instr::Call { builtin, argc });
                    }
                    None => {
                        let n = self.name_idx(name);
                        self.emit(Instr::CallUnknown { name: n, argc });
                    }
                }
            }
            Expr::HostCall(name, args) => {
                for a in args {
                    self.expr(a);
                }
                // Interpreter: burn(8) after the arguments, before the call.
                self.attach(8);
                let n = self.name_idx(name);
                let site = self.n_sites;
                self.n_sites += 1;
                self.emit(Instr::HostCall {
                    name: n,
                    argc: args.len() as u32,
                    site,
                });
            }
            Expr::ListExpr(items) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Instr::MakeList(items.len() as u32));
            }
            Expr::MapExpr(entries) => {
                // Keys occupy a contiguous name-pool run so `MakeMap` can
                // reference them as a range; values evaluate in entry order.
                let keys = self.names.len() as u32;
                for (k, _) in entries {
                    self.names.push(k.clone());
                }
                for (_, v) in entries {
                    self.expr(v);
                }
                self.emit(Instr::MakeMap {
                    keys,
                    n: entries.len() as u32,
                });
            }
        }
    }

    // -- finalization -------------------------------------------------------

    /// Peephole pass: fuses `LoadLocal`/`LoadConst` operands into the
    /// `Binary` that consumes them. Safe under the fuel model because the
    /// fused cost is the exact sum of the parts and nothing observable
    /// (host call, error, side effect) can occur between them; safe for
    /// control flow because every jump target is a `Charge` instruction
    /// (labels bind at block leaders), so no branch can land inside a
    /// fused span. Runs before label resolution; labels and recorded
    /// charge positions are remapped through `map`.
    fn fuse(&mut self) {
        let old = std::mem::take(&mut self.instrs);
        let old_costs = std::mem::take(&mut self.costs);
        let mut map = vec![0u32; old.len() + 1];
        let mut instrs = Vec::with_capacity(old.len());
        let mut costs = Vec::with_capacity(old.len());
        let mut i = 0;
        while i < old.len() {
            let here = instrs.len() as u32;
            let mut fused = None;
            if i + 2 < old.len() {
                fused = match (old[i], old[i + 1], old[i + 2]) {
                    (Instr::LoadLocal(a), Instr::LoadLocal(b), Instr::Binary(op)) => {
                        Some((Instr::BinaryLL { op, a, b }, 3))
                    }
                    (Instr::LoadLocal(a), Instr::LoadConst(c), Instr::Binary(op)) => {
                        Some((Instr::BinaryLC { op, a, c }, 3))
                    }
                    _ => None,
                };
            }
            if fused.is_none() && i + 1 < old.len() {
                fused = match (old[i], old[i + 1]) {
                    (Instr::LoadLocal(b), Instr::Binary(op)) => {
                        Some((Instr::BinaryTL { op, b }, 2))
                    }
                    (Instr::LoadConst(c), Instr::Binary(op)) => {
                        Some((Instr::BinaryTC { op, c }, 2))
                    }
                    _ => None,
                };
            }
            match fused {
                Some((instr, n)) => {
                    let cost: u64 = old_costs[i..i + n].iter().map(|&c| u64::from(c)).sum();
                    for k in 0..n {
                        map[i + k] = here;
                    }
                    instrs.push(instr);
                    costs.push(u32::try_from(cost).unwrap_or(u32::MAX));
                    i += n;
                }
                None => {
                    map[i] = here;
                    instrs.push(old[i]);
                    costs.push(old_costs[i]);
                    i += 1;
                }
            }
        }
        map[old.len()] = instrs.len() as u32;
        self.instrs = instrs;
        self.costs = costs;
        for label in self.labels.iter_mut().flatten() {
            *label = map[*label as usize];
        }
        for charge in &mut self.charges {
            *charge = map[*charge] as usize;
        }
    }

    fn finish(mut self, param_slots: Vec<u32>) -> CompiledProgram {
        self.fuse();
        // Resolve label ids in jump operands to instruction indices.
        let resolve = |labels: &[Option<u32>], id: u32| -> u32 {
            labels[id as usize].expect("label bound before finish")
        };
        for instr in &mut self.instrs {
            match instr {
                Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::AndCheck(t) | Instr::OrCheck(t) => {
                    *t = resolve(&self.labels, *t);
                }
                Instr::IterNext { end, .. } => *end = resolve(&self.labels, *end),
                _ => {}
            }
        }

        // Fill in block totals and per-pc suffix refunds.
        let mut refunds = vec![0u32; self.instrs.len()];
        for (bi, &start) in self.charges.iter().enumerate() {
            let end = self
                .charges
                .get(bi + 1)
                .copied()
                .unwrap_or(self.instrs.len());
            debug_assert_eq!(self.costs[start], 0, "Charge carries no attached cost");
            let mut suffix = 0u64;
            for pc in (start + 1..end).rev() {
                refunds[pc] = u32::try_from(suffix).unwrap_or(u32::MAX);
                suffix += u64::from(self.costs[pc]);
            }
            self.instrs[start] = Instr::Charge(u32::try_from(suffix).unwrap_or(u32::MAX));
        }

        CompiledProgram {
            instrs: self.instrs,
            costs: self.costs,
            refunds,
            consts: self.consts,
            names: self.names,
            n_locals: self.n_locals,
            param_slots,
            n_sites: self.n_sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str) -> CompiledProgram {
        compile(&Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}")))
    }

    #[test]
    fn straight_line_body_is_one_block() {
        let cp = compiled("let x = 1; return x + 2;");
        // Exactly the leading block header.
        let charges = cp
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Charge(_)))
            .count();
        assert_eq!(charges, 1);
        // Entry burns: 2 stmts + 4 exprs (1, x+2, x, 2) = 6.
        assert_eq!(cp.instrs[0], Instr::Charge(6));
    }

    #[test]
    fn loops_split_blocks_and_carry_entry_cost() {
        let cp = compiled("let i = 0; while (i < 3) { i = i + 1; }");
        // The while entry burn lands on a Nop *before* the loop head so
        // it fires once, not per iteration.
        let nop_pc = cp
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Nop))
            .expect("entry-cost Nop");
        assert_eq!(cp.costs[nop_pc], 1);
        assert!(
            cp.instrs
                .iter()
                .filter(|i| matches!(i, Instr::Charge(_)))
                .count()
                >= 3,
            "cond/body/exit blocks"
        );
    }

    #[test]
    fn host_calls_get_dense_site_indices() {
        let cp = compiled("self.a(); self.b(1); self.a();");
        let sites: Vec<u32> = cp
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::HostCall { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(sites, vec![0, 1, 2]);
        assert_eq!(cp.site_count(), 3);
    }

    #[test]
    fn unresolved_names_compile_to_undef_instructions() {
        let cp = compiled("if (true) { let x = 1; } return x;");
        assert!(cp.instrs.iter().any(|i| matches!(i, Instr::LoadUndef(_))));
    }

    #[test]
    fn disassembly_mentions_pools_and_opcodes() {
        let cp = compiled("let x = \"hi\"; return len(x);");
        let text = cp.disassemble();
        assert!(text.contains("charge"), "{text}");
        assert!(text.contains("call len"), "{text}");
        assert!(text.contains("\"hi\""), "{text}");
    }

    #[test]
    fn refunds_sum_suffixes_within_blocks() {
        let cp = compiled("return 1 + 2;");
        // Block: Charge, LoadConst(cost 3: stmt+binary+lhs), LoadConst(1),
        // Binary(0), Return(0), ReturnNull(0).
        assert_eq!(cp.instrs[0], Instr::Charge(4));
        assert_eq!(cp.costs[1], 3);
        assert_eq!(cp.refunds[1], 1);
        assert_eq!(cp.refunds[2], 0);
    }
}
