//! Recursive-descent parser.
//!
//! Grammar (statement-oriented, C-ish):
//!
//! ```text
//! program    := param* stmt*
//! param      := 'param' IDENT ';'
//! stmt       := 'let' IDENT '=' expr ';'
//!             | 'if' '(' expr ')' block ('else' (block | ifstmt))?
//!             | 'while' '(' expr ')' block
//!             | 'for' '(' IDENT 'in' expr ')' block
//!             | 'return' expr? ';' | 'break' ';' | 'continue' ';'
//!             | expr ('=' expr)? ';'
//! expr       := or ; or := and ('||' and)* ; and := eq ('&&' eq)* ; ...
//! postfix    := primary ('[' expr ']')*
//! primary    := literal | IDENT | IDENT '(' args ')' | 'self' '.' IDENT '(' args ')'
//!             | '(' expr ')' | '[' args ']' | '{' (STR ':' expr)* '}'
//! ```
//!
//! The parser constant-folds `-` applied to numeric literals and the
//! `bytes("…")` / `objectref("…")` literal constructors, so the
//! pretty-printer ↔ parser round trip is exact on the AST.

use mrom_value::Value;

use crate::ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use crate::error::ScriptError;
use crate::lexer::{lex, Token, TokenKind};

/// Maximum expression nesting the parser accepts. Mobile code arrives from
/// untrusted sources: without this bound a deeply parenthesized program
/// would overflow the host's stack during parsing (and later during
/// evaluation).
pub const MAX_EXPR_DEPTH: usize = 64;

/// Parses source text into a [`Program`]. See [`Program::parse`].
pub fn parse(source: &str) -> Result<Program, ScriptError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        expr_depth: 0,
    };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    expr_depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, expected: &TokenKind) -> Result<(), ScriptError> {
        if self.peek() == expected {
            self.advance();
            Ok(())
        } else {
            Err(self.unexpected(&expected.describe()))
        }
    }

    fn unexpected(&self, wanted: &str) -> ScriptError {
        ScriptError::Parse {
            line: self.line(),
            detail: format!("expected {wanted}, found {}", self.peek().describe()),
        }
    }

    fn program(&mut self) -> Result<Program, ScriptError> {
        let mut params = Vec::new();
        while self.peek() == &TokenKind::Param {
            self.advance();
            match self.advance() {
                TokenKind::Ident(name) => {
                    if params.contains(&name) {
                        return Err(ScriptError::Parse {
                            line: self.line(),
                            detail: format!("duplicate parameter {name:?}"),
                        });
                    }
                    params.push(name);
                }
                other => {
                    return Err(ScriptError::Parse {
                        line: self.line(),
                        detail: format!("expected parameter name, found {}", other.describe()),
                    })
                }
            }
            self.eat(&TokenKind::Semi)?;
        }
        let mut body = Vec::new();
        while self.peek() != &TokenKind::Eof {
            body.push(self.stmt()?);
        }
        Ok(Program::from_parts(params, body))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        // Blocks nest through stmt() recursion; share the expression-depth
        // budget so deeply nested `if { if { ... } }` chains cannot
        // overflow the stack either.
        self.expr_depth += 1;
        if self.expr_depth > MAX_EXPR_DEPTH {
            self.expr_depth -= 1;
            return Err(ScriptError::Parse {
                line: self.line(),
                detail: format!("block nesting exceeds the limit of {MAX_EXPR_DEPTH}"),
            });
        }
        let result = (|| {
            self.eat(&TokenKind::LBrace)?;
            let mut out = Vec::new();
            while self.peek() != &TokenKind::RBrace {
                if self.peek() == &TokenKind::Eof {
                    return Err(self.unexpected("`}`"));
                }
                out.push(self.stmt()?);
            }
            self.eat(&TokenKind::RBrace)?;
            Ok(out)
        })();
        self.expr_depth -= 1;
        result
    }

    fn stmt(&mut self) -> Result<Stmt, ScriptError> {
        match self.peek().clone() {
            TokenKind::Let => {
                self.advance();
                let name = match self.advance() {
                    TokenKind::Ident(name) => name,
                    other => {
                        return Err(ScriptError::Parse {
                            line: self.line(),
                            detail: format!("expected variable name, found {}", other.describe()),
                        })
                    }
                };
                self.eat(&TokenKind::Assign)?;
                let e = self.expr()?;
                self.eat(&TokenKind::Semi)?;
                Ok(Stmt::Let(name, e))
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.advance();
                self.eat(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            TokenKind::For => {
                self.advance();
                self.eat(&TokenKind::LParen)?;
                let name = match self.advance() {
                    TokenKind::Ident(name) => name,
                    other => {
                        return Err(ScriptError::Parse {
                            line: self.line(),
                            detail: format!(
                                "expected loop variable name, found {}",
                                other.describe()
                            ),
                        })
                    }
                };
                self.eat(&TokenKind::In)?;
                let iter = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For(name, iter, body))
            }
            TokenKind::Return => {
                self.advance();
                if self.peek() == &TokenKind::Semi {
                    self.advance();
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.eat(&TokenKind::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            TokenKind::Break => {
                self.advance();
                self.eat(&TokenKind::Semi)?;
                Ok(Stmt::Break)
            }
            TokenKind::Continue => {
                self.advance();
                self.eat(&TokenKind::Semi)?;
                Ok(Stmt::Continue)
            }
            TokenKind::Param => Err(ScriptError::Parse {
                line: self.line(),
                detail: "`param` declarations must precede all statements".into(),
            }),
            _ => {
                let e = self.expr()?;
                if self.peek() == &TokenKind::Assign {
                    // Assignment target validation: variable or index chain.
                    if !is_assign_target(&e) {
                        return Err(ScriptError::Parse {
                            line: self.line(),
                            detail: "left side of `=` must be a variable or index chain".into(),
                        });
                    }
                    self.advance();
                    let rhs = self.expr()?;
                    self.eat(&TokenKind::Semi)?;
                    Ok(Stmt::Assign(e, rhs))
                } else {
                    self.eat(&TokenKind::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.eat(&TokenKind::If)?;
        self.eat(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.eat(&TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.peek() == &TokenKind::Else {
            self.advance();
            if self.peek() == &TokenKind::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If(cond, then_body, else_body))
    }

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.expr_depth += 1;
        if self.expr_depth > MAX_EXPR_DEPTH {
            self.expr_depth -= 1;
            return Err(ScriptError::Parse {
                line: self.line(),
                detail: format!("expression nesting exceeds the limit of {MAX_EXPR_DEPTH}"),
            });
        }
        let out = self.binary(1);
        self.expr_depth -= 1;
        out
    }

    /// Precedence-climbing over the binary operator tiers (1..=6).
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ScriptError> {
        if min_prec > 6 {
            return self.unary();
        }
        let mut lhs = self.binary(min_prec + 1)?;
        loop {
            let op = match (self.peek(), min_prec) {
                (TokenKind::OrOr, 1) => BinaryOp::Or,
                (TokenKind::AndAnd, 2) => BinaryOp::And,
                (TokenKind::Eq, 3) => BinaryOp::Eq,
                (TokenKind::Ne, 3) => BinaryOp::Ne,
                (TokenKind::Lt, 4) => BinaryOp::Lt,
                (TokenKind::Le, 4) => BinaryOp::Le,
                (TokenKind::Gt, 4) => BinaryOp::Gt,
                (TokenKind::Ge, 4) => BinaryOp::Ge,
                (TokenKind::Plus, 5) => BinaryOp::Add,
                (TokenKind::Minus, 5) => BinaryOp::Sub,
                (TokenKind::Star, 6) => BinaryOp::Mul,
                (TokenKind::Slash, 6) => BinaryOp::Div,
                (TokenKind::Percent, 6) => BinaryOp::Rem,
                _ => break,
            };
            self.advance();
            let rhs = self.binary(min_prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ScriptError> {
        match self.peek() {
            TokenKind::Minus => {
                self.advance();
                let inner = self.unary()?;
                // Constant-fold negation of numeric literals so the
                // pretty-printer round-trips exactly.
                Ok(match inner {
                    Expr::Literal(Value::Int(i)) if i.checked_neg().is_some() => {
                        Expr::Literal(Value::Int(-i))
                    }
                    Expr::Literal(Value::Float(x)) => Expr::Literal(Value::Float(-x)),
                    other => Expr::Unary(UnaryOp::Neg, Box::new(other)),
                })
            }
            TokenKind::Bang => {
                self.advance();
                let inner = self.unary()?;
                Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ScriptError> {
        let mut e = self.primary()?;
        while self.peek() == &TokenKind::LBracket {
            self.advance();
            let idx = self.expr()?;
            self.eat(&TokenKind::RBracket)?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ScriptError> {
        self.eat(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek() == &TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.eat(&TokenKind::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ScriptError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(x)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::True => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::False => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Null => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::SelfKw => {
                self.advance();
                self.eat(&TokenKind::Dot)?;
                let name = match self.advance() {
                    TokenKind::Ident(name) => name,
                    other => {
                        return Err(ScriptError::Parse {
                            line: self.line(),
                            detail: format!(
                                "expected host-call name after `self.`, found {}",
                                other.describe()
                            ),
                        })
                    }
                };
                let args = self.call_args()?;
                Ok(Expr::HostCall(name, args))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.peek() == &TokenKind::LParen {
                    let args = self.call_args()?;
                    Ok(fold_literal_ctor(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.advance();
                let mut items = Vec::new();
                if self.peek() != &TokenKind::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if self.peek() == &TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&TokenKind::RBracket)?;
                // Fold all-literal lists so pretty-printed literal lists
                // round-trip to Literal form.
                if items.iter().all(|e| matches!(e, Expr::Literal(_))) {
                    let vals = items
                        .into_iter()
                        .map(|e| match e {
                            Expr::Literal(v) => v,
                            _ => unreachable!("checked literal"),
                        })
                        .collect();
                    Ok(Expr::Literal(Value::List(vals)))
                } else {
                    Ok(Expr::ListExpr(items))
                }
            }
            TokenKind::LBrace => {
                self.advance();
                let mut entries: Vec<(String, Expr)> = Vec::new();
                if self.peek() != &TokenKind::RBrace {
                    loop {
                        let key = match self.advance() {
                            TokenKind::Str(s) => s,
                            other => {
                                return Err(ScriptError::Parse {
                                    line: self.line(),
                                    detail: format!(
                                        "map keys must be string literals, found {}",
                                        other.describe()
                                    ),
                                })
                            }
                        };
                        if entries.iter().any(|(k, _)| k == &key) {
                            return Err(ScriptError::Parse {
                                line: self.line(),
                                detail: format!("duplicate map key {key:?}"),
                            });
                        }
                        self.eat(&TokenKind::Colon)?;
                        let v = self.expr()?;
                        entries.push((key, v));
                        if self.peek() == &TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&TokenKind::RBrace)?;
                if entries.iter().all(|(_, e)| matches!(e, Expr::Literal(_))) {
                    let m = entries
                        .into_iter()
                        .map(|(k, e)| match e {
                            Expr::Literal(v) => (k, v),
                            _ => unreachable!("checked literal"),
                        })
                        .collect();
                    Ok(Expr::Literal(Value::Map(m)))
                } else {
                    Ok(Expr::MapExpr(entries))
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

/// Folds the `bytes("hex")` / `objectref("id")` literal constructors emitted
/// by the pretty-printer back into literal values.
fn fold_literal_ctor(name: String, args: Vec<Expr>) -> Expr {
    if args.len() == 1 {
        if let Expr::Literal(Value::Str(s)) = &args[0] {
            match name.as_str() {
                "bytes" if s.len() % 2 == 0 => {
                    if let Ok(raw) = (0..s.len())
                        .step_by(2)
                        .map(|i| u8::from_str_radix(&s[i..i + 2], 16))
                        .collect::<Result<Vec<u8>, _>>()
                    {
                        return Expr::Literal(Value::Bytes(raw));
                    }
                }
                "objectref" => {
                    if let Ok(id) = s.parse() {
                        return Expr::Literal(Value::ObjectRef(id));
                    }
                }
                "float" => {
                    // Folding is only safe when a plain parse succeeds (the
                    // `float` builtin additionally strips markup and trims,
                    // but plain-parseable inputs behave identically).
                    if let Ok(x) = s.parse::<f64>() {
                        return Expr::Literal(Value::Float(x));
                    }
                }
                _ => {}
            }
        }
    }
    Expr::Call(name, args)
}

/// `true` when an expression is a valid assignment target: a variable or an
/// index chain rooted at a variable.
fn is_assign_target(e: &Expr) -> bool {
    match e {
        Expr::Var(_) => true,
        Expr::Index(base, _) => is_assign_target(base),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"))
    }

    #[test]
    fn parses_params_and_statements() {
        let p = parse_ok("param a; param b; return a + b;");
        assert_eq!(p.params(), ["a", "b"]);
        assert_eq!(p.body().len(), 1);
    }

    #[test]
    fn rejects_duplicate_params() {
        assert!(parse("param a; param a;").is_err());
    }

    #[test]
    fn rejects_param_after_statement() {
        assert!(parse("let x = 1; param a;").is_err());
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse_ok("return 1 + 2 * 3;");
        match &p.body()[0] {
            Stmt::Return(Some(Expr::Binary(BinaryOp::Add, lhs, rhs))) => {
                assert_eq!(**lhs, Expr::Literal(Value::Int(1)));
                assert!(matches!(**rhs, Expr::Binary(BinaryOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        let p = parse_ok("return 10 - 2 - 3;");
        match &p.body()[0] {
            Stmt::Return(Some(Expr::Binary(BinaryOp::Sub, lhs, rhs))) => {
                assert!(matches!(**lhs, Expr::Binary(BinaryOp::Sub, _, _)));
                assert_eq!(**rhs, Expr::Literal(Value::Int(3)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let p = parse_ok("return -5;");
        assert_eq!(
            p.body()[0],
            Stmt::Return(Some(Expr::Literal(Value::Int(-5))))
        );
        let p = parse_ok("return -2.5;");
        assert_eq!(
            p.body()[0],
            Stmt::Return(Some(Expr::Literal(Value::Float(-2.5))))
        );
        // Negation of a non-literal stays an AST node.
        let p = parse_ok("return -x;");
        assert!(matches!(
            &p.body()[0],
            Stmt::Return(Some(Expr::Unary(UnaryOp::Neg, _)))
        ));
    }

    #[test]
    fn literal_lists_and_maps_fold() {
        let p = parse_ok("return [1, 2, 3];");
        assert_eq!(
            p.body()[0],
            Stmt::Return(Some(Expr::Literal(Value::list([
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))))
        );
        let p = parse_ok("return {\"a\": 1};");
        assert_eq!(
            p.body()[0],
            Stmt::Return(Some(Expr::Literal(Value::map([("a", Value::Int(1))]))))
        );
        // Non-literal elements keep constructor form.
        let p = parse_ok("return [x];");
        assert!(matches!(
            &p.body()[0],
            Stmt::Return(Some(Expr::ListExpr(_)))
        ));
    }

    #[test]
    fn bytes_and_objectref_ctors_fold() {
        let p = parse_ok("return bytes(\"ab01\");");
        assert_eq!(
            p.body()[0],
            Stmt::Return(Some(Expr::Literal(Value::Bytes(vec![0xab, 0x01]))))
        );
        let p = parse_ok("return objectref(\"0000000000000001-00000002-00000003\");");
        assert!(matches!(
            &p.body()[0],
            Stmt::Return(Some(Expr::Literal(Value::ObjectRef(_))))
        ));
        // Invalid payloads stay as (failing) calls rather than literals.
        let p = parse_ok("return bytes(\"zz\");");
        assert!(matches!(&p.body()[0], Stmt::Return(Some(Expr::Call(_, _)))));
    }

    #[test]
    fn host_calls_parse() {
        let p = parse_ok("self.invoke(\"m\", [1]);");
        match &p.body()[0] {
            Stmt::Expr(Expr::HostCall(name, args)) => {
                assert_eq!(name, "invoke");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let p = parse_ok("if (a) { return 1; } else if (b) { return 2; } else { return 3; }");
        match &p.body()[0] {
            Stmt::If(_, _, else_body) => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_and_while_loops() {
        parse_ok("for (x in range(10)) { let y = x; }");
        parse_ok("while (true) { break; }");
    }

    #[test]
    fn assignment_targets() {
        parse_ok("x = 1;");
        parse_ok("x[0] = 1;");
        parse_ok("x[0][\"k\"] = 1;");
        assert!(parse("1 = 2;").is_err());
        assert!(parse("f() = 2;").is_err());
        assert!(parse("self.get(\"x\") = 2;").is_err());
    }

    #[test]
    fn reports_errors_with_lines() {
        let err = parse("let x = 1;\nlet y = ;").unwrap_err();
        match err {
            ScriptError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_constructs() {
        assert!(parse("let = 1;").is_err());
        assert!(parse("if a { }").is_err());
        assert!(parse("while (true) return;").is_err());
        assert!(parse("{1: 2};").is_err());
        assert!(parse("{\"a\": 1, \"a\": 2};").is_err());
        assert!(parse("return [1, 2").is_err());
        assert!(parse("self.x;").is_err());
        assert!(parse("if (true) { let x = 1;").is_err());
    }

    #[test]
    fn empty_program_parses() {
        let p = parse_ok("");
        assert!(p.params().is_empty());
        assert!(p.body().is_empty());
    }
}
