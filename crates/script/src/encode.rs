//! Serialization of programs to and from [`Value`] trees.
//!
//! A mobile method body must travel inside migration images and persistent
//! object images. Rather than inventing a second byte format, programs
//! lower to ordinary [`Value`] trees (tagged lists), which then ride the
//! standard wire format. `decode` is defensive: it validates structure and
//! reports [`ScriptError::MalformedProgram`] for hostile trees.

use mrom_value::Value;

use crate::ast::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use crate::error::ScriptError;
use crate::parser::MAX_EXPR_DEPTH;

impl Program {
    /// Lowers the program to a [`Value`] tree.
    ///
    /// # Example
    ///
    /// ```
    /// use mrom_script::Program;
    ///
    /// # fn main() -> Result<(), mrom_script::ScriptError> {
    /// let p = Program::parse("param x; return x + 1;")?;
    /// let v = p.to_value();
    /// assert_eq!(Program::from_value(&v)?, p);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_value(&self) -> Value {
        Value::map([
            (
                "params",
                Value::List(
                    self.params()
                        .iter()
                        .map(|p| Value::Str(p.clone()))
                        .collect(),
                ),
            ),
            (
                "body",
                Value::List(self.body().iter().map(stmt_to_value).collect()),
            ),
        ])
    }

    /// Rebuilds a program from [`Program::to_value`] output.
    ///
    /// # Errors
    ///
    /// [`ScriptError::MalformedProgram`] when the tree does not follow the
    /// expected shape.
    pub fn from_value(v: &Value) -> Result<Program, ScriptError> {
        let m = v
            .as_map()
            .ok_or_else(|| malformed("program must be a map"))?;
        let params = m
            .get("params")
            .and_then(Value::as_list)
            .ok_or_else(|| malformed("missing params list"))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| malformed("param name must be a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let body = m
            .get("body")
            .and_then(Value::as_list)
            .ok_or_else(|| malformed("missing body list"))?
            .iter()
            .map(stmt_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program::from_parts(params, body))
    }
}

fn malformed(detail: &str) -> ScriptError {
    ScriptError::MalformedProgram(detail.to_owned())
}

fn tagged(tag: &str, rest: impl IntoIterator<Item = Value>) -> Value {
    let mut items = vec![Value::Str(tag.to_owned())];
    items.extend(rest);
    Value::List(items)
}

fn stmt_to_value(s: &Stmt) -> Value {
    match s {
        Stmt::Let(name, e) => tagged("let", [Value::Str(name.clone()), expr_to_value(e)]),
        Stmt::Assign(t, e) => tagged("assign", [expr_to_value(t), expr_to_value(e)]),
        Stmt::Expr(e) => tagged("expr", [expr_to_value(e)]),
        Stmt::If(c, a, b) => tagged(
            "if",
            [
                expr_to_value(c),
                Value::List(a.iter().map(stmt_to_value).collect()),
                Value::List(b.iter().map(stmt_to_value).collect()),
            ],
        ),
        Stmt::While(c, body) => tagged(
            "while",
            [
                expr_to_value(c),
                Value::List(body.iter().map(stmt_to_value).collect()),
            ],
        ),
        Stmt::For(name, e, body) => tagged(
            "for",
            [
                Value::Str(name.clone()),
                expr_to_value(e),
                Value::List(body.iter().map(stmt_to_value).collect()),
            ],
        ),
        Stmt::Return(None) => tagged("return", []),
        Stmt::Return(Some(e)) => tagged("return", [expr_to_value(e)]),
        Stmt::Break => tagged("break", []),
        Stmt::Continue => tagged("continue", []),
    }
}

fn expr_to_value(e: &Expr) -> Value {
    match e {
        Expr::Literal(v) => tagged("lit", [v.clone()]),
        Expr::Var(name) => tagged("var", [Value::Str(name.clone())]),
        Expr::Unary(op, a) => tagged("un", [Value::Str(op.name().to_owned()), expr_to_value(a)]),
        Expr::Binary(op, a, b) => tagged(
            "bin",
            [
                Value::Str(op.name().to_owned()),
                expr_to_value(a),
                expr_to_value(b),
            ],
        ),
        Expr::Index(a, b) => tagged("idx", [expr_to_value(a), expr_to_value(b)]),
        Expr::Call(name, args) => tagged(
            "call",
            [
                Value::Str(name.clone()),
                Value::List(args.iter().map(expr_to_value).collect()),
            ],
        ),
        Expr::HostCall(name, args) => tagged(
            "host",
            [
                Value::Str(name.clone()),
                Value::List(args.iter().map(expr_to_value).collect()),
            ],
        ),
        Expr::ListExpr(items) => tagged(
            "listx",
            [Value::List(items.iter().map(expr_to_value).collect())],
        ),
        Expr::MapExpr(entries) => tagged(
            "mapx",
            [Value::List(
                entries
                    .iter()
                    .map(|(k, v)| Value::List(vec![Value::Str(k.clone()), expr_to_value(v)]))
                    .collect(),
            )],
        ),
    }
}

/// Splits a tagged list into `(tag, fields)`.
fn untag(v: &Value) -> Result<(&str, &[Value]), ScriptError> {
    let items = v
        .as_list()
        .ok_or_else(|| malformed("node must be a tagged list"))?;
    let (head, rest) = items
        .split_first()
        .ok_or_else(|| malformed("node list is empty"))?;
    let tag = head
        .as_str()
        .ok_or_else(|| malformed("node tag must be a string"))?;
    Ok((tag, rest))
}

fn field<'a>(fields: &'a [Value], i: usize, what: &str) -> Result<&'a Value, ScriptError> {
    fields
        .get(i)
        .ok_or_else(|| malformed(&format!("missing field {i} ({what})")))
}

fn str_field(fields: &[Value], i: usize, what: &str) -> Result<String, ScriptError> {
    field(fields, i, what)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| malformed(&format!("field {i} ({what}) must be a string")))
}

fn stmt_list(v: &Value) -> Result<Vec<Stmt>, ScriptError> {
    v.as_list()
        .ok_or_else(|| malformed("expected a statement list"))?
        .iter()
        .map(stmt_from_value)
        .collect()
}

fn expr_list(v: &Value) -> Result<Vec<Expr>, ScriptError> {
    v.as_list()
        .ok_or_else(|| malformed("expected an expression list"))?
        .iter()
        .map(expr_from_value)
        .collect()
}

thread_local! {
    /// Depth guard for hostile hand-built trees: the wire decoder bounds
    /// value depth, but `Program::from_value` can be fed in-memory trees
    /// directly; without this, a deep tree would overflow the stack here
    /// or later in the evaluator.
    static DECODE_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn with_depth<T>(f: impl FnOnce() -> Result<T, ScriptError>) -> Result<T, ScriptError> {
    let depth = DECODE_DEPTH.with(|d| {
        let v = d.get() + 1;
        d.set(v);
        v
    });
    let out = if depth > MAX_EXPR_DEPTH {
        Err(malformed(&format!(
            "node nesting exceeds the limit of {MAX_EXPR_DEPTH}"
        )))
    } else {
        f()
    };
    DECODE_DEPTH.with(|d| d.set(d.get() - 1));
    out
}

fn stmt_from_value(v: &Value) -> Result<Stmt, ScriptError> {
    with_depth(|| stmt_from_value_inner(v))
}

fn stmt_from_value_inner(v: &Value) -> Result<Stmt, ScriptError> {
    let (tag, fields) = untag(v)?;
    let expect = |n: usize| -> Result<(), ScriptError> {
        if fields.len() != n {
            return Err(malformed(&format!(
                "statement {tag:?} expects {n} fields, got {}",
                fields.len()
            )));
        }
        Ok(())
    };
    match tag {
        "let" => {
            expect(2)?;
            Ok(Stmt::Let(
                str_field(fields, 0, "name")?,
                expr_from_value(field(fields, 1, "value")?)?,
            ))
        }
        "assign" => {
            expect(2)?;
            let target = expr_from_value(field(fields, 0, "target")?)?;
            if !is_target(&target) {
                return Err(malformed("assign target must be a variable or index chain"));
            }
            Ok(Stmt::Assign(
                target,
                expr_from_value(field(fields, 1, "value")?)?,
            ))
        }
        "expr" => {
            expect(1)?;
            Ok(Stmt::Expr(expr_from_value(field(fields, 0, "expr")?)?))
        }
        "if" => {
            expect(3)?;
            Ok(Stmt::If(
                expr_from_value(field(fields, 0, "cond")?)?,
                stmt_list(field(fields, 1, "then")?)?,
                stmt_list(field(fields, 2, "else")?)?,
            ))
        }
        "while" => {
            expect(2)?;
            Ok(Stmt::While(
                expr_from_value(field(fields, 0, "cond")?)?,
                stmt_list(field(fields, 1, "body")?)?,
            ))
        }
        "for" => {
            expect(3)?;
            Ok(Stmt::For(
                str_field(fields, 0, "var")?,
                expr_from_value(field(fields, 1, "iter")?)?,
                stmt_list(field(fields, 2, "body")?)?,
            ))
        }
        "return" => match fields.len() {
            0 => Ok(Stmt::Return(None)),
            1 => Ok(Stmt::Return(Some(expr_from_value(&fields[0])?))),
            n => Err(malformed(&format!("return expects 0 or 1 fields, got {n}"))),
        },
        "break" => {
            expect(0)?;
            Ok(Stmt::Break)
        }
        "continue" => {
            expect(0)?;
            Ok(Stmt::Continue)
        }
        other => Err(malformed(&format!("unknown statement tag {other:?}"))),
    }
}

fn is_target(e: &Expr) -> bool {
    match e {
        Expr::Var(_) => true,
        Expr::Index(base, _) => is_target(base),
        _ => false,
    }
}

fn expr_from_value(v: &Value) -> Result<Expr, ScriptError> {
    with_depth(|| expr_from_value_inner(v))
}

fn expr_from_value_inner(v: &Value) -> Result<Expr, ScriptError> {
    let (tag, fields) = untag(v)?;
    let expect = |n: usize| -> Result<(), ScriptError> {
        if fields.len() != n {
            return Err(malformed(&format!(
                "expression {tag:?} expects {n} fields, got {}",
                fields.len()
            )));
        }
        Ok(())
    };
    match tag {
        "lit" => {
            expect(1)?;
            Ok(Expr::Literal(fields[0].clone()))
        }
        "var" => {
            expect(1)?;
            Ok(Expr::Var(str_field(fields, 0, "name")?))
        }
        "un" => {
            expect(2)?;
            let name = str_field(fields, 0, "op")?;
            let op = UnaryOp::from_name(&name)
                .ok_or_else(|| malformed(&format!("unknown unary op {name:?}")))?;
            Ok(Expr::Unary(op, Box::new(expr_from_value(&fields[1])?)))
        }
        "bin" => {
            expect(3)?;
            let name = str_field(fields, 0, "op")?;
            let op = BinaryOp::from_name(&name)
                .ok_or_else(|| malformed(&format!("unknown binary op {name:?}")))?;
            Ok(Expr::Binary(
                op,
                Box::new(expr_from_value(&fields[1])?),
                Box::new(expr_from_value(&fields[2])?),
            ))
        }
        "idx" => {
            expect(2)?;
            Ok(Expr::Index(
                Box::new(expr_from_value(&fields[0])?),
                Box::new(expr_from_value(&fields[1])?),
            ))
        }
        "call" => {
            expect(2)?;
            Ok(Expr::Call(
                str_field(fields, 0, "name")?,
                expr_list(&fields[1])?,
            ))
        }
        "host" => {
            expect(2)?;
            Ok(Expr::HostCall(
                str_field(fields, 0, "name")?,
                expr_list(&fields[1])?,
            ))
        }
        "listx" => {
            expect(1)?;
            Ok(Expr::ListExpr(expr_list(&fields[0])?))
        }
        "mapx" => {
            expect(1)?;
            let entries = fields[0]
                .as_list()
                .ok_or_else(|| malformed("mapx entries must be a list"))?
                .iter()
                .map(|pair| {
                    let items = pair
                        .as_list()
                        .ok_or_else(|| malformed("mapx entry must be a [key, expr] pair"))?;
                    if items.len() != 2 {
                        return Err(malformed("mapx entry must have exactly two fields"));
                    }
                    let k = items[0]
                        .as_str()
                        .ok_or_else(|| malformed("mapx key must be a string"))?
                        .to_owned();
                    Ok((k, expr_from_value(&items[1])?))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Expr::MapExpr(entries))
        }
        other => Err(malformed(&format!("unknown expression tag {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_value::wire;

    fn round_trip(src: &str) {
        let p = Program::parse(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"));
        let v = p.to_value();
        let q = Program::from_value(&v).unwrap_or_else(|e| panic!("decode {src:?}: {e}"));
        assert_eq!(p, q, "value round trip for {src:?}");
        // And through the byte format.
        let bytes = wire::encode(&v);
        let v2 = wire::decode(&bytes).expect("wire decode");
        assert_eq!(Program::from_value(&v2).expect("program decode"), p);
    }

    #[test]
    fn programs_round_trip_through_values_and_bytes() {
        round_trip("");
        round_trip("param a; param b; return a + b;");
        round_trip("let x = [1, {\"k\": 2.5}, \"s\"]; x[0] = -x[0]; return x;");
        round_trip("if (a > 1) { return 1; } else if (a > 0) { return 0; } else { fail(\"no\"); }");
        round_trip(
            "while (i < 10) { i = i + 1; if (i == 5) { continue; } if (i == 8) { break; } }",
        );
        round_trip("for (x in range(3)) { self.invoke(\"m\", [x]); }");
        round_trip("return {\"nested\": [self.get(\"v\"), !true, 1 % 2]};");
        round_trip("return bytes(\"00ff\") + bytes(\"aa\");");
    }

    #[test]
    fn hostile_trees_are_rejected_not_panicked() {
        for bad in [
            Value::Null,
            Value::Int(1),
            Value::map([("params", Value::Null)]),
            Value::map([
                ("params", Value::list([])),
                ("body", Value::list([Value::Int(1)])),
            ]),
            Value::map([
                ("params", Value::list([])),
                ("body", Value::list([Value::list([Value::from("zap")])])),
            ]),
            Value::map([
                ("params", Value::list([])),
                ("body", Value::list([Value::list([Value::from("let")])])),
            ]),
            Value::map([
                ("params", Value::list([Value::Int(1)])),
                ("body", Value::list([])),
            ]),
        ] {
            assert!(
                matches!(
                    Program::from_value(&bad),
                    Err(ScriptError::MalformedProgram(_))
                ),
                "must reject {bad}"
            );
        }
    }

    #[test]
    fn hostile_assign_target_is_rejected() {
        // ["assign", ["lit", 1], ["lit", 2]] — literal target must be refused.
        let bad = Value::map([
            ("params", Value::list([])),
            (
                "body",
                Value::list([Value::list([
                    Value::from("assign"),
                    Value::list([Value::from("lit"), Value::Int(1)]),
                    Value::list([Value::from("lit"), Value::Int(2)]),
                ])]),
            ),
        ]);
        assert!(Program::from_value(&bad).is_err());
    }

    #[test]
    fn unknown_ops_are_rejected() {
        let bad = Value::map([
            ("params", Value::list([])),
            (
                "body",
                Value::list([Value::list([
                    Value::from("expr"),
                    Value::list([
                        Value::from("bin"),
                        Value::from("frobnicate"),
                        Value::list([Value::from("lit"), Value::Int(1)]),
                        Value::list([Value::from("lit"), Value::Int(2)]),
                    ]),
                ])]),
            ),
        ]);
        assert!(Program::from_value(&bad).is_err());
    }
}
