//! Bytecode verifier: an abstract interpreter over [`CompiledProgram`]
//! that proves, *independently of the compiler*, every well-formedness
//! invariant the VM's hot loop relies on — so a hostile or corrupted
//! compiled form can never reach [`crate::vm::Vm`].
//!
//! ## What is proved
//!
//! * **Control flow is closed.** Every jump operand (including a
//!   `for` loop's exhaustion target) lands in bounds *and* on a
//!   block-leader [`Charge`](crate::compile::Instr::Charge) pc — the
//!   invariant that makes block pre-charging and the peephole fuser
//!   sound. No reachable path can fall off the end of the instruction
//!   array.
//! * **Stack discipline.** A forward data-flow pass computes the operand
//!   -stack and iterator-stack depth at every reachable pc and checks
//!   that (a) no instruction pops more than is present, and (b) every
//!   join point is reached with one consistent depth — exactly the
//!   "compiler invariant" the VM's unchecked `pop!` assumes.
//! * **Pool and register bounds.** Constant, name, local-slot, map-key
//!   and host-site operands index inside their tables.
//! * **Fuel tables are canonical.** Each block's `Charge` total equals
//!   the sum of its instructions' attached costs, and the refund table
//!   holds the exact per-pc unexecuted-suffix sums — so pre-charge,
//!   early-exit refund, and lockstep replay account for precisely the
//!   same fuel along every path.
//!
//! A program that passes [`verify`] cannot make the VM panic on stack
//! underflow, index out of bounds, or a missing iterator, and cannot be
//! over- or under-charged relative to its own cost table.
//!
//! ## Byte form
//!
//! [`CompiledProgram::to_bytes`] / [`CompiledProgram::from_bytes`]
//! provide a **site-local** byte encoding (the AST remains the only
//! mobile representation). Decoding is defensive: a checksum rejects
//! byte-level corruption outright, and any stream that survives decoding
//! is still passed through [`verify`] before it is handed back — the VM
//! only ever executes verified programs.

use std::fmt;

use mrom_value::wire;
use mrom_value::Value;

use crate::ast::{BinaryOp, UnaryOp};
use crate::compile::{CompiledProgram, Instr};
use crate::eval::BuiltinId;

/// A structured verification failure. Each variant pins the defect to a
/// pc (or table index) so a host can log exactly what was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The program has no instructions (the compiler always emits at
    /// least a return).
    Empty,
    /// `costs` / `refunds` are not the same length as `instrs`.
    TableSizeMismatch {
        /// Instruction count.
        instrs: usize,
        /// Cost-table length.
        costs: usize,
        /// Refund-table length.
        refunds: usize,
    },
    /// pc 0 is not a `Charge` — execution would start mid-block.
    MissingEntryCharge,
    /// A non-terminal instruction sits at the last pc: execution would
    /// run off the end of the instruction array.
    FallOffEnd {
        /// The offending pc.
        pc: usize,
    },
    /// A jump operand points outside the instruction array.
    JumpOutOfBounds {
        /// The jumping pc.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A jump operand lands on a pc that is not a block-leader `Charge`.
    JumpNotBlockLeader {
        /// The jumping pc.
        pc: usize,
        /// The mid-block target.
        target: usize,
    },
    /// A constant-pool operand is out of bounds.
    ConstOutOfBounds {
        /// The offending pc.
        pc: usize,
        /// The out-of-range pool index.
        index: usize,
    },
    /// A name-pool operand (or map-key run) is out of bounds.
    NameOutOfBounds {
        /// The offending pc.
        pc: usize,
        /// The out-of-range pool index.
        index: usize,
    },
    /// A local-slot operand is ≥ the declared local count.
    SlotOutOfBounds {
        /// The offending pc.
        pc: usize,
        /// The out-of-range slot.
        slot: usize,
    },
    /// A host-call site index is ≥ the declared site count.
    SiteOutOfBounds {
        /// The offending pc.
        pc: usize,
        /// The out-of-range site index.
        site: usize,
    },
    /// A parameter slot is ≥ the declared local count.
    ParamSlotOutOfBounds {
        /// Position in `param_slots`.
        index: usize,
        /// The out-of-range slot.
        slot: usize,
    },
    /// An instruction would pop more values than the operand stack
    /// holds on some path.
    StackUnderflow {
        /// The offending pc.
        pc: usize,
        /// Stack depth on the failing path.
        depth: usize,
        /// Values the instruction needs.
        need: usize,
    },
    /// Two paths reach the same pc with different operand-stack depths.
    DepthMismatch {
        /// The join pc.
        pc: usize,
        /// Depth recorded first.
        expected: usize,
        /// Conflicting depth.
        found: usize,
    },
    /// An iterator instruction runs with an empty iterator stack.
    IterUnderflow {
        /// The offending pc.
        pc: usize,
    },
    /// Two paths reach the same pc with different iterator-stack depths.
    IterMismatch {
        /// The join pc.
        pc: usize,
        /// Depth recorded first.
        expected: usize,
        /// Conflicting depth.
        found: usize,
    },
    /// A `Charge` pc carries an attached cost (block headers never do).
    ChargeCost {
        /// The offending `Charge` pc.
        pc: usize,
    },
    /// A block's `Charge` total does not equal the sum of its
    /// instructions' attached costs.
    ChargeTotal {
        /// The block's `Charge` pc.
        pc: usize,
        /// Total the `Charge` declares.
        declared: u32,
        /// Sum of the block's attached costs.
        actual: u32,
    },
    /// A refund entry is not the unexecuted-suffix sum for its pc.
    RefundMismatch {
        /// The offending pc.
        pc: usize,
        /// Value in the refund table.
        declared: u32,
        /// The canonical suffix sum.
        actual: u32,
    },
    /// The byte stream failed to decode (truncation, bad tag, bad
    /// UTF-8, malformed constant, ...).
    Decode(String),
    /// The byte stream's checksum does not match its contents.
    ChecksumMismatch,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "empty instruction array"),
            VerifyError::TableSizeMismatch {
                instrs,
                costs,
                refunds,
            } => write!(
                f,
                "fuel tables out of step: {instrs} instrs, {costs} costs, {refunds} refunds"
            ),
            VerifyError::MissingEntryCharge => {
                write!(f, "pc 0 is not a Charge block header")
            }
            VerifyError::FallOffEnd { pc } => {
                write!(f, "pc {pc}: non-terminal instruction at end of program")
            }
            VerifyError::JumpOutOfBounds { pc, target } => {
                write!(f, "pc {pc}: jump target {target} out of bounds")
            }
            VerifyError::JumpNotBlockLeader { pc, target } => {
                write!(
                    f,
                    "pc {pc}: jump target {target} is not a block-leader Charge"
                )
            }
            VerifyError::ConstOutOfBounds { pc, index } => {
                write!(f, "pc {pc}: constant index {index} out of bounds")
            }
            VerifyError::NameOutOfBounds { pc, index } => {
                write!(f, "pc {pc}: name index {index} out of bounds")
            }
            VerifyError::SlotOutOfBounds { pc, slot } => {
                write!(f, "pc {pc}: local slot {slot} out of bounds")
            }
            VerifyError::SiteOutOfBounds { pc, site } => {
                write!(f, "pc {pc}: host-call site {site} out of bounds")
            }
            VerifyError::ParamSlotOutOfBounds { index, slot } => {
                write!(f, "param {index}: slot {slot} out of bounds")
            }
            VerifyError::StackUnderflow { pc, depth, need } => {
                write!(f, "pc {pc}: stack underflow (depth {depth}, need {need})")
            }
            VerifyError::DepthMismatch {
                pc,
                expected,
                found,
            } => write!(
                f,
                "pc {pc}: inconsistent stack depth at join ({expected} vs {found})"
            ),
            VerifyError::IterUnderflow { pc } => {
                write!(f, "pc {pc}: iterator stack underflow")
            }
            VerifyError::IterMismatch {
                pc,
                expected,
                found,
            } => write!(
                f,
                "pc {pc}: inconsistent iterator depth at join ({expected} vs {found})"
            ),
            VerifyError::ChargeCost { pc } => {
                write!(f, "pc {pc}: Charge carries an attached cost")
            }
            VerifyError::ChargeTotal {
                pc,
                declared,
                actual,
            } => write!(
                f,
                "pc {pc}: Charge declares {declared} but block costs sum to {actual}"
            ),
            VerifyError::RefundMismatch {
                pc,
                declared,
                actual,
            } => write!(
                f,
                "pc {pc}: refund table holds {declared}, suffix sum is {actual}"
            ),
            VerifyError::Decode(detail) => write!(f, "bytecode decode failed: {detail}"),
            VerifyError::ChecksumMismatch => write!(f, "bytecode checksum mismatch"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Instructions that end execution at their pc (return or a raised
/// runtime error): they have no successor in the control-flow graph.
fn is_terminal(instr: Instr) -> bool {
    matches!(
        instr,
        Instr::Return
            | Instr::ReturnNull
            | Instr::LoadUndef(_)
            | Instr::StoreUndef(_)
            | Instr::CallUnknown { .. }
            | Instr::AssignPathUndef { .. }
            | Instr::AssignErrBadTarget
            | Instr::AssignErrBadRoot
            | Instr::LoopControlErr
    )
}

/// Verifies a compiled program against every invariant the VM assumes.
///
/// Runs in time linear in the program size: one structural scan over all
/// pcs (bounds, targets, terminality, fuel tables) plus one data-flow
/// pass over the reachable control-flow graph (stack and iterator
/// depths). Unreachable instructions — the compiler emits some, e.g. a
/// trailing `ReturnNull` after an explicit `return` — still get the
/// structural checks, but impose no depth constraints.
///
/// # Errors
///
/// The first [`VerifyError`] found, pinned to its pc.
pub fn verify(cp: &CompiledProgram) -> Result<(), VerifyError> {
    let n = cp.instrs.len();
    if n == 0 {
        return Err(VerifyError::Empty);
    }
    if cp.costs.len() != n || cp.refunds.len() != n {
        return Err(VerifyError::TableSizeMismatch {
            instrs: n,
            costs: cp.costs.len(),
            refunds: cp.refunds.len(),
        });
    }
    if !matches!(cp.instrs[0], Instr::Charge(_)) {
        return Err(VerifyError::MissingEntryCharge);
    }
    for (index, &slot) in cp.param_slots.iter().enumerate() {
        if slot >= cp.n_locals {
            return Err(VerifyError::ParamSlotOutOfBounds {
                index,
                slot: slot as usize,
            });
        }
    }

    structural_pass(cp)?;
    fuel_pass(cp)?;
    flow_pass(cp)
}

/// Bounds, jump-target, and terminality checks over **all** pcs.
fn structural_pass(cp: &CompiledProgram) -> Result<(), VerifyError> {
    let n = cp.instrs.len();
    let n_consts = cp.consts.len();
    let n_names = cp.names.len();
    let n_locals = cp.n_locals as usize;
    let n_sites = cp.site_count() as usize;

    let check_const = |pc: usize, i: u32| {
        if (i as usize) < n_consts {
            Ok(())
        } else {
            Err(VerifyError::ConstOutOfBounds {
                pc,
                index: i as usize,
            })
        }
    };
    let check_name = |pc: usize, i: u32| {
        if (i as usize) < n_names {
            Ok(())
        } else {
            Err(VerifyError::NameOutOfBounds {
                pc,
                index: i as usize,
            })
        }
    };
    let check_slot = |pc: usize, s: u32| {
        if (s as usize) < n_locals {
            Ok(())
        } else {
            Err(VerifyError::SlotOutOfBounds {
                pc,
                slot: s as usize,
            })
        }
    };
    let check_target = |pc: usize, t: u32| {
        let target = t as usize;
        if target >= n {
            return Err(VerifyError::JumpOutOfBounds { pc, target });
        }
        if !matches!(cp.instrs[target], Instr::Charge(_)) {
            return Err(VerifyError::JumpNotBlockLeader { pc, target });
        }
        Ok(())
    };

    for (pc, &instr) in cp.instrs.iter().enumerate() {
        match instr {
            Instr::Charge(_)
            | Instr::Nop
            | Instr::Pop
            | Instr::Unary(_)
            | Instr::Binary(_)
            | Instr::Truthy
            | Instr::Index
            | Instr::MakeList(_)
            | Instr::AssignErrBadTarget
            | Instr::AssignErrBadRoot
            | Instr::IterNew
            | Instr::IterPop
            | Instr::LoopControlErr
            | Instr::Return
            | Instr::ReturnNull => {}
            Instr::LoadConst(i) => check_const(pc, i)?,
            Instr::LoadLocal(s) | Instr::StoreLocal(s) => check_slot(pc, s)?,
            Instr::LoadUndef(i) | Instr::StoreUndef(i) => check_name(pc, i)?,
            Instr::BinaryLL { a, b, .. } => {
                check_slot(pc, a)?;
                check_slot(pc, b)?;
            }
            Instr::BinaryLC { a, c, .. } => {
                check_slot(pc, a)?;
                check_const(pc, c)?;
            }
            Instr::BinaryTL { b, .. } => check_slot(pc, b)?,
            Instr::BinaryTC { c, .. } => check_const(pc, c)?,
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::AndCheck(t) | Instr::OrCheck(t) => {
                check_target(pc, t)?;
            }
            Instr::Call { .. } => {}
            Instr::CallUnknown { name, .. } => check_name(pc, name)?,
            Instr::HostCall { name, site, .. } => {
                check_name(pc, name)?;
                if site as usize >= n_sites {
                    return Err(VerifyError::SiteOutOfBounds {
                        pc,
                        site: site as usize,
                    });
                }
            }
            Instr::MakeMap { keys, n: count } => {
                let end = keys as usize + count as usize;
                if end > n_names {
                    return Err(VerifyError::NameOutOfBounds { pc, index: end });
                }
            }
            Instr::AssignPath { root, .. } => check_slot(pc, root)?,
            Instr::AssignPathUndef { name, .. } => check_name(pc, name)?,
            Instr::IterNext { slot, end } => {
                check_slot(pc, slot)?;
                check_target(pc, end)?;
            }
        }
        if pc + 1 == n && !is_terminal(instr) {
            return Err(VerifyError::FallOffEnd { pc });
        }
    }
    Ok(())
}

/// Recomputes the canonical fuel tables and compares: each block's
/// `Charge` total must equal the sum of its attached costs, and each
/// refund entry must be the exact unexecuted-suffix sum (saturated to
/// `u32::MAX` exactly as the compiler saturates).
fn fuel_pass(cp: &CompiledProgram) -> Result<(), VerifyError> {
    let n = cp.instrs.len();
    let charges: Vec<usize> = (0..n)
        .filter(|&pc| matches!(cp.instrs[pc], Instr::Charge(_)))
        .collect();
    // `verify` has already established `instrs[0]` is a Charge, so the
    // blocks partition the whole program.
    for (bi, &start) in charges.iter().enumerate() {
        let end = charges.get(bi + 1).copied().unwrap_or(n);
        if cp.costs[start] != 0 {
            return Err(VerifyError::ChargeCost { pc: start });
        }
        if cp.refunds[start] != 0 {
            return Err(VerifyError::RefundMismatch {
                pc: start,
                declared: cp.refunds[start],
                actual: 0,
            });
        }
        let mut suffix: u64 = 0;
        for pc in (start + 1..end).rev() {
            let expected = u32::try_from(suffix).unwrap_or(u32::MAX);
            if cp.refunds[pc] != expected {
                return Err(VerifyError::RefundMismatch {
                    pc,
                    declared: cp.refunds[pc],
                    actual: expected,
                });
            }
            suffix += u64::from(cp.costs[pc]);
        }
        let actual = u32::try_from(suffix).unwrap_or(u32::MAX);
        let Instr::Charge(declared) = cp.instrs[start] else {
            unreachable!("charges holds only Charge pcs");
        };
        if declared != actual {
            return Err(VerifyError::ChargeTotal {
                pc: start,
                declared,
                actual,
            });
        }
    }
    Ok(())
}

/// Forward data-flow over the reachable CFG: operand-stack and
/// iterator-stack depth per pc, with exact-equality joins.
fn flow_pass(cp: &CompiledProgram) -> Result<(), VerifyError> {
    let n = cp.instrs.len();
    // (operand depth, iterator depth) on entry to each reachable pc.
    let mut state: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut work: Vec<usize> = Vec::with_capacity(16);
    state[0] = Some((0, 0));
    work.push(0);

    let merge = |state: &mut Vec<Option<(usize, usize)>>,
                 work: &mut Vec<usize>,
                 pc: usize,
                 depth: usize,
                 iter: usize|
     -> Result<(), VerifyError> {
        match state[pc] {
            None => {
                state[pc] = Some((depth, iter));
                work.push(pc);
                Ok(())
            }
            Some((d, it)) => {
                if d != depth {
                    return Err(VerifyError::DepthMismatch {
                        pc,
                        expected: d,
                        found: depth,
                    });
                }
                if it != iter {
                    return Err(VerifyError::IterMismatch {
                        pc,
                        expected: it,
                        found: iter,
                    });
                }
                Ok(())
            }
        }
    };

    while let Some(pc) = work.pop() {
        let (depth, iter) = state[pc].expect("work items have recorded state");
        let instr = cp.instrs[pc];
        let need = |want: usize| -> Result<(), VerifyError> {
            if depth < want {
                Err(VerifyError::StackUnderflow {
                    pc,
                    depth,
                    need: want,
                })
            } else {
                Ok(())
            }
        };
        match instr {
            Instr::Charge(_) | Instr::Nop => {
                merge(&mut state, &mut work, pc + 1, depth, iter)?;
            }
            Instr::LoadConst(_)
            | Instr::LoadLocal(_)
            | Instr::BinaryLL { .. }
            | Instr::BinaryLC { .. } => {
                merge(&mut state, &mut work, pc + 1, depth + 1, iter)?;
            }
            Instr::StoreLocal(_) | Instr::Pop => {
                need(1)?;
                merge(&mut state, &mut work, pc + 1, depth - 1, iter)?;
            }
            Instr::Unary(_) | Instr::Truthy | Instr::BinaryTL { .. } | Instr::BinaryTC { .. } => {
                need(1)?;
                merge(&mut state, &mut work, pc + 1, depth, iter)?;
            }
            Instr::Binary(_) | Instr::Index => {
                need(2)?;
                merge(&mut state, &mut work, pc + 1, depth - 1, iter)?;
            }
            Instr::Jump(t) => {
                merge(&mut state, &mut work, t as usize, depth, iter)?;
            }
            Instr::JumpIfFalse(t) => {
                need(1)?;
                merge(&mut state, &mut work, t as usize, depth - 1, iter)?;
                merge(&mut state, &mut work, pc + 1, depth - 1, iter)?;
            }
            // Short-circuit checks pop the lhs; on the taken branch they
            // push the short-circuit result back, so the target sees the
            // *same* depth while the fallthrough sees one less.
            Instr::AndCheck(t) | Instr::OrCheck(t) => {
                need(1)?;
                merge(&mut state, &mut work, t as usize, depth, iter)?;
                merge(&mut state, &mut work, pc + 1, depth - 1, iter)?;
            }
            Instr::Call { argc, .. } | Instr::HostCall { argc, .. } => {
                let argc = argc as usize;
                need(argc)?;
                merge(&mut state, &mut work, pc + 1, depth - argc + 1, iter)?;
            }
            Instr::MakeList(count) | Instr::MakeMap { n: count, .. } => {
                let count = count as usize;
                need(count)?;
                merge(&mut state, &mut work, pc + 1, depth - count + 1, iter)?;
            }
            Instr::AssignPath { n_idx, .. } => {
                let pops = n_idx as usize + 1;
                need(pops)?;
                merge(&mut state, &mut work, pc + 1, depth - pops, iter)?;
            }
            Instr::IterNew => {
                need(1)?;
                merge(&mut state, &mut work, pc + 1, depth - 1, iter + 1)?;
            }
            Instr::IterNext { end, .. } => {
                if iter == 0 {
                    return Err(VerifyError::IterUnderflow { pc });
                }
                merge(&mut state, &mut work, end as usize, depth, iter)?;
                merge(&mut state, &mut work, pc + 1, depth, iter)?;
            }
            Instr::IterPop => {
                if iter == 0 {
                    return Err(VerifyError::IterUnderflow { pc });
                }
                merge(&mut state, &mut work, pc + 1, depth, iter - 1)?;
            }
            // Terminals: no successors, but their pops must still be
            // covered on every path that reaches them.
            Instr::Return | Instr::StoreUndef(_) => {
                need(1)?;
            }
            Instr::CallUnknown { argc, .. } => {
                need(argc as usize)?;
            }
            Instr::AssignPathUndef { n_idx, .. } => {
                need(n_idx as usize + 1)?;
            }
            Instr::ReturnNull
            | Instr::LoadUndef(_)
            | Instr::AssignErrBadTarget
            | Instr::AssignErrBadRoot
            | Instr::LoopControlErr => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Site-local byte encoding
// ---------------------------------------------------------------------

const MAGIC: &[u8; 4] = b"MRBC";
const VERSION: u8 = 1;

/// Binary operators in stable encoding order.
const BIN_OPS: [BinaryOp; 13] = [
    BinaryOp::Or,
    BinaryOp::And,
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Rem,
];

fn bin_code(op: BinaryOp) -> u8 {
    let idx = BIN_OPS
        .iter()
        .position(|&o| o == op)
        .expect("BIN_OPS covers every BinaryOp");
    u8::try_from(idx).expect("13 operators fit a byte")
}

/// FNV-1a over the stream — not cryptographic, just enough to turn any
/// accidental or byte-level corruption into a structured rejection.
fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    w_u32(out, u32::try_from(s.len()).unwrap_or(u32::MAX));
    out.extend_from_slice(s.as_bytes());
}

fn w_value(out: &mut Vec<u8>, v: &Value) {
    let bytes = wire::encode(v);
    w_u32(out, u32::try_from(bytes.len()).unwrap_or(u32::MAX));
    out.extend_from_slice(&bytes);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], VerifyError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| VerifyError::Decode("truncated stream".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn r_u8(&mut self) -> Result<u8, VerifyError> {
        Ok(self.take(1)?[0])
    }

    fn r_u32(&mut self) -> Result<u32, VerifyError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn r_str(&mut self) -> Result<String, VerifyError> {
        let len = self.r_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| VerifyError::Decode("name is not UTF-8".into()))
    }

    fn r_value(&mut self) -> Result<Value, VerifyError> {
        let len = self.r_u32()? as usize;
        let bytes = self.take(len)?;
        wire::decode(bytes).map_err(|e| VerifyError::Decode(format!("malformed constant: {e}")))
    }

    fn r_bin(&mut self) -> Result<BinaryOp, VerifyError> {
        let code = self.r_u8()? as usize;
        BIN_OPS
            .get(code)
            .copied()
            .ok_or_else(|| VerifyError::Decode(format!("bad binary-op code {code}")))
    }
}

impl CompiledProgram {
    /// Encodes the compiled form as bytes. **Site-local only**: the AST
    /// remains the sole mobile representation of a method body; this
    /// encoding exists so a host can stage compiled code (and so tests
    /// can corrupt it and prove [`CompiledProgram::from_bytes`] rejects
    /// the damage).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.instrs.len() * 6);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        w_u32(
            &mut out,
            u32::try_from(self.instrs.len()).unwrap_or(u32::MAX),
        );
        for (pc, instr) in self.instrs.iter().enumerate() {
            encode_instr(&mut out, *instr);
            w_u32(&mut out, self.costs[pc]);
            w_u32(&mut out, self.refunds[pc]);
        }
        w_u32(
            &mut out,
            u32::try_from(self.consts.len()).unwrap_or(u32::MAX),
        );
        for c in &self.consts {
            w_value(&mut out, c);
        }
        w_u32(
            &mut out,
            u32::try_from(self.names.len()).unwrap_or(u32::MAX),
        );
        for name in &self.names {
            w_str(&mut out, name);
        }
        w_u32(&mut out, self.n_locals);
        w_u32(
            &mut out,
            u32::try_from(self.param_slots.len()).unwrap_or(u32::MAX),
        );
        for &slot in &self.param_slots {
            w_u32(&mut out, slot);
        }
        w_u32(&mut out, self.site_count());
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes and **verifies** a byte stream produced by
    /// [`CompiledProgram::to_bytes`]. The returned program has passed
    /// [`verify`] — handing a `Vm` anything else is impossible through
    /// this path, which is what makes foreign compiled forms safe to
    /// stage.
    ///
    /// # Errors
    ///
    /// [`VerifyError::ChecksumMismatch`] on any byte-level corruption,
    /// [`VerifyError::Decode`] on structural decode failures, or any
    /// other [`VerifyError`] when the decoded program fails
    /// verification.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompiledProgram, VerifyError> {
        if bytes.len() < MAGIC.len() + 1 + 8 {
            return Err(VerifyError::Decode("stream too short".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
        if checksum(body) != declared {
            return Err(VerifyError::ChecksumMismatch);
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(VerifyError::Decode("bad magic".into()));
        }
        if r.r_u8()? != VERSION {
            return Err(VerifyError::Decode("unsupported version".into()));
        }
        let n_instrs = r.r_u32()? as usize;
        // A length prefix larger than the stream itself is corruption;
        // cap preallocation at what the remaining bytes could encode.
        if n_instrs > body.len() {
            return Err(VerifyError::Decode(
                "instruction count exceeds stream".into(),
            ));
        }
        let mut instrs = Vec::with_capacity(n_instrs);
        let mut costs = Vec::with_capacity(n_instrs);
        let mut refunds = Vec::with_capacity(n_instrs);
        for _ in 0..n_instrs {
            instrs.push(decode_instr(&mut r)?);
            costs.push(r.r_u32()?);
            refunds.push(r.r_u32()?);
        }
        let n_consts = r.r_u32()? as usize;
        if n_consts > body.len() {
            return Err(VerifyError::Decode("constant count exceeds stream".into()));
        }
        let mut consts = Vec::with_capacity(n_consts);
        for _ in 0..n_consts {
            consts.push(r.r_value()?);
        }
        let n_names = r.r_u32()? as usize;
        if n_names > body.len() {
            return Err(VerifyError::Decode("name count exceeds stream".into()));
        }
        let mut names = Vec::with_capacity(n_names);
        for _ in 0..n_names {
            names.push(r.r_str()?);
        }
        let n_locals = r.r_u32()?;
        let n_params = r.r_u32()? as usize;
        if n_params > body.len() {
            return Err(VerifyError::Decode("param count exceeds stream".into()));
        }
        let mut param_slots = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            param_slots.push(r.r_u32()?);
        }
        let n_sites = r.r_u32()?;
        if r.pos != body.len() {
            return Err(VerifyError::Decode("trailing bytes after stream".into()));
        }
        let cp = CompiledProgram::from_raw_parts(
            instrs,
            costs,
            refunds,
            consts,
            names,
            n_locals,
            param_slots,
            n_sites,
        );
        verify(&cp)?;
        Ok(cp)
    }
}

fn encode_instr(out: &mut Vec<u8>, instr: Instr) {
    match instr {
        Instr::Charge(v) => {
            out.push(0);
            w_u32(out, v);
        }
        Instr::Nop => out.push(1),
        Instr::LoadConst(i) => {
            out.push(2);
            w_u32(out, i);
        }
        Instr::LoadLocal(s) => {
            out.push(3);
            w_u32(out, s);
        }
        Instr::StoreLocal(s) => {
            out.push(4);
            w_u32(out, s);
        }
        Instr::LoadUndef(i) => {
            out.push(5);
            w_u32(out, i);
        }
        Instr::StoreUndef(i) => {
            out.push(6);
            w_u32(out, i);
        }
        Instr::Pop => out.push(7),
        Instr::Unary(op) => {
            out.push(8);
            out.push(match op {
                UnaryOp::Neg => 0,
                UnaryOp::Not => 1,
            });
        }
        Instr::Binary(op) => {
            out.push(9);
            out.push(bin_code(op));
        }
        Instr::BinaryLL { op, a, b } => {
            out.push(10);
            out.push(bin_code(op));
            w_u32(out, a);
            w_u32(out, b);
        }
        Instr::BinaryLC { op, a, c } => {
            out.push(11);
            out.push(bin_code(op));
            w_u32(out, a);
            w_u32(out, c);
        }
        Instr::BinaryTL { op, b } => {
            out.push(12);
            out.push(bin_code(op));
            w_u32(out, b);
        }
        Instr::BinaryTC { op, c } => {
            out.push(13);
            out.push(bin_code(op));
            w_u32(out, c);
        }
        Instr::Truthy => out.push(14),
        Instr::Jump(t) => {
            out.push(15);
            w_u32(out, t);
        }
        Instr::JumpIfFalse(t) => {
            out.push(16);
            w_u32(out, t);
        }
        Instr::AndCheck(t) => {
            out.push(17);
            w_u32(out, t);
        }
        Instr::OrCheck(t) => {
            out.push(18);
            w_u32(out, t);
        }
        Instr::Index => out.push(19),
        Instr::Call { builtin, argc } => {
            out.push(20);
            w_str(out, builtin.name());
            w_u32(out, argc);
        }
        Instr::CallUnknown { name, argc } => {
            out.push(21);
            w_u32(out, name);
            w_u32(out, argc);
        }
        Instr::HostCall { name, argc, site } => {
            out.push(22);
            w_u32(out, name);
            w_u32(out, argc);
            w_u32(out, site);
        }
        Instr::MakeList(n) => {
            out.push(23);
            w_u32(out, n);
        }
        Instr::MakeMap { keys, n } => {
            out.push(24);
            w_u32(out, keys);
            w_u32(out, n);
        }
        Instr::AssignPath { root, n_idx } => {
            out.push(25);
            w_u32(out, root);
            w_u32(out, n_idx);
        }
        Instr::AssignPathUndef { name, n_idx } => {
            out.push(26);
            w_u32(out, name);
            w_u32(out, n_idx);
        }
        Instr::AssignErrBadTarget => out.push(27),
        Instr::AssignErrBadRoot => out.push(28),
        Instr::IterNew => out.push(29),
        Instr::IterNext { slot, end } => {
            out.push(30);
            w_u32(out, slot);
            w_u32(out, end);
        }
        Instr::IterPop => out.push(31),
        Instr::LoopControlErr => out.push(32),
        Instr::Return => out.push(33),
        Instr::ReturnNull => out.push(34),
    }
}

fn decode_instr(r: &mut Reader<'_>) -> Result<Instr, VerifyError> {
    let tag = r.r_u8()?;
    Ok(match tag {
        0 => Instr::Charge(r.r_u32()?),
        1 => Instr::Nop,
        2 => Instr::LoadConst(r.r_u32()?),
        3 => Instr::LoadLocal(r.r_u32()?),
        4 => Instr::StoreLocal(r.r_u32()?),
        5 => Instr::LoadUndef(r.r_u32()?),
        6 => Instr::StoreUndef(r.r_u32()?),
        7 => Instr::Pop,
        8 => Instr::Unary(match r.r_u8()? {
            0 => UnaryOp::Neg,
            1 => UnaryOp::Not,
            code => return Err(VerifyError::Decode(format!("bad unary-op code {code}"))),
        }),
        9 => Instr::Binary(r.r_bin()?),
        10 => Instr::BinaryLL {
            op: r.r_bin()?,
            a: r.r_u32()?,
            b: r.r_u32()?,
        },
        11 => Instr::BinaryLC {
            op: r.r_bin()?,
            a: r.r_u32()?,
            c: r.r_u32()?,
        },
        12 => Instr::BinaryTL {
            op: r.r_bin()?,
            b: r.r_u32()?,
        },
        13 => Instr::BinaryTC {
            op: r.r_bin()?,
            c: r.r_u32()?,
        },
        14 => Instr::Truthy,
        15 => Instr::Jump(r.r_u32()?),
        16 => Instr::JumpIfFalse(r.r_u32()?),
        17 => Instr::AndCheck(r.r_u32()?),
        18 => Instr::OrCheck(r.r_u32()?),
        19 => Instr::Index,
        20 => {
            let name = r.r_str()?;
            let builtin = BuiltinId::from_name(&name)
                .ok_or_else(|| VerifyError::Decode(format!("unknown builtin {name:?}")))?;
            Instr::Call {
                builtin,
                argc: r.r_u32()?,
            }
        }
        21 => Instr::CallUnknown {
            name: r.r_u32()?,
            argc: r.r_u32()?,
        },
        22 => Instr::HostCall {
            name: r.r_u32()?,
            argc: r.r_u32()?,
            site: r.r_u32()?,
        },
        23 => Instr::MakeList(r.r_u32()?),
        24 => Instr::MakeMap {
            keys: r.r_u32()?,
            n: r.r_u32()?,
        },
        25 => Instr::AssignPath {
            root: r.r_u32()?,
            n_idx: r.r_u32()?,
        },
        26 => Instr::AssignPathUndef {
            name: r.r_u32()?,
            n_idx: r.r_u32()?,
        },
        27 => Instr::AssignErrBadTarget,
        28 => Instr::AssignErrBadRoot,
        29 => Instr::IterNew,
        30 => Instr::IterNext {
            slot: r.r_u32()?,
            end: r.r_u32()?,
        },
        31 => Instr::IterPop,
        32 => Instr::LoopControlErr,
        33 => Instr::Return,
        34 => Instr::ReturnNull,
        _ => return Err(VerifyError::Decode(format!("bad opcode tag {tag}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Program;

    fn compiled(src: &str) -> CompiledProgram {
        Program::parse(src)
            .unwrap_or_else(|e| panic!("parse {src:?}: {e}"))
            .compiled()
            .as_ref()
            .clone()
    }

    const CORPUS: &[&str] = &[
        "return 1;",
        "param a; param b; return a + b * 2;",
        "let x = 1; let y = 2; if (x < y) { return x; } else { return y; }",
        "let s = 0; let i = 0; while (i < 10) { s = s + i; i = i + 1; } return s;",
        "let s = 0; for (i in range(5)) { if (i == 3) { break; } s = s + i; } return s;",
        "let m = {\"a\": [1, 2], \"b\": 0}; m[\"a\"][1] = 9; return m[\"a\"][1];",
        "return true && false || 1 < 2;",
        "let r = self.get(\"x\"); self.set(\"x\", r); return self.invoke(\"m\", [r]);",
        "let l = [1, 2, 3]; let out = []; for (v in l) { push(out, v * v); } return out;",
        "return -len(\"abc\") + int(\"4\");",
        "for (a in [1]) { for (b in [2]) { continue; } } return null;",
        "return ghost;",
        "break;",
    ];

    #[test]
    fn every_compiler_output_verifies() {
        for src in CORPUS {
            let cp = compiled(src);
            verify(&cp).unwrap_or_else(|e| panic!("{src:?} failed verification: {e}"));
        }
    }

    #[test]
    fn bytes_round_trip_and_verify() {
        for src in CORPUS {
            let cp = compiled(src);
            let bytes = cp.to_bytes();
            let back = CompiledProgram::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{src:?} failed round trip: {e}"));
            assert_eq!(cp, back, "round-trip drift on {src:?}");
        }
    }

    #[test]
    fn any_single_byte_flip_is_rejected() {
        let cp = compiled("let x = 2; while (x > 0) { x = x - 1; } return self.get(\"x\");");
        let bytes = cp.to_bytes();
        for idx in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[idx] ^= 0x01;
            assert!(
                CompiledProgram::from_bytes(&damaged).is_err(),
                "flip at byte {idx} was accepted"
            );
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let bytes = compiled("return 1 + 2;").to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                CompiledProgram::from_bytes(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes was accepted"
            );
        }
    }

    // -- targeted structural tampering (bypasses the checksum) -----------

    #[test]
    fn jump_into_block_interior_is_rejected() {
        let mut cp = compiled("let x = 1; if (x) { x = 2; } return x;");
        let jump_pc = cp
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::JumpIfFalse(_)))
            .expect("if compiles to JumpIfFalse");
        // Retarget to pc 1 — the entry block's first real instruction,
        // never a block-leader Charge.
        assert!(!matches!(cp.instrs[1], Instr::Charge(_)));
        cp.instrs[jump_pc] = Instr::JumpIfFalse(1);
        assert!(matches!(
            verify(&cp),
            Err(VerifyError::JumpNotBlockLeader { .. }) | Err(VerifyError::JumpOutOfBounds { .. })
        ));
    }

    #[test]
    fn out_of_bounds_operands_are_rejected() {
        let mut cp = compiled("let x = 1; return x;");
        let load = cp
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::LoadConst(_)))
            .expect("literal compiles to LoadConst");
        cp.instrs[load] = Instr::LoadConst(99);
        assert!(matches!(
            verify(&cp),
            Err(VerifyError::ConstOutOfBounds { index: 99, .. })
        ));

        let mut cp = compiled("let x = 1; return x;");
        let store = cp
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::StoreLocal(_)))
            .expect("let compiles to StoreLocal");
        cp.instrs[store] = Instr::StoreLocal(77);
        assert!(matches!(
            verify(&cp),
            Err(VerifyError::SlotOutOfBounds { slot: 77, .. })
        ));
    }

    #[test]
    fn stack_underflow_is_rejected() {
        let mut cp = compiled("return 1;");
        // Overwrite the LoadConst with a Nop: Return now pops nothing.
        let load = cp
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::LoadConst(_)))
            .expect("literal compiles to LoadConst");
        cp.instrs[load] = Instr::Nop;
        assert!(matches!(
            verify(&cp),
            Err(VerifyError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn fall_off_end_is_rejected() {
        let mut cp = compiled("return 1;");
        let last = cp.instrs.len() - 1;
        cp.instrs[last] = Instr::Nop;
        assert!(matches!(verify(&cp), Err(VerifyError::FallOffEnd { .. })));
    }

    #[test]
    fn tampered_fuel_tables_are_rejected() {
        let mut cp = compiled("return 1 + 2;");
        let Instr::Charge(total) = cp.instrs[0] else {
            panic!("pc 0 must be Charge")
        };
        cp.instrs[0] = Instr::Charge(total + 1);
        assert!(matches!(verify(&cp), Err(VerifyError::ChargeTotal { .. })));

        let mut cp = compiled("return 1 + 2;");
        cp.refunds[1] = cp.refunds[1].wrapping_add(5);
        assert!(matches!(
            verify(&cp),
            Err(VerifyError::RefundMismatch { .. })
        ));
    }

    #[test]
    fn missing_entry_charge_is_rejected() {
        let mut cp = compiled("return 1;");
        cp.instrs[0] = Instr::Nop;
        assert!(matches!(verify(&cp), Err(VerifyError::MissingEntryCharge)));
    }

    #[test]
    fn iterator_tampering_is_rejected() {
        let mut cp = compiled("for (i in [1, 2]) { let x = i; } return null;");
        let iter_new = cp
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::IterNew))
            .expect("for compiles to IterNew");
        // Drop the IterNew (replace with Pop to keep stack depths): the
        // loop's IterNext now runs with an empty iterator stack.
        cp.instrs[iter_new] = Instr::Pop;
        assert!(matches!(
            verify(&cp),
            Err(VerifyError::IterUnderflow { .. })
        ));
    }

    #[test]
    fn errors_display_their_pc() {
        let e = VerifyError::StackUnderflow {
            pc: 7,
            depth: 0,
            need: 2,
        };
        assert!(e.to_string().contains("pc 7"));
        assert!(VerifyError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
    }
}
