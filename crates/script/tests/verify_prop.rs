//! Compiler/verifier agreement properties: every compiled form the
//! compiler emits must pass independent bytecode verification, survive a
//! byte round trip unchanged, and any single-byte corruption of the
//! staged encoding must be rejected before a `Vm` can see it.
//!
//! The random programs come from the same seeded generator the
//! interpreter/VM differential battery sweeps (`tests/common/mod.rs`),
//! so the verifier is exercised over the identical program distribution
//! that the execution-equivalence evidence covers. `MROM_DIFF_SEEDS`
//! widens the sweep in CI exactly as it does for the differential tests.

use mrom_script::{verify, CompiledProgram, Program, VerifyError};
use proptest::prelude::*;

mod common;
use common::GenCtx;

fn sweep_seeds() -> u64 {
    std::env::var("MROM_DIFF_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// The hand corpus: the same shapes the differential battery pins, plus
/// verifier-relevant extremes (empty body, loop control, deep nesting).
const CORPUS: &[&str] = &[
    "return null;",
    "param a; return a + 1;",
    "let x = 0; while (x < 5) { let x = x + 1; } return x;",
    "let i = 0; while (true) { let i = i + 1; if (i > 3) { break; } continue; } return i;",
    "param who; return self.get(\"greeting\") + \", \" + who;",
    "self.set(\"n\", self.get(\"n\") + 1); return self.get(\"n\");",
    "let m = {\"a\": 1, \"b\": [1, 2, 3]}; return m[\"b\"][2];",
    "param k; return self.invoke(k, []);",
    "self.add_method(\"x\", \"return 1;\"); return null;",
    "if (1 < 2) { return \"yes\"; } else { return \"no\"; }",
    "let acc = 0; let xs = [1, 2, 3, 4]; let i = 0; \
     while (i < len(xs)) { let acc = acc + xs[i]; let i = i + 1; } return acc;",
];

#[test]
fn every_compiled_program_verifies_cleanly() {
    for (i, src) in CORPUS.iter().enumerate() {
        let p = Program::parse(src).unwrap_or_else(|e| panic!("corpus {i}: {e}"));
        verify(&p.compiled()).unwrap_or_else(|e| panic!("corpus {i} failed verification: {e}"));
    }
    for seed in 0..sweep_seeds() {
        let p = GenCtx::program(seed);
        verify(&p.compiled()).unwrap_or_else(|e| panic!("seed {seed} failed verification: {e}"));
    }
}

#[test]
fn byte_round_trip_is_lossless_and_verified() {
    for seed in 0..sweep_seeds() {
        let cp = GenCtx::program(seed).compiled();
        let back = CompiledProgram::from_bytes(&cp.to_bytes())
            .unwrap_or_else(|e| panic!("seed {seed} round trip rejected: {e}"));
        assert_eq!(back, *cp, "seed {seed}: round trip must be identity");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiler→verifier agreement over proptest-driven seeds (beyond
    /// the fixed sweep): whatever the compiler emits, the independent
    /// abstract interpreter accepts.
    #[test]
    fn random_programs_compile_to_verified_bytecode(seed in 0u64..1_000_000) {
        let p = GenCtx::program(seed);
        prop_assert!(verify(&p.compiled()).is_ok(), "seed {seed} must verify");
    }

    /// Single-byte corruption discipline: flipping any byte of a staged
    /// encoding (any position, any non-zero xor) must be rejected — the
    /// checksum covers every content byte, and damage to the checksum
    /// itself mismatches the recomputation. No corrupted stream may
    /// decode into a program.
    #[test]
    fn any_single_byte_mutation_is_rejected(
        seed in 0u64..10_000,
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let bytes = GenCtx::program(seed).compiled().to_bytes();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut bad = bytes;
        bad[pos] ^= xor;
        let rejected = CompiledProgram::from_bytes(&bad);
        prop_assert!(
            rejected.is_err(),
            "seed {seed}: flipping byte {pos} with {xor:#04x} must not decode"
        );
        // Byte-level damage is caught by the checksum before any
        // structural decoding runs.
        prop_assert_eq!(rejected.unwrap_err(), VerifyError::ChecksumMismatch);
    }

    /// Truncation discipline: any proper prefix of a staged encoding is
    /// rejected.
    #[test]
    fn truncated_streams_are_rejected(seed in 0u64..10_000, keep_frac in 0.0f64..1.0) {
        let bytes = GenCtx::program(seed).compiled().to_bytes();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(CompiledProgram::from_bytes(&bytes[..keep]).is_err());
    }
}
