//! Fuel-accounting regressions for allocation-sized builtins.
//!
//! Builtins that allocate or copy proportionally to their inputs must be
//! charged fuel proportionally — a flat per-call cost would let a mobile
//! method amplify a small budget into large host allocations. Each test
//! pins the *scaling* (bigger input ⇒ strictly more fuel), not exact
//! constants, so pricing can be retuned without rewriting the suite.

use mrom_script::{Evaluator, NullHost, Program, Vm};
use mrom_value::Value;

/// Fuel consumed by one program under both engines (asserted equal — the
/// pricing model is shared, so any split is a bug in itself).
fn fuel(src: &str, args: &[Value]) -> u64 {
    let p = Program::parse(src).expect("corpus parses");
    let mut host = NullHost;
    let mut ev = Evaluator::with_fuel(&mut host, 1_000_000);
    ev.run(&p, args).expect("corpus runs clean");
    let interp = ev.fuel_used();
    let mut vm = Vm::with_fuel(&mut host, 1_000_000);
    vm.run(&p.compiled(), args).expect("corpus runs clean");
    assert_eq!(interp, vm.fuel_used(), "engines price {src:?} differently");
    interp
}

fn big_str(n: usize) -> Value {
    Value::from("x".repeat(n))
}

#[test]
fn string_concat_charges_by_appended_length() {
    let small = fuel("param a; return \"p\" + a;", &[big_str(64)]);
    let large = fuel("param a; return \"p\" + a;", &[big_str(64 * 64)]);
    assert!(
        large >= small + (64 * 64 - 64) / 8,
        "concat of a {}x larger rhs must charge for the copy (got {small} vs {large})",
        64
    );
}

#[test]
fn bytes_concat_charges_by_appended_length() {
    // `bytes` parses hex, so feed it even-length hex text.
    let hex = |n: usize| Value::from("ab".repeat(n));
    let small = fuel("param a; return bytes(\"ff\") + bytes(a);", &[hex(64)]);
    let large = fuel("param a; return bytes(\"ff\") + bytes(a);", &[hex(64 * 64)]);
    assert!(
        large > small,
        "bytes concat must scale ({small} vs {large})"
    );
}

#[test]
fn list_concat_charges_by_appended_length() {
    let src = "param n; let l = []; return [0] + range(n);";
    let small = fuel(src, &[Value::Int(32)]);
    let large = fuel(src, &[Value::Int(2048)]);
    assert!(
        large >= small + (2048 - 32) / 4,
        "list concat must charge per appended element ({small} vs {large})"
    );
}

#[test]
fn string_repeat_charges_by_output_length() {
    let small = fuel("return \"ab\" * 10;", &[]);
    let large = fuel("return \"ab\" * 1000;", &[]);
    assert!(
        large >= small + (2 * 990) / 8,
        "string repetition must charge for the produced bytes ({small} vs {large})"
    );
}

#[test]
fn range_charges_by_cardinality() {
    let small = fuel("param n; return len(range(n));", &[Value::Int(16)]);
    let large = fuel("param n; return len(range(n));", &[Value::Int(4096)]);
    assert!(
        large >= small + (4096 - 16) / 4,
        "range must charge per produced element ({small} vs {large})"
    );
}

#[test]
fn argument_size_surcharge_scales_with_payload() {
    // Any builtin call pays a surcharge proportional to argument *size*,
    // not argument count — `len` on a huge string costs more than on a
    // small one even though it allocates nothing itself.
    let small = fuel("param a; return len(a);", &[big_str(32)]);
    let large = fuel("param a; return len(a);", &[big_str(32 * 256)]);
    assert!(
        large >= small + (32 * 256 - 32) / 8 / 4,
        "argument surcharge must scale with payload ({small} vs {large})"
    );
}

#[test]
fn deep_container_arguments_are_priced_recursively() {
    let shallow = fuel(
        "param a; return len(a);",
        &[Value::List(vec![Value::Int(1)])],
    );
    let nested: Value = Value::List(vec![Value::List(vec![big_str(512); 4]); 4]);
    let deep = fuel("param a; return len(a);", &[nested]);
    assert!(
        deep > shallow,
        "nested payload bytes must be visible to pricing ({shallow} vs {deep})"
    );
}

#[test]
fn join_and_split_scale_with_text_size() {
    let small = fuel(
        "param a; return len(split(a, \",\"));",
        &[Value::from("a,b".repeat(8))],
    );
    let large = fuel(
        "param a; return len(split(a, \",\"));",
        &[Value::from("a,b".repeat(1024))],
    );
    assert!(
        large > small,
        "split pricing must scale ({small} vs {large})"
    );
}
