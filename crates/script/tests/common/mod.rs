//! Shared test support: the seeded random-program generator the
//! differential battery sweeps. Extracted here so the bytecode-verifier
//! property tests exercise the *same* program distribution — any program
//! the compiler emits for this space must pass independent verification.
//!
//! Programs are skewed toward well-formed code but deliberately include
//! unresolved references, zero-iteration loops, stray control flow, and
//! deep nesting: everything the compiler accepts must still verify.

use mrom_script::{BinaryOp, Expr, Program, Stmt, UnaryOp};
use mrom_value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub struct GenCtx {
    rng: StdRng,
    /// In-scope variable names; truncated on block exit to model lexical
    /// scoping, so most references resolve (a few deliberately do not).
    vars: Vec<String>,
    next_var: usize,
    /// Declarations a statement asks to inject before itself (bounded-while
    /// counters); drained by `program` at the top level.
    pending_lets: Vec<Stmt>,
}

impl GenCtx {
    fn fresh_var(&mut self) -> String {
        let name = format!("v{}", self.next_var);
        self.next_var += 1;
        self.vars.push(name.clone());
        name
    }

    fn var_ref(&mut self) -> Expr {
        if self.vars.is_empty() || self.rng.random_bool(0.05) {
            Expr::Var("ghost".into())
        } else {
            let i = self.rng.random_range(0..self.vars.len());
            Expr::Var(self.vars[i].clone())
        }
    }

    fn literal(&mut self) -> Expr {
        Expr::Literal(match self.rng.random_range(0u32..6) {
            0 => Value::Int(self.rng.random_range(-8i64..=8)),
            1 => Value::Bool(self.rng.random_bool(0.5)),
            2 => {
                let strs = ["", "a", "xy", "hello", "mobile object"];
                Value::from(strs[self.rng.random_range(0..strs.len())])
            }
            3 => Value::Null,
            4 => Value::Int(self.rng.random_range(0i64..=3)),
            _ => Value::from("fuel"),
        })
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 {
            return if self.rng.random_bool(0.5) {
                self.literal()
            } else {
                self.var_ref()
            };
        }
        match self.rng.random_range(0u32..12) {
            0 | 1 => self.literal(),
            2 => self.var_ref(),
            3 => Expr::Unary(
                if self.rng.random_bool(0.5) {
                    UnaryOp::Neg
                } else {
                    UnaryOp::Not
                },
                Box::new(self.expr(depth - 1)),
            ),
            4..=6 => {
                let ops = [
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::Div,
                    BinaryOp::Rem,
                    BinaryOp::Eq,
                    BinaryOp::Ne,
                    BinaryOp::Lt,
                    BinaryOp::Le,
                    BinaryOp::Gt,
                    BinaryOp::Ge,
                    BinaryOp::And,
                    BinaryOp::Or,
                ];
                let op = ops[self.rng.random_range(0..ops.len())];
                let rhs =
                    if matches!(op, BinaryOp::Div | BinaryOp::Rem) && self.rng.random_bool(0.8) {
                        Expr::Literal(Value::Int(self.rng.random_range(1i64..=5)))
                    } else {
                        self.expr(depth - 1)
                    };
                Expr::Binary(op, Box::new(self.expr(depth - 1)), Box::new(rhs))
            }
            7 => Expr::Index(
                Box::new(self.expr(depth - 1)),
                Box::new(self.expr(depth - 1)),
            ),
            8 | 9 => {
                let builtins = [
                    "len", "typeof", "str", "int", "bool", "contains", "keys", "values", "range",
                    "substr", "upper", "lower", "trim", "abs", "min", "max", "push", "last",
                    "join", "bogus",
                ];
                let name = builtins[self.rng.random_range(0..builtins.len())];
                let argc = self.rng.random_range(0usize..3);
                let args = (0..argc).map(|_| self.expr(depth - 1)).collect();
                Expr::Call(name.into(), args)
            }
            10 => {
                let hosts = ["h0", "h1", "echo", "fail"];
                let w = self.rng.random_range(0u32..10);
                let name = if w < 1 {
                    "fail"
                } else {
                    hosts[self.rng.random_range(0usize..3)]
                };
                let argc = self.rng.random_range(0usize..3);
                let args = (0..argc).map(|_| self.expr(depth - 1)).collect();
                Expr::HostCall(name.into(), args)
            }
            _ => {
                if self.rng.random_bool(0.5) {
                    let n = self.rng.random_range(0usize..4);
                    Expr::ListExpr((0..n).map(|_| self.expr(depth - 1)).collect())
                } else {
                    let n = self.rng.random_range(0usize..3);
                    Expr::MapExpr(
                        (0..n)
                            .map(|i| (format!("k{i}"), self.expr(depth - 1)))
                            .collect(),
                    )
                }
            }
        }
    }

    fn block(&mut self, len: usize, depth: u32, in_loop: bool) -> Vec<Stmt> {
        let scope_mark = self.vars.len();
        let out = (0..len).map(|_| self.stmt(depth, in_loop)).collect();
        self.vars.truncate(scope_mark);
        out
    }

    fn stmt(&mut self, depth: u32, in_loop: bool) -> Stmt {
        match self.rng.random_range(0u32..14) {
            0..=2 => {
                let e = self.expr(depth);
                Stmt::Let(self.fresh_var(), e)
            }
            3 | 4 => {
                let target = if self.rng.random_bool(0.8) {
                    self.var_ref()
                } else {
                    Expr::Index(Box::new(self.var_ref()), Box::new(self.expr(1)))
                };
                Stmt::Assign(target, self.expr(depth))
            }
            5 | 6 => Stmt::Expr(self.expr(depth)),
            7 | 8 => {
                let cond = self.expr(depth.min(2));
                let then_len = self.rng.random_range(1usize..3);
                let else_len = self.rng.random_range(0usize..2);
                let then_b = self.block(then_len, depth.saturating_sub(1), in_loop);
                let else_b = self.block(else_len, depth.saturating_sub(1), in_loop);
                Stmt::If(cond, then_b, else_b)
            }
            9 => {
                // Bounded while: counter declared just outside, condition
                // counts down, increment appended to the body.
                let counter = self.fresh_var();
                let n = self.rng.random_range(1i64..=4);
                let body_len = self.rng.random_range(1usize..3);
                let scope_mark = self.vars.len();
                let mut body = self.block(body_len, depth.saturating_sub(1), true);
                self.vars.truncate(scope_mark);
                body.push(Stmt::Assign(
                    Expr::Var(counter.clone()),
                    Expr::Binary(
                        BinaryOp::Add,
                        Box::new(Expr::Var(counter.clone())),
                        Box::new(Expr::Literal(Value::Int(1))),
                    ),
                ));
                // Wrap: let counter = 0; while (counter < n) { ...; c = c + 1; }
                // Returned as the while; the let is injected by `program`.
                self.pending_lets
                    .push(Stmt::Let(counter.clone(), Expr::Literal(Value::Int(0))));
                Stmt::While(
                    Expr::Binary(
                        BinaryOp::Lt,
                        Box::new(Expr::Var(counter)),
                        Box::new(Expr::Literal(Value::Int(n))),
                    ),
                    body,
                )
            }
            10 | 11 => {
                let n = self.rng.random_range(0i64..=4);
                let item = format!("it{}", self.next_var);
                self.next_var += 1;
                let scope_mark = self.vars.len();
                self.vars.push(item.clone());
                let body_len = self.rng.random_range(1usize..3);
                let body = self.block(body_len, depth.saturating_sub(1), true);
                self.vars.truncate(scope_mark);
                Stmt::For(
                    item,
                    Expr::Call("range".into(), vec![Expr::Literal(Value::Int(n))]),
                    body,
                )
            }
            12 => {
                if in_loop && self.rng.random_bool(0.6) {
                    if self.rng.random_bool(0.5) {
                        Stmt::Break
                    } else {
                        Stmt::Continue
                    }
                } else {
                    Stmt::Expr(self.expr(depth))
                }
            }
            _ => {
                if self.rng.random_bool(0.25) {
                    Stmt::Return(Some(self.expr(depth)))
                } else {
                    let e = self.expr(depth);
                    Stmt::Let(self.fresh_var(), e)
                }
            }
        }
    }
}

impl GenCtx {
    pub fn program(seed: u64) -> Program {
        let mut ctx = GenCtx {
            rng: StdRng::seed_from_u64(seed),
            vars: Vec::new(),
            next_var: 0,
            pending_lets: Vec::new(),
        };
        let n_params = ctx.rng.random_range(0usize..3);
        let params: Vec<String> = (0..n_params).map(|_| ctx.fresh_var()).collect();
        let n_stmts = ctx.rng.random_range(3usize..9);
        let mut body = Vec::new();
        for _ in 0..n_stmts {
            let s = ctx.stmt(3, false);
            body.append(&mut ctx.pending_lets);
            body.push(s);
        }
        if ctx.rng.random_bool(0.7) {
            let e = ctx.expr(2);
            body.push(Stmt::Return(Some(e)));
        }
        Program::from_parts(params, body)
    }
}
