//! Language edge cases: literal syntax corners, deep nesting, unicode,
//! and stress shapes beyond the per-module unit tests.

use mrom_script::{Evaluator, NullHost, Program, ScriptError};
use mrom_value::Value;

fn run(src: &str) -> Result<Value, ScriptError> {
    let p = Program::parse(src)?;
    let mut host = NullHost;
    Evaluator::new(&mut host).run(&p, &[])
}

#[test]
fn float_exponent_literals() {
    assert_eq!(run("return 1e3;").unwrap(), Value::Float(1000.0));
    assert_eq!(run("return 2.5e2;").unwrap(), Value::Float(250.0));
    assert_eq!(run("return 1e-3;").unwrap(), Value::Float(0.001));
    assert_eq!(run("return 1E+2;").unwrap(), Value::Float(100.0));
    // `2e` without digits is Int(2) followed by identifier `e` — a parse
    // error in this position, not a bad literal.
    assert!(Program::parse("return 2e;").is_err());
}

#[test]
fn non_finite_floats_via_constructor() {
    assert_eq!(
        run("return float(\"inf\");").unwrap(),
        Value::Float(f64::INFINITY)
    );
    assert_eq!(
        run("return float(\"-inf\");").unwrap(),
        Value::Float(f64::NEG_INFINITY)
    );
    match run("return float(\"NaN\");").unwrap() {
        Value::Float(x) => assert!(x.is_nan()),
        other => panic!("expected nan, got {other}"),
    }
    // And they survive pretty-printing.
    let p = Program::parse("return float(\"inf\") + 1.0;").unwrap();
    let q = Program::parse(&p.to_string()).unwrap();
    assert_eq!(p, q);
}

#[test]
fn unicode_identifiers_and_strings() {
    assert_eq!(
        run("let café = \"naïve\"; return café + \" ✓\";").unwrap(),
        Value::from("naïve ✓")
    );
    assert_eq!(run("return len(\"日本語\");").unwrap(), Value::Int(3));
    assert_eq!(
        run("return substr(\"héllo\", 1, 2);").unwrap(),
        Value::from("él")
    );
}

#[test]
fn deeply_nested_expressions_parse_up_to_the_limit() {
    let nested = |depth: usize| {
        let mut src = String::from("return ");
        for _ in 0..depth {
            src.push('(');
        }
        src.push('1');
        for _ in 0..depth {
            src.push_str(" + 1)");
        }
        src.push(';');
        src
    };
    // Within the bound: parses and evaluates.
    let depth = mrom_script::MAX_EXPR_DEPTH - 2;
    assert_eq!(run(&nested(depth)).unwrap(), Value::Int(depth as i64 + 1));
    // Beyond the bound: a clean error, not a stack overflow — hostile
    // mobile code cannot crash the host at parse time.
    assert!(matches!(
        Program::parse(&nested(500)),
        Err(ScriptError::Parse { .. })
    ));
}

#[test]
fn long_statement_chains() {
    let mut src = String::new();
    for i in 0..2_000 {
        src.push_str(&format!("let v{i} = {i};\n"));
    }
    src.push_str("return v1999;");
    assert_eq!(run(&src).unwrap(), Value::Int(1999));
}

#[test]
fn nested_loops_with_labelled_behaviour() {
    // break/continue bind to the innermost loop.
    let src = r#"
        let total = 0;
        for (i in range(5)) {
            for (j in range(5)) {
                if (j > i) { break; }
                if (j == 1) { continue; }
                total = total + 1;
            }
        }
        return total;
    "#;
    // i=0:{j=0} i=1:{j=0} i>=1 skips j==1; i=2:{0,2} i=3:{0,2,3} i=4:{0,2,3,4}
    assert_eq!(run(src).unwrap(), Value::Int(11));
}

#[test]
fn shadowing_in_nested_scopes() {
    let src = r#"
        let x = 1;
        let seen = [];
        if (true) {
            let x = 2;
            seen = push(seen, x);
            if (true) {
                let x = 3;
                seen = push(seen, x);
            }
            seen = push(seen, x);
        }
        return push(seen, x);
    "#;
    assert_eq!(
        run(src).unwrap(),
        Value::list([Value::Int(2), Value::Int(3), Value::Int(2), Value::Int(1)])
    );
}

#[test]
fn for_loop_variable_does_not_leak() {
    assert!(matches!(
        run("for (i in range(3)) { } return i;"),
        Err(ScriptError::UndefinedVariable(_))
    ));
}

#[test]
fn assignment_inside_loops_mutates_outer_scope() {
    let src = r#"
        let acc = "";
        for (c in "abc") { acc = acc + c + "-"; }
        return acc;
    "#;
    assert_eq!(run(src).unwrap(), Value::from("a-b-c-"));
}

#[test]
fn map_iteration_order_is_sorted() {
    let src = r#"
        let m = {"zulu": 1, "alpha": 2, "mike": 3};
        let order = [];
        for (k in m) { order = push(order, k); }
        return order;
    "#;
    assert_eq!(
        run(src).unwrap(),
        Value::list([
            Value::from("alpha"),
            Value::from("mike"),
            Value::from("zulu")
        ])
    );
}

#[test]
fn recursion_is_impossible_but_iteration_is_enough() {
    // The language has no user-defined functions (methods live on objects),
    // so a classic fib is written iteratively.
    let src = r#"
        param n;
        let a = 0;
        let b = 1;
        for (i in range(n)) {
            let t = a + b;
            a = b;
            b = t;
        }
        return a;
    "#;
    let p = Program::parse(src).unwrap();
    let mut host = NullHost;
    let out = Evaluator::new(&mut host)
        .run(&p, &[Value::Int(30)])
        .unwrap();
    assert_eq!(out, Value::Int(832_040));
}

#[test]
fn error_line_numbers_point_at_the_problem() {
    let src = "let a = 1;\nlet b = 2;\nlet c = ;\n";
    match Program::parse(src) {
        Err(ScriptError::Parse { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected parse error, got {other:?}"),
    }
    let src = "let a = 1;\nlet s = \"unterminated;\n";
    match Program::parse(src) {
        Err(ScriptError::Lex { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected lex error, got {other:?}"),
    }
}

#[test]
fn comments_everywhere() {
    let src = r#"
        # leading comment
        param x; # trailing comment
        # between statements
        let y = x + 1; # math
        return y; # done
        # after the end
    "#;
    let p = Program::parse(src).unwrap();
    let mut host = NullHost;
    assert_eq!(
        Evaluator::new(&mut host).run(&p, &[Value::Int(9)]).unwrap(),
        Value::Int(10)
    );
}

#[test]
fn empty_containers_and_falsy_conditions() {
    assert_eq!(
        run("if ([]) { return 1; } return 0;").unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        run("if ({}) { return 1; } return 0;").unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        run("if (\"\") { return 1; } return 0;").unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        run("if (0.0) { return 1; } return 0;").unwrap(),
        Value::Int(0)
    );
    assert_eq!(
        run("if ([0]) { return 1; } return 0;").unwrap(),
        Value::Int(1)
    );
}

#[test]
fn fuel_is_proportional_not_exponential() {
    // Two programs, 10x work apart, must use roughly 10x fuel.
    let measure = |iters: usize| {
        let p = Program::parse(&format!(
            "let s = 0; for (i in range({iters})) {{ s = s + 1; }} return s;"
        ))
        .unwrap();
        let mut host = NullHost;
        let mut ev = Evaluator::new(&mut host);
        ev.run(&p, &[]).unwrap();
        ev.fuel_used()
    };
    let f1 = measure(1_000);
    let f10 = measure(10_000);
    let ratio = f10 as f64 / f1 as f64;
    assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn deeply_nested_blocks_are_bounded_too() {
    let nested_ifs = |depth: usize| {
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("if (true) { ");
        }
        src.push_str("let x = 1; ");
        for _ in 0..depth {
            src.push('}');
        }
        src
    };
    assert!(Program::parse(&nested_ifs(20)).is_ok());
    assert!(matches!(
        Program::parse(&nested_ifs(500)),
        Err(ScriptError::Parse { .. })
    ));
}

#[test]
fn hostile_deep_value_trees_rejected_by_from_value() {
    // Build an AST value tree deeper than the limit by hand (bypassing the
    // wire decoder's own depth bound).
    let mut expr = Value::list([Value::from("lit"), Value::Int(1)]);
    for _ in 0..200 {
        expr = Value::list([Value::from("un"), Value::from("not"), expr]);
    }
    let tree = Value::map([
        ("params", Value::list([])),
        (
            "body",
            Value::list([Value::list([Value::from("expr"), expr])]),
        ),
    ]);
    assert!(matches!(
        Program::from_value(&tree),
        Err(ScriptError::MalformedProgram(_))
    ));
}
