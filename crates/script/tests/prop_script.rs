//! Property tests: pretty-printer/parser round trips, serialization round
//! trips, and evaluator robustness under arbitrary programs.

use mrom_script::{BinaryOp, Evaluator, Expr, NullHost, Program, ScriptError, Stmt, UnaryOp};
use mrom_value::{wire, Value};
use proptest::prelude::*;

/// Identifier strategy that avoids keywords and builtin collisions (a
/// variable named `len` is legal but would shadow nothing — calls and vars
/// are distinguished syntactically — still, keep names distinct for
/// clarity).
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "let"
                | "param"
                | "if"
                | "else"
                | "while"
                | "for"
                | "in"
                | "return"
                | "break"
                | "continue"
                | "self"
                | "true"
                | "false"
                | "null"
        )
    })
}

/// Literal values that have exact source syntax (excludes NaN — not
/// comparable — and i64::MIN, whose negative literal cannot be re-lexed).
fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        ((i64::MIN + 1)..i64::MAX).prop_map(Value::Int),
        prop::num::f64::NORMAL.prop_map(Value::Float),
        Just(Value::Float(0.0)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(f64::NEG_INFINITY)),
        "[ -~&&[^\"\\\\]]{0,12}".prop_map(Value::Str),
        prop::collection::vec(any::<u8>(), 0..8).prop_map(Value::Bytes),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        ident().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        let op = prop_oneof![
            Just(BinaryOp::Or),
            Just(BinaryOp::And),
            Just(BinaryOp::Eq),
            Just(BinaryOp::Ne),
            Just(BinaryOp::Lt),
            Just(BinaryOp::Le),
            Just(BinaryOp::Gt),
            Just(BinaryOp::Ge),
            Just(BinaryOp::Add),
            Just(BinaryOp::Sub),
            Just(BinaryOp::Mul),
            Just(BinaryOp::Div),
            Just(BinaryOp::Rem),
        ];
        let unop = prop_oneof![Just(UnaryOp::Not)];
        prop_oneof![
            (op, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            // Neg folds numeric literals at parse time, so restrict Neg to
            // non-literal operands; Not never folds.
            (unop, inner.clone()).prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
            ident().prop_map(|v| Expr::Unary(UnaryOp::Neg, Box::new(Expr::Var(v)))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Index(Box::new(a), Box::new(b))),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| build_call(name, args)),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::HostCall(name, args)),
            // List/map constructors with at least one non-literal element
            // (all-literal constructors fold to Literal at parse time).
            (inner.clone(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(head, rest)| {
                let mut items = vec![Expr::Var("seed_var".into()), head];
                items.extend(rest);
                Expr::ListExpr(items)
            }),
        ]
    })
}

/// `bytes`/`objectref`/`float` calls with a single string-literal argument
/// fold to literals at parse time; avoid generating those shapes.
fn build_call(name: String, args: Vec<Expr>) -> Expr {
    let folds = matches!(name.as_str(), "bytes" | "objectref" | "float")
        && args.len() == 1
        && matches!(args[0], Expr::Literal(Value::Str(_)));
    if folds {
        Expr::Call(format!("{name}_"), args)
    } else {
        Expr::Call(name, args)
    }
}

fn assign_target() -> impl Strategy<Value = Expr> {
    (ident(), prop::collection::vec(literal(), 0..3)).prop_map(|(root, idxs)| {
        let mut e = Expr::Var(root);
        for idx in idxs {
            e = Expr::Index(Box::new(e), Box::new(Expr::Literal(idx)));
        }
        e
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident(), arb_expr()).prop_map(|(n, e)| Stmt::Let(n, e)),
        (assign_target(), arb_expr()).prop_map(|(t, e)| Stmt::Assign(t, e)),
        arb_expr().prop_map(Stmt::Expr),
        arb_expr().prop_map(|e| Stmt::Return(Some(e))),
        Just(Stmt::Return(None)),
        Just(Stmt::Break),
        Just(Stmt::Continue),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, a, b)| Stmt::If(c, a, b)),
            (arb_expr(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(c, b)| Stmt::While(c, b)),
            (ident(), arb_expr(), prop::collection::vec(inner, 0..3))
                .prop_map(|(v, e, b)| Stmt::For(v, e, b)),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::btree_set(ident(), 0..4),
        prop::collection::vec(arb_stmt(), 0..6),
    )
        .prop_map(|(params, body)| Program::from_parts(params.into_iter().collect(), body))
}

proptest! {
    /// Pretty-printed source re-parses to the identical AST.
    #[test]
    fn pretty_print_round_trip(p in arb_program()) {
        let source = p.to_string();
        let q = Program::parse(&source)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nsource:\n{source}"));
        prop_assert_eq!(q, p);
    }

    /// Program → Value → Program is the identity.
    #[test]
    fn value_encoding_round_trip(p in arb_program()) {
        let v = p.to_value();
        prop_assert_eq!(Program::from_value(&v).expect("decode"), p);
    }

    /// Program → Value → bytes → Value → Program is the identity.
    #[test]
    fn byte_encoding_round_trip(p in arb_program()) {
        let bytes = wire::encode(&p.to_value());
        let v = wire::decode(&bytes).expect("wire decode");
        prop_assert_eq!(Program::from_value(&v).expect("program decode"), p);
    }

    /// Running an arbitrary program never panics and never exceeds its fuel
    /// budget by more than the final step.
    #[test]
    fn evaluation_is_total_under_fuel(p in arb_program(), args in prop::collection::vec(literal(), 0..3)) {
        let mut host = NullHost;
        let mut ev = Evaluator::with_fuel(&mut host, 50_000);
        let _ = ev.run(&p, &args);
        prop_assert!(ev.fuel_used() <= 50_000);
    }

    /// Parsing arbitrary text never panics (errors are fine).
    #[test]
    fn parser_is_total(src in ".{0,200}") {
        let _ = Program::parse(&src);
    }

    /// Decoding arbitrary value trees as programs never panics.
    #[test]
    fn program_decoder_is_total(tag in "[a-z]{1,6}", n in 0usize..5) {
        let v = Value::map([
            ("params", Value::list([])),
            ("body", Value::List(vec![
                Value::List(
                    std::iter::once(Value::Str(tag.clone()))
                        .chain((0..n).map(|i| Value::Int(i as i64)))
                        .collect(),
                ),
            ])),
        ]);
        let _ = Program::from_value(&v);
    }

    /// Hostile tree: truncating any list node of a valid encoding either
    /// still decodes (body/params lists shrink harmlessly) or fails closed
    /// with [`ScriptError::MalformedProgram`] — never a panic, never some
    /// other error class.
    #[test]
    fn truncated_encodings_fail_closed(p in arb_program(), pick in 0usize..4096) {
        let mut v = p.to_value();
        let lists = count_lists(&v);
        prop_assume!(lists > 0);
        let mut target = pick % lists;
        mutate_nth_list(&mut v, &mut target, &mut |items| { items.pop(); });
        assert_decodes_or_malformed(&v);
    }

    /// Hostile tree: rewriting any node tag of a valid encoding fails
    /// closed (or, for a tag that happens to be valid at the same arity,
    /// still decodes) — never a panic.
    #[test]
    fn swapped_tags_fail_closed(
        p in arb_program(),
        pick in 0usize..4096,
        tag in "[a-z]{1,8}",
    ) {
        let mut v = p.to_value();
        let lists = count_lists(&v);
        prop_assume!(lists > 0);
        let mut target = pick % lists;
        mutate_nth_list(&mut v, &mut target, &mut |items| {
            if let Some(Value::Str(t)) = items.first_mut() {
                *t = tag.clone();
            } else {
                items.insert(0, Value::Str(tag.clone()));
            }
        });
        assert_decodes_or_malformed(&v);
    }

    /// Hostile tree: expression nests deeper than [`MAX_EXPR_DEPTH`] are
    /// rejected with [`ScriptError::MalformedProgram`] before they can
    /// exhaust the decoder's stack.
    #[test]
    fn overdeep_encodings_fail_closed(extra in 1usize..64) {
        let mut e = Value::List(vec![Value::Str("lit".into()), Value::Int(1)]);
        for _ in 0..(mrom_script::MAX_EXPR_DEPTH + extra) {
            e = Value::List(vec![
                Value::Str("un".into()),
                Value::Str("not".into()),
                e,
            ]);
        }
        let v = Value::map([
            ("params", Value::list([])),
            ("body", Value::List(vec![Value::List(vec![Value::Str("return".into()), e])])),
        ]);
        let err = Program::from_value(&v).expect_err("overdeep tree must be rejected");
        prop_assert!(matches!(err, ScriptError::MalformedProgram(_)), "got {err}");
    }
}

/// Counts every `Value::List` in the tree (including lists inside maps),
/// so a proptest index can address one uniformly.
fn count_lists(v: &Value) -> usize {
    match v {
        Value::List(items) => 1 + items.iter().map(count_lists).sum::<usize>(),
        Value::Map(entries) => entries.values().map(count_lists).sum(),
        _ => 0,
    }
}

/// Applies `f` to the `n`-th list (pre-order), counting down in place.
fn mutate_nth_list(v: &mut Value, n: &mut usize, f: &mut impl FnMut(&mut Vec<Value>)) -> bool {
    match v {
        Value::List(items) => {
            if *n == 0 {
                f(items);
                return true;
            }
            *n -= 1;
            items.iter_mut().any(|item| mutate_nth_list(item, n, f))
        }
        Value::Map(entries) => entries.values_mut().any(|item| mutate_nth_list(item, n, f)),
        _ => false,
    }
}

/// A mutated encoding must either decode (the mutation was harmless) or
/// report `MalformedProgram`; any other error class or a panic is a bug.
fn assert_decodes_or_malformed(v: &Value) {
    match Program::from_value(v) {
        Ok(_) | Err(ScriptError::MalformedProgram(_)) => {}
        Err(other) => panic!("hostile tree leaked non-malformed error: {other}"),
    }
}
