//! Property tests: pretty-printer/parser round trips, serialization round
//! trips, and evaluator robustness under arbitrary programs.

use mrom_script::{BinaryOp, Evaluator, Expr, NullHost, Program, Stmt, UnaryOp};
use mrom_value::{wire, Value};
use proptest::prelude::*;

/// Identifier strategy that avoids keywords and builtin collisions (a
/// variable named `len` is legal but would shadow nothing — calls and vars
/// are distinguished syntactically — still, keep names distinct for
/// clarity).
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "let"
                | "param"
                | "if"
                | "else"
                | "while"
                | "for"
                | "in"
                | "return"
                | "break"
                | "continue"
                | "self"
                | "true"
                | "false"
                | "null"
        )
    })
}

/// Literal values that have exact source syntax (excludes NaN — not
/// comparable — and i64::MIN, whose negative literal cannot be re-lexed).
fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        ((i64::MIN + 1)..i64::MAX).prop_map(Value::Int),
        prop::num::f64::NORMAL.prop_map(Value::Float),
        Just(Value::Float(0.0)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(f64::NEG_INFINITY)),
        "[ -~&&[^\"\\\\]]{0,12}".prop_map(Value::Str),
        prop::collection::vec(any::<u8>(), 0..8).prop_map(Value::Bytes),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        ident().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        let op = prop_oneof![
            Just(BinaryOp::Or),
            Just(BinaryOp::And),
            Just(BinaryOp::Eq),
            Just(BinaryOp::Ne),
            Just(BinaryOp::Lt),
            Just(BinaryOp::Le),
            Just(BinaryOp::Gt),
            Just(BinaryOp::Ge),
            Just(BinaryOp::Add),
            Just(BinaryOp::Sub),
            Just(BinaryOp::Mul),
            Just(BinaryOp::Div),
            Just(BinaryOp::Rem),
        ];
        let unop = prop_oneof![Just(UnaryOp::Not)];
        prop_oneof![
            (op, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            // Neg folds numeric literals at parse time, so restrict Neg to
            // non-literal operands; Not never folds.
            (unop, inner.clone()).prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
            ident().prop_map(|v| Expr::Unary(UnaryOp::Neg, Box::new(Expr::Var(v)))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Index(Box::new(a), Box::new(b))),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| build_call(name, args)),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::HostCall(name, args)),
            // List/map constructors with at least one non-literal element
            // (all-literal constructors fold to Literal at parse time).
            (inner.clone(), prop::collection::vec(inner.clone(), 0..3)).prop_map(|(head, rest)| {
                let mut items = vec![Expr::Var("seed_var".into()), head];
                items.extend(rest);
                Expr::ListExpr(items)
            }),
        ]
    })
}

/// `bytes`/`objectref`/`float` calls with a single string-literal argument
/// fold to literals at parse time; avoid generating those shapes.
fn build_call(name: String, args: Vec<Expr>) -> Expr {
    let folds = matches!(name.as_str(), "bytes" | "objectref" | "float")
        && args.len() == 1
        && matches!(args[0], Expr::Literal(Value::Str(_)));
    if folds {
        Expr::Call(format!("{name}_"), args)
    } else {
        Expr::Call(name, args)
    }
}

fn assign_target() -> impl Strategy<Value = Expr> {
    (ident(), prop::collection::vec(literal(), 0..3)).prop_map(|(root, idxs)| {
        let mut e = Expr::Var(root);
        for idx in idxs {
            e = Expr::Index(Box::new(e), Box::new(Expr::Literal(idx)));
        }
        e
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident(), arb_expr()).prop_map(|(n, e)| Stmt::Let(n, e)),
        (assign_target(), arb_expr()).prop_map(|(t, e)| Stmt::Assign(t, e)),
        arb_expr().prop_map(Stmt::Expr),
        arb_expr().prop_map(|e| Stmt::Return(Some(e))),
        Just(Stmt::Return(None)),
        Just(Stmt::Break),
        Just(Stmt::Continue),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, a, b)| Stmt::If(c, a, b)),
            (arb_expr(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(c, b)| Stmt::While(c, b)),
            (ident(), arb_expr(), prop::collection::vec(inner, 0..3))
                .prop_map(|(v, e, b)| Stmt::For(v, e, b)),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::btree_set(ident(), 0..4),
        prop::collection::vec(arb_stmt(), 0..6),
    )
        .prop_map(|(params, body)| Program::from_parts(params.into_iter().collect(), body))
}

proptest! {
    /// Pretty-printed source re-parses to the identical AST.
    #[test]
    fn pretty_print_round_trip(p in arb_program()) {
        let source = p.to_string();
        let q = Program::parse(&source)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nsource:\n{source}"));
        prop_assert_eq!(q, p);
    }

    /// Program → Value → Program is the identity.
    #[test]
    fn value_encoding_round_trip(p in arb_program()) {
        let v = p.to_value();
        prop_assert_eq!(Program::from_value(&v).expect("decode"), p);
    }

    /// Program → Value → bytes → Value → Program is the identity.
    #[test]
    fn byte_encoding_round_trip(p in arb_program()) {
        let bytes = wire::encode(&p.to_value());
        let v = wire::decode(&bytes).expect("wire decode");
        prop_assert_eq!(Program::from_value(&v).expect("program decode"), p);
    }

    /// Running an arbitrary program never panics and never exceeds its fuel
    /// budget by more than the final step.
    #[test]
    fn evaluation_is_total_under_fuel(p in arb_program(), args in prop::collection::vec(literal(), 0..3)) {
        let mut host = NullHost;
        let mut ev = Evaluator::with_fuel(&mut host, 50_000);
        let _ = ev.run(&p, &args);
        prop_assert!(ev.fuel_used() <= 50_000);
    }

    /// Parsing arbitrary text never panics (errors are fine).
    #[test]
    fn parser_is_total(src in ".{0,200}") {
        let _ = Program::parse(&src);
    }

    /// Decoding arbitrary value trees as programs never panics.
    #[test]
    fn program_decoder_is_total(tag in "[a-z]{1,6}", n in 0usize..5) {
        let v = Value::map([
            ("params", Value::list([])),
            ("body", Value::List(vec![
                Value::List(
                    std::iter::once(Value::Str(tag.clone()))
                        .chain((0..n).map(|i| Value::Int(i as i64)))
                        .collect(),
                ),
            ])),
        ]);
        let _ = Program::from_value(&v);
    }
}
