//! Differential battery: the tree-walking interpreter and the bytecode VM
//! must be observationally identical — byte-equal results and errors, the
//! same `fuel_used()` at every exhaustion point, and the same host-call
//! sequence — on a hand-written edge-case corpus and on seeded random
//! programs (`MROM_DIFF_SEEDS` selects the sweep width; CI uses ≥ 32).
//!
//! Every corpus entry is additionally swept across fuel budgets from zero
//! upward, so *every reachable exhaustion point* is compared, not just the
//! happy path.

use mrom_script::{Evaluator, Expr, HostContext, Program, ScriptError, Stmt, Vm};
use mrom_value::Value;

mod common;
use common::GenCtx;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A host that records its call trace and exercises both success and
/// failure paths deterministically.
#[derive(Default)]
struct Recorder {
    trace: Vec<(String, Vec<Value>)>,
}

impl HostContext for Recorder {
    fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        self.trace.push((name.to_owned(), args.to_vec()));
        match name {
            "fail" => Err(ScriptError::Host("host refused".into())),
            "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
            _ => Ok(Value::Int(self.trace.len() as i64)),
        }
    }
}

struct Run {
    outcome: Result<Value, ScriptError>,
    fuel_used: u64,
    host_calls: u64,
    trace: Vec<(String, Vec<Value>)>,
}

fn run_interp(p: &Program, args: &[Value], budget: u64) -> Run {
    let mut host = Recorder::default();
    let mut ev = Evaluator::with_fuel(&mut host, budget);
    let outcome = ev.run(p, args);
    let (fuel_used, host_calls) = (ev.fuel_used(), ev.host_calls());
    Run {
        outcome,
        fuel_used,
        host_calls,
        trace: host.trace,
    }
}

fn run_vm(p: &Program, args: &[Value], budget: u64) -> Run {
    let mut host = Recorder::default();
    let mut vm = Vm::with_fuel(&mut host, budget);
    let outcome = vm.run(&p.compiled(), args);
    let (fuel_used, host_calls) = (vm.fuel_used(), vm.host_calls());
    Run {
        outcome,
        fuel_used,
        host_calls,
        trace: host.trace,
    }
}

/// Runs both engines at one budget and demands full agreement; returns the
/// shared fuel consumption.
fn agree(p: &Program, args: &[Value], budget: u64, label: &str) -> u64 {
    let a = run_interp(p, args, budget);
    let b = run_vm(p, args, budget);
    assert_eq!(
        a.outcome, b.outcome,
        "[{label}] result drift at budget {budget}"
    );
    assert_eq!(
        a.fuel_used, b.fuel_used,
        "[{label}] fuel drift at budget {budget} (outcome {:?})",
        a.outcome
    );
    assert_eq!(
        a.host_calls, b.host_calls,
        "[{label}] host-call count drift at budget {budget}"
    );
    assert_eq!(
        a.trace, b.trace,
        "[{label}] host-call trace drift at budget {budget}"
    );
    a.fuel_used
}

/// Full agreement at a generous budget, then an exhaustion sweep: every
/// budget below the actual consumption (sampled when large) must exhaust
/// both engines at the identical point with identical side effects.
fn agree_everywhere(p: &Program, args: &[Value], label: &str) {
    let used = agree(p, args, 100_000, label);
    let step = (used / 256).max(1);
    let mut budget = 0;
    while budget <= used {
        agree(p, args, budget, label);
        budget += step;
    }
    if used > 0 {
        agree(p, args, used - 1, label);
    }
    agree(p, args, used + 1, label);
}

fn src(text: &str) -> Program {
    Program::parse(text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"))
}

// ---------------------------------------------------------------------------
// Hand corpus
// ---------------------------------------------------------------------------

#[test]
fn hand_corpus_agrees_at_every_budget() {
    let corpus: &[&str] = &[
        // Straight-line arithmetic and locals.
        "let x = 2; let y = x * 3; return y - 1;",
        // Branching, shadowing, and block scoping.
        "let x = 1; if (x > 0) { let x = 10; x = x + 1; } else { x = -1; } return x;",
        // While loop with break/continue.
        "let i = 0; let s = 0; while (true) { i = i + 1; \
         if (i > 8) { break; } if (i - (i / 2) * 2 == 0) { continue; } s = s + i; } return s;",
        // Nested for loops over ranges and strings.
        "let out = \"\"; for (i in range(3)) { for (c in \"ab\") { out = out + c + str(i); } } \
         return out;",
        // For over a map iterates keys; over bytes yields ints.
        "let ks = []; for (k in {\"b\": 1, \"a\": 2}) { ks = push(ks, k); } \
         let n = 0; for (b in bytes(\"hi\")) { n = n + b; } return [ks, n];",
        // Indexed assignment through nested containers.
        "let m = {\"rows\": [[1, 2], [3, 4]]}; m[\"rows\"][1][0] = 99; return m[\"rows\"];",
        // Short-circuit evaluation skips the rhs (and its host calls).
        "let a = false && self.never(); let b = true || self.never(); return [a, b];",
        // Host calls, echo round-trip, and values in the trace.
        "let a = self.ping(); let b = self.echo([a, \"x\"]); return b;",
        // A failing host call mid-program.
        "self.ping(); self.fail(); return self.never();",
        // Unknown builtin after argument evaluation.
        "return mystery(1, 2);",
        // Undefined variable read and write.
        "return ghost;",
        "ghost = 5; return 1;",
        // Type errors and division by zero.
        "return 1 + \"s\";",
        "return 1 / 0;",
        // Builtin errors: bad arity, bad coercion.
        "return len();",
        "return coerce(\"xyz\", \"int\");",
        // Size-charged builtins: concat, push, coerce of large strings.
        "let s = \"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\"; let t = s + s; let u = t + t; \
         return len(u);",
        "let l = []; for (i in range(20)) { l = push(l, str(i)); } return join(l, \"-\");",
        // Range surcharge and the range guard error.
        "return len(range(1000));",
        "return range(2000000);",
        // String repetition guard.
        "let s = \"abc\"; return len(s * 100);",
        // Deep expression nesting with mixed operators.
        "return ((1 + 2) * (3 - 4) / (5 - 3) >= -1) == (!(false) && 2 < 3);",
        // List/map literals with computed members.
        "let one = 1; return {\"a\": [one, one + 1], \"b\": {\"c\": one * 3}};",
        // Return from inside nested loops.
        "for (i in range(5)) { for (j in range(5)) { if (i * j == 6) { return [i, j]; } } } \
         return null;",
        // Stray loop control.
        "break;",
        "if (true) { continue; } return 1;",
        // Unary operators.
        "return [-(3), !true, !0, -(1 - 2)];",
        // Empty body and empty blocks.
        "",
        "if (false) { } else { } while (false) { } return null;",
        // Float arithmetic (finite values only — NaN is not comparable).
        "return 1.5 + 2.25 * 2.0;",
        // substr/split/trim/upper/lower surface.
        "let s = \" Hello World \"; return [substr(trim(s), 0, 5), upper(s), split(trim(s), \" \")];",
    ];
    for text in corpus {
        let p = src(text);
        agree_everywhere(&p, &[], text);
    }
}

#[test]
fn params_and_args_agree() {
    let p = Program::from_parts(
        vec!["a".into(), "b".into(), "args".into()],
        src("return [a, b, args];").body().to_vec(),
    );
    for args in [
        vec![],
        vec![Value::Int(1)],
        vec![Value::Int(1), Value::from("two"), Value::Bool(true)],
    ] {
        agree_everywhere(&p, &args, "params");
    }
}

#[test]
fn malformed_trees_agree() {
    // Shapes only constructible via `from_parts` (the parser rejects
    // them); the engines must raise identical runtime errors.
    let bad_target = Program::from_parts(
        Vec::new(),
        vec![Stmt::Assign(
            Expr::Literal(Value::Int(3)),
            Expr::Literal(Value::Int(1)),
        )],
    );
    let bad_root = Program::from_parts(
        Vec::new(),
        vec![Stmt::Assign(
            Expr::Index(
                Box::new(Expr::Call(
                    "len".into(),
                    vec![Expr::Literal(Value::from("v"))],
                )),
                Box::new(Expr::Literal(Value::Int(0))),
            ),
            Expr::Literal(Value::Int(1)),
        )],
    );
    agree_everywhere(&bad_target, &[], "bad-target");
    agree_everywhere(&bad_root, &[], "bad-root");
}

// ---------------------------------------------------------------------------
// Seeded random programs (generator shared with the verifier props)
// ---------------------------------------------------------------------------

#[test]
fn seeded_random_programs_agree_at_every_budget() {
    let seeds: u64 = std::env::var("MROM_DIFF_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let arg_sets = [vec![], vec![Value::Int(3), Value::from("in")]];
    for seed in 0..seeds {
        let p = GenCtx::program(seed);
        for args in &arg_sets {
            agree_everywhere(&p, args, &format!("seed {seed}"));
        }
    }
}
