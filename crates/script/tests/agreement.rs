//! Analyzer/evaluator agreement: a program the admission analyzer passes
//! clean must not stumble over the very defects the analyzer claims to
//! rule out (unresolved variables, unknown builtins) when it actually
//! runs, and the host calls it makes at runtime must be a subset of the
//! surface the manifest predicted.

use mrom_script::analyze::{analyze_program, Severity};
use mrom_script::{Evaluator, HostContext, Program, ScriptError};
use mrom_value::Value;
use proptest::prelude::*;

/// Records every host call and answers with a benign value, so scripts
/// that branch on host results keep running.
#[derive(Default)]
struct Recorder {
    calls: Vec<(String, usize)>,
}

impl HostContext for Recorder {
    fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        self.calls.push((name.to_owned(), args.len()));
        Ok(Value::Int(self.calls.len() as i64))
    }
}

/// Runs `src` under a recording host and returns the recorded calls,
/// asserting first that the analyzer found nothing and then that the run
/// finished without a scope or builtin error.
fn run_clean(src: &str, args: &[Value]) -> Vec<(String, usize)> {
    let p = Program::parse(src).expect("parse");
    let report = analyze_program(&p);
    assert!(
        report.is_clean(),
        "expected clean analysis for {src:?}, got {:?}",
        report.diagnostics
    );
    let mut host = Recorder::default();
    let mut ev = Evaluator::with_fuel(&mut host, 100_000);
    let out = ev.run(&p, args);
    if let Err(e) = out {
        panic!("analyzer-clean program failed at runtime: {e}\nsource: {src}");
    }
    host.calls
}

#[test]
fn clean_scope_heavy_program_runs() {
    run_clean(
        "param n; let total = 0; let i = 0; \
         while (i < n) { let sq = i * i; total = total + sq; i = i + 1; } \
         return total;",
        &[Value::Int(5)],
    );
}

#[test]
fn recorded_host_calls_match_the_manifest() {
    let src = "param key; \
               let current = self.get(key); \
               self.set(key, current + 1); \
               if (self.has_data(\"audit\")) { self.append_audit(key); } \
               return current;";
    let p = Program::parse(src).expect("parse");
    let report = analyze_program(&p);
    assert!(report.is_clean());

    let calls = run_clean(src, &[Value::from("hops")]);
    let called: Vec<&str> = calls.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(called, ["get", "set", "has_data", "append_audit"].to_vec());

    // Everything the run touched was statically predicted: known calls in
    // the capability buckets, the unknown one in `world_calls`.
    let m = &report.manifest;
    assert!(m.dynamic_data, "get(key) with a non-literal key is dynamic");
    assert!(m.world_calls.contains("append_audit"));
    assert_eq!(m.host_call_sites, 4);
}

#[test]
fn builtin_heavy_program_agrees() {
    run_clean(
        "param text; let parts = split(text, \" \"); let out = []; \
         for (w in parts) { out = push(out, upper(w)); } \
         return join(out, \"-\");",
        &[Value::from("a b c")],
    );
}

#[test]
fn example_scripts_on_disk_stay_clean_and_runnable() {
    // The same files CI lints; agreement means they also execute without
    // scope/builtin faults under a permissive host.
    for name in [
        "hop_counter.mrs",
        "sum_args.mrs",
        "install.mrs",
        "adapt.mrs",
    ] {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/scripts/");
        let src = std::fs::read_to_string(format!("{path}{name}")).expect("read example");
        let p = Program::parse(&src).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let report = analyze_program(&p);
        assert!(report.is_clean(), "{name}: {:?}", report.diagnostics);
        let mut host = Recorder::default();
        let mut ev = Evaluator::with_fuel(&mut host, 100_000);
        if let Err(e) = ev.run(&p, &[Value::Int(1)]) {
            panic!("{name}: runtime: {e}");
        }
    }
}

proptest! {
    /// The implication holds for arbitrary programs: whenever the analyzer
    /// reports no errors, evaluation never dies on an unresolved variable
    /// or unknown builtin — those defect classes are fully covered
    /// statically. (Programs the analyzer flags are unconstrained.)
    #[test]
    fn clean_verdicts_are_honoured_at_runtime(src in "[ -~]{0,120}") {
        let Ok(p) = Program::parse(&src) else { return Ok(()) };
        let report = analyze_program(&p);
        if report.diagnostics.iter().any(|d| d.severity == Severity::Error) {
            return Ok(());
        }
        let mut host = Recorder::default();
        let mut ev = Evaluator::with_fuel(&mut host, 20_000);
        match ev.run(&p, &[]) {
            Err(ScriptError::UndefinedVariable(name)) => {
                prop_assert!(false, "analyzer missed undefined variable {name} in {src:?}");
            }
            Err(ScriptError::UnknownBuiltin(name)) => {
                prop_assert!(false, "analyzer missed unknown builtin {name} in {src:?}");
            }
            _ => {}
        }
    }
}
