//! # mrom-net
//!
//! A deterministic discrete-event network simulator — the transport
//! substrate under mobile MROM objects.
//!
//! The paper ran HADAS on Java RMI over a real network; this reproduction
//! replaces that testbed with a seeded simulator so experiments are exactly
//! repeatable: virtual clock, per-link latency + bandwidth + jitter + loss,
//! partitions, per-link FIFO delivery (TCP-like ordering), and full
//! traffic accounting.
//!
//! ## Example
//!
//! ```
//! use mrom_net::{LinkConfig, NetworkConfig, SimNet};
//! use mrom_value::NodeId;
//!
//! # fn main() -> Result<(), mrom_net::NetError> {
//! let config = NetworkConfig::new(42).with_default_link(
//!     LinkConfig::new().latency_us(1_000).bandwidth_bytes_per_sec(1_000_000),
//! );
//! let mut net = SimNet::new(config);
//! net.add_node(NodeId(1));
//! net.add_node(NodeId(2));
//! net.send(NodeId(1), NodeId(2), b"hello".to_vec())?;
//!
//! let delivery = net.step().expect("one message in flight");
//! assert_eq!(delivery.dst, NodeId(2));
//! assert_eq!(delivery.payload, b"hello");
//! // latency + 5 bytes / 1 MB/s, in virtual microseconds:
//! assert_eq!(delivery.at.as_micros(), 1_005);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod live;
mod sim;
mod stats;
mod time;
mod topology;

pub use config::{LinkConfig, NetworkConfig};
pub use error::NetError;
pub use live::{live_cluster, LiveDelivery, LiveNode};
pub use sim::{Delivery, SimNet};
pub use stats::NetStats;
pub use time::SimTime;
pub use topology::{LinkTier, Topology, TopologyEdge};

/// Crate-local result alias over [`NetError`].
pub type Result<T> = std::result::Result<T, NetError>;
