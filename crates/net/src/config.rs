//! Link and network configuration.

use std::collections::{BTreeMap, BTreeSet};

use mrom_value::NodeId;

use crate::time::SimTime;

/// Transfer characteristics of one directed link.
///
/// Delivery time for a message of `n` bytes is
/// `latency + n / bandwidth ± jitter`, where jitter is drawn uniformly from
/// `[0, jitter_us]` with the network's seeded generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkConfig {
    latency_us: u64,
    bandwidth_bytes_per_sec: u64,
    jitter_us: u64,
    loss_probability: f64,
    duplicate_probability: f64,
    reorder_probability: f64,
}

impl LinkConfig {
    /// A fast, lossless default: 100 µs latency, 100 MB/s, no jitter.
    pub fn new() -> LinkConfig {
        LinkConfig {
            latency_us: 100,
            bandwidth_bytes_per_sec: 100_000_000,
            jitter_us: 0,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
        }
    }

    /// A profile resembling a mid-1990s campus LAN: 2 ms, 1 MB/s.
    pub fn lan() -> LinkConfig {
        LinkConfig::new()
            .latency_us(2_000)
            .bandwidth_bytes_per_sec(1_000_000)
    }

    /// A profile resembling a mid-1990s WAN hop: 80 ms, 64 kB/s, jittery.
    pub fn wan() -> LinkConfig {
        LinkConfig::new()
            .latency_us(80_000)
            .bandwidth_bytes_per_sec(64_000)
            .jitter_us(10_000)
    }

    /// Sets the propagation latency in microseconds.
    pub fn latency_us(mut self, us: u64) -> LinkConfig {
        self.latency_us = us;
        self
    }

    /// Sets the bandwidth in bytes per second (minimum 1).
    pub fn bandwidth_bytes_per_sec(mut self, bps: u64) -> LinkConfig {
        self.bandwidth_bytes_per_sec = bps.max(1);
        self
    }

    /// Sets the maximum uniform jitter in microseconds.
    pub fn jitter_us(mut self, us: u64) -> LinkConfig {
        self.jitter_us = us;
        self
    }

    /// Sets the independent per-message loss probability (clamped to
    /// `[0, 1]`).
    pub fn loss_probability(mut self, p: f64) -> LinkConfig {
        self.loss_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the independent per-message duplication probability (clamped
    /// to `[0, 1]`): the network delivers a second copy of the message, as
    /// a retransmitting or misbehaving transport would.
    pub fn duplicate_probability(mut self, p: f64) -> LinkConfig {
        self.duplicate_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the independent per-message reorder probability (clamped to
    /// `[0, 1]`): an affected message is held back by the network and may
    /// be overtaken by later traffic on the same link, breaking the
    /// default FIFO (TCP-like) ordering.
    pub fn reorder_probability(mut self, p: f64) -> LinkConfig {
        self.reorder_probability = p.clamp(0.0, 1.0);
        self
    }

    /// The propagation latency.
    pub fn latency(&self) -> SimTime {
        SimTime::from_micros(self.latency_us)
    }

    /// The configured loss probability.
    pub fn loss(&self) -> f64 {
        self.loss_probability
    }

    /// The configured jitter bound in microseconds.
    pub fn jitter_bound_us(&self) -> u64 {
        self.jitter_us
    }

    /// The configured duplication probability.
    pub fn duplication(&self) -> f64 {
        self.duplicate_probability
    }

    /// The configured reorder probability.
    pub fn reorder(&self) -> f64 {
        self.reorder_probability
    }

    /// Deterministic part of the transfer time for `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        let serialization =
            (bytes as u128 * 1_000_000u128 / self.bandwidth_bytes_per_sec as u128) as u64;
        SimTime::from_micros(self.latency_us + serialization)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::new()
    }
}

/// Whole-network configuration: a default link profile, per-pair overrides,
/// active partitions, and the seed for jitter/loss draws.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    seed: u64,
    default_link: LinkConfig,
    overrides: BTreeMap<(NodeId, NodeId), LinkConfig>,
    partitions: BTreeSet<(NodeId, NodeId)>,
}

impl NetworkConfig {
    /// A configuration with the given RNG seed and default links.
    pub fn new(seed: u64) -> NetworkConfig {
        NetworkConfig {
            seed,
            default_link: LinkConfig::new(),
            overrides: BTreeMap::new(),
            partitions: BTreeSet::new(),
        }
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the default link profile.
    pub fn with_default_link(mut self, link: LinkConfig) -> NetworkConfig {
        self.default_link = link;
        self
    }

    /// Overrides the directed link `src → dst`.
    pub fn with_link(mut self, src: NodeId, dst: NodeId, link: LinkConfig) -> NetworkConfig {
        self.overrides.insert((src, dst), link);
        self
    }

    /// Overrides both directions between `a` and `b`.
    pub fn with_symmetric_link(self, a: NodeId, b: NodeId, link: LinkConfig) -> NetworkConfig {
        self.with_link(a, b, link).with_link(b, a, link)
    }

    /// The effective config for the directed link `src → dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Replaces the directed link `src → dst` in place (mid-run fault
    /// injection: degrade or heal a link while messages are in flight; new
    /// sends observe the change, in-flight messages do not).
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, link: LinkConfig) {
        self.overrides.insert((src, dst), link);
    }

    /// Replaces both directions between `a` and `b` in place.
    pub fn set_symmetric_link(&mut self, a: NodeId, b: NodeId, link: LinkConfig) {
        self.set_link(a, b, link);
        self.set_link(b, a, link);
    }

    /// Severs both directions between `a` and `b` (messages sent while
    /// partitioned are dropped and counted).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert(order(a, b));
    }

    /// Heals a partition.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&order(a, b));
    }

    /// Is the pair currently partitioned?
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&order(a, b))
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::new(0)
    }
}

fn order(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_combines_latency_and_serialization() {
        let link = LinkConfig::new()
            .latency_us(1_000)
            .bandwidth_bytes_per_sec(1_000_000);
        // 1 MB/s = 1 byte/us.
        assert_eq!(link.transfer_time(0).as_micros(), 1_000);
        assert_eq!(link.transfer_time(500).as_micros(), 1_500);
    }

    #[test]
    fn zero_bandwidth_is_clamped() {
        let link = LinkConfig::new().bandwidth_bytes_per_sec(0);
        // Must not divide by zero; 1 byte/s floor.
        assert!(link.transfer_time(1).as_micros() >= 1_000_000);
    }

    #[test]
    fn loss_probability_is_clamped() {
        assert_eq!(LinkConfig::new().loss_probability(7.0).loss(), 1.0);
        assert_eq!(LinkConfig::new().loss_probability(-1.0).loss(), 0.0);
    }

    #[test]
    fn duplication_and_reorder_are_clamped_and_default_off() {
        let link = LinkConfig::new();
        assert_eq!(link.duplication(), 0.0);
        assert_eq!(link.reorder(), 0.0);
        assert_eq!(
            LinkConfig::new().duplicate_probability(2.0).duplication(),
            1.0
        );
        assert_eq!(LinkConfig::new().reorder_probability(-0.5).reorder(), 0.0);
        let link = LinkConfig::new()
            .duplicate_probability(0.25)
            .reorder_probability(0.5);
        assert_eq!(link.duplication(), 0.25);
        assert_eq!(link.reorder(), 0.5);
    }

    #[test]
    fn set_link_replaces_overrides_in_place() {
        let a = NodeId(1);
        let b = NodeId(2);
        let mut cfg = NetworkConfig::new(1).with_symmetric_link(a, b, LinkConfig::wan());
        cfg.set_symmetric_link(a, b, LinkConfig::lan());
        assert_eq!(cfg.link(a, b), LinkConfig::lan());
        assert_eq!(cfg.link(b, a), LinkConfig::lan());
        cfg.set_link(a, b, LinkConfig::new());
        assert_eq!(cfg.link(a, b), LinkConfig::new());
        assert_eq!(cfg.link(b, a), LinkConfig::lan());
    }

    #[test]
    fn link_overrides() {
        let a = NodeId(1);
        let b = NodeId(2);
        let c = NodeId(3);
        let cfg = NetworkConfig::new(1)
            .with_default_link(LinkConfig::lan())
            .with_symmetric_link(a, b, LinkConfig::wan());
        assert_eq!(cfg.link(a, b), LinkConfig::wan());
        assert_eq!(cfg.link(b, a), LinkConfig::wan());
        assert_eq!(cfg.link(a, c), LinkConfig::lan());
    }

    #[test]
    fn partitions_are_symmetric() {
        let mut cfg = NetworkConfig::new(1);
        let a = NodeId(1);
        let b = NodeId(2);
        assert!(!cfg.is_partitioned(a, b));
        cfg.partition(b, a);
        assert!(cfg.is_partitioned(a, b));
        assert!(cfg.is_partitioned(b, a));
        cfg.heal(a, b);
        assert!(!cfg.is_partitioned(b, a));
    }

    #[test]
    fn era_profiles_are_ordered() {
        assert!(LinkConfig::wan().transfer_time(1000) > LinkConfig::lan().transfer_time(1000));
    }
}
