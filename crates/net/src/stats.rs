//! Traffic accounting.

use std::collections::BTreeMap;

use mrom_value::NodeId;

/// Counters maintained by the simulator; every experiment report reads
/// these rather than re-deriving traffic from logs.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetStats {
    /// Messages accepted by `send`.
    pub messages_sent: u64,
    /// Messages handed to their destination.
    pub messages_delivered: u64,
    /// Messages dropped by loss or partitions.
    pub messages_dropped: u64,
    /// Payload bytes accepted by `send`.
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Per directed link `(src, dst)`: (messages, bytes) delivered.
    pub per_link: BTreeMap<(NodeId, NodeId), (u64, u64)>,
}

impl NetStats {
    /// Fraction of sent messages that were delivered (1.0 when nothing was
    /// sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    pub(crate) fn record_send(&mut self, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    pub(crate) fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    pub(crate) fn record_delivery(&mut self, src: NodeId, dst: NodeId, bytes: usize) {
        self.messages_delivered += 1;
        self.bytes_delivered += bytes as u64;
        let entry = self.per_link.entry((src, dst)).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record_send(10);
        s.record_send(20);
        s.record_drop();
        s.record_delivery(NodeId(1), NodeId(2), 10);
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.bytes_sent, 30);
        assert_eq!(s.bytes_delivered, 10);
        assert_eq!(s.per_link[&(NodeId(1), NodeId(2))], (1, 10));
        assert!((s.delivery_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(NetStats::default().delivery_ratio(), 1.0);
    }
}
