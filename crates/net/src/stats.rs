//! Traffic accounting.

use std::collections::BTreeMap;

use mrom_value::NodeId;

/// Counters maintained by the simulator; every experiment report reads
/// these rather than re-deriving traffic from logs.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetStats {
    /// Messages accepted by `send`.
    pub messages_sent: u64,
    /// Messages handed to their destination.
    pub messages_delivered: u64,
    /// Messages dropped by loss, partitions, or a crashed destination.
    pub messages_dropped: u64,
    /// Extra copies injected by per-link duplication faults. Each
    /// duplicate is delivered (or dropped) *in addition to* the original,
    /// so full accounting is `delivered + dropped = sent + duplicated`
    /// once nothing is in flight.
    pub messages_duplicated: u64,
    /// Payload bytes accepted by `send`.
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Per directed link `(src, dst)`: (messages, bytes) delivered.
    pub per_link: BTreeMap<(NodeId, NodeId), (u64, u64)>,
    /// Per directed link `(src, dst)`: messages dropped by loss or
    /// partitions. Without this the aggregate [`NetStats::messages_dropped`]
    /// could not be attributed to a link, so per-link delivery ratios
    /// silently read as perfect.
    pub per_link_dropped: BTreeMap<(NodeId, NodeId), u64>,
}

impl NetStats {
    /// Fraction of sent messages that were delivered (1.0 when nothing was
    /// sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    pub(crate) fn record_send(&mut self, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
    }

    /// Fraction of messages on the directed link `(src, dst)` that were
    /// delivered, counting drops attributed to that link (1.0 when the
    /// link never carried traffic).
    pub fn delivery_ratio_for(&self, src: NodeId, dst: NodeId) -> f64 {
        let delivered = self.per_link.get(&(src, dst)).map_or(0, |(n, _)| *n);
        let dropped = self.per_link_dropped.get(&(src, dst)).copied().unwrap_or(0);
        let total = delivered + dropped;
        if total == 0 {
            1.0
        } else {
            delivered as f64 / total as f64
        }
    }

    /// Integer-deterministic variant of [`NetStats::delivery_ratio_for`]:
    /// delivered messages per thousand attempts on the directed link
    /// `(src, dst)`, or `None` when the link never carried traffic —
    /// callers that want "quiet means healthy" can default to 1000.
    /// Being all-integer, the figure is safe to compare and report in
    /// byte-deterministic artifacts.
    #[must_use]
    pub fn delivery_permille_for(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let delivered = self.per_link.get(&(src, dst)).map_or(0, |(n, _)| *n);
        let dropped = self.per_link_dropped.get(&(src, dst)).copied().unwrap_or(0);
        let total = delivered + dropped;
        (total > 0).then(|| delivered.saturating_mul(1000) / total)
    }

    /// Every directed link whose delivery ratio fell below
    /// `threshold_permille` among links that carried at least
    /// `min_attempts` messages, in deterministic order: the cumulative
    /// (since-reset) link-degradation signal. The windowed analogue
    /// lives on the telemetry snapshot; this one is what a site without
    /// windowing enabled can still steer by.
    #[must_use]
    pub fn degraded_links(
        &self,
        threshold_permille: u64,
        min_attempts: u64,
    ) -> Vec<((NodeId, NodeId), u64)> {
        let mut edges: std::collections::BTreeSet<(NodeId, NodeId)> =
            self.per_link.keys().copied().collect();
        edges.extend(self.per_link_dropped.keys().copied());
        edges
            .into_iter()
            .filter_map(|edge| {
                let delivered = self.per_link.get(&edge).map_or(0, |(n, _)| *n);
                let dropped = self.per_link_dropped.get(&edge).copied().unwrap_or(0);
                let total = delivered + dropped;
                if total < min_attempts.max(1) {
                    return None;
                }
                let permille = delivered.saturating_mul(1000) / total;
                (permille < threshold_permille).then_some((edge, permille))
            })
            .collect()
    }

    pub(crate) fn record_drop(&mut self, src: NodeId, dst: NodeId) {
        self.messages_dropped += 1;
        *self.per_link_dropped.entry((src, dst)).or_insert(0) += 1;
    }

    pub(crate) fn record_duplicate(&mut self) {
        self.messages_duplicated += 1;
    }

    /// `true` when every send is accounted for: messages delivered plus
    /// messages dropped plus messages still in flight equals messages sent
    /// plus injected duplicates. The chaos harness asserts this after
    /// every run.
    pub fn accounts_for_every_send(&self, in_flight: usize) -> bool {
        self.messages_delivered + self.messages_dropped + in_flight as u64
            == self.messages_sent + self.messages_duplicated
    }

    pub(crate) fn record_delivery(&mut self, src: NodeId, dst: NodeId, bytes: usize) {
        self.messages_delivered += 1;
        self.bytes_delivered += bytes as u64;
        let entry = self.per_link.entry((src, dst)).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record_send(10);
        s.record_send(20);
        s.record_drop(NodeId(1), NodeId(3));
        s.record_delivery(NodeId(1), NodeId(2), 10);
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.bytes_sent, 30);
        assert_eq!(s.bytes_delivered, 10);
        assert_eq!(s.per_link[&(NodeId(1), NodeId(2))], (1, 10));
        assert_eq!(s.per_link_dropped[&(NodeId(1), NodeId(3))], 1);
        assert!((s.delivery_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_ratio_is_one() {
        // Zero sends must not divide by zero: both ratios answer an
        // explicit 1.0 for untouched networks and untouched links.
        assert_eq!(NetStats::default().delivery_ratio(), 1.0);
        assert_eq!(
            NetStats::default().delivery_ratio_for(NodeId(1), NodeId(2)),
            1.0
        );
        // A link that only ever saw traffic elsewhere is still 1.0.
        let mut s = NetStats::default();
        s.record_send(4);
        s.record_delivery(NodeId(3), NodeId(4), 4);
        assert_eq!(s.delivery_ratio_for(NodeId(1), NodeId(2)), 1.0);
    }

    #[test]
    fn duplicates_balance_the_accounting() {
        let mut s = NetStats::default();
        // One send, duplicated once: both copies delivered.
        s.record_send(8);
        s.record_duplicate();
        s.record_delivery(NodeId(1), NodeId(2), 8);
        s.record_delivery(NodeId(1), NodeId(2), 8);
        assert_eq!(s.messages_duplicated, 1);
        assert!(s.accounts_for_every_send(0));
        // A second send still in flight keeps the books balanced only
        // when counted.
        s.record_send(8);
        assert!(!s.accounts_for_every_send(0));
        assert!(s.accounts_for_every_send(1));
        // Duplicate dropped at a crashed destination: drop + delivery
        // still cover send + duplicate.
        s.record_drop(NodeId(1), NodeId(2));
        assert!(s.accounts_for_every_send(0));
    }

    #[test]
    fn per_link_ratio_attributes_drops_to_their_link() {
        let mut s = NetStats::default();
        // Link 1→2: three delivered, one dropped. Link 1→3: clean.
        for _ in 0..4 {
            s.record_send(8);
        }
        s.record_delivery(NodeId(1), NodeId(2), 8);
        s.record_delivery(NodeId(1), NodeId(2), 8);
        s.record_delivery(NodeId(1), NodeId(2), 8);
        s.record_drop(NodeId(1), NodeId(2));
        s.record_send(8);
        s.record_delivery(NodeId(1), NodeId(3), 8);
        assert!((s.delivery_ratio_for(NodeId(1), NodeId(2)) - 0.75).abs() < 1e-9);
        assert_eq!(s.delivery_ratio_for(NodeId(1), NodeId(3)), 1.0);
        // The lossy link's drops do not bleed into the untouched reverse
        // direction.
        assert_eq!(s.delivery_ratio_for(NodeId(2), NodeId(1)), 1.0);
    }
}
