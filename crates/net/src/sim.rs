//! The discrete-event simulator core.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use mrom_value::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::NetworkConfig;
use crate::error::NetError;
use crate::stats::NetStats;
use crate::time::SimTime;

/// A message arriving at its destination node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Opaque payload (protocols encode [`mrom_value::wire`] buffers).
    pub payload: Vec<u8>,
}

/// In-flight message ordered by arrival time, with a sequence tie-breaker
/// for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    at: SimTime,
    seq: u64,
    src: NodeId,
    dst: NodeId,
    payload: Vec<u8>,
    /// When the message entered the wire — the telemetry window derives
    /// per-link virtual latency as `at - sent_at` at delivery time.
    sent_at: SimTime,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network: seeded, deterministic, FIFO per directed link.
///
/// Drive it by calling [`SimNet::send`] and then pumping [`SimNet::step`]
/// until it returns `None`; each step advances the virtual clock to the
/// next arrival.
#[derive(Debug)]
pub struct SimNet {
    config: NetworkConfig,
    nodes: BTreeSet<NodeId>,
    queue: BinaryHeap<Reverse<InFlight>>,
    /// Earliest legal next-arrival per directed link, enforcing FIFO
    /// (TCP-like) ordering even under jitter.
    link_front: BTreeMap<(NodeId, NodeId), SimTime>,
    /// Crashed nodes: sends to or from them are dropped, as are in-flight
    /// deliveries that arrive while the destination is down.
    down: BTreeSet<NodeId>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    stats: NetStats,
}

impl SimNet {
    /// Creates an empty network under `config`.
    pub fn new(config: NetworkConfig) -> SimNet {
        let rng = StdRng::seed_from_u64(config.seed());
        SimNet {
            config,
            nodes: BTreeSet::new(),
            queue: BinaryHeap::new(),
            link_front: BTreeMap::new(),
            down: BTreeSet::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng,
            stats: NetStats::default(),
        }
    }

    /// Registers a node.
    ///
    /// # Errors
    ///
    /// [`NetError::DuplicateNode`].
    pub fn add_node(&mut self, node: NodeId) -> Result<(), NetError> {
        if !self.nodes.insert(node) {
            return Err(NetError::DuplicateNode(node));
        }
        Ok(())
    }

    /// The registered nodes, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Mutable access to the live configuration (partitions can be toggled
    /// mid-run; new sends observe the change, in-flight messages do not).
    pub fn config_mut(&mut self) -> &mut NetworkConfig {
        &mut self.config
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Marks `node` as crashed. From now on messages sent to or from it
    /// are dropped (and counted), and in-flight messages arriving at it
    /// while it is down are dropped at delivery time. The node's queue of
    /// past deliveries is untouched — a crash loses volatile state at the
    /// *site* layer, not history at the network layer.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`].
    pub fn crash_node(&mut self, node: NodeId) -> Result<(), NetError> {
        if !self.nodes.contains(&node) {
            return Err(NetError::UnknownNode(node));
        }
        self.down.insert(node);
        Ok(())
    }

    /// Brings a crashed node back. Messages sent after the restart flow
    /// normally; anything dropped during the outage stays dropped.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`].
    pub fn restart_node(&mut self, node: NodeId) -> Result<(), NetError> {
        if !self.nodes.contains(&node) {
            return Err(NetError::UnknownNode(node));
        }
        self.down.remove(&node);
        Ok(())
    }

    /// Is `node` currently crashed?
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Sends `payload` from `src` to `dst`. Returns the scheduled arrival
    /// time, or `None` when the message was dropped (loss or partition) —
    /// the sender cannot tell, just like on a real network; the return
    /// value exists for tests and stats-free assertions.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] / [`NetError::SelfSend`].
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: Vec<u8>,
    ) -> Result<Option<SimTime>, NetError> {
        if !self.nodes.contains(&src) {
            return Err(NetError::UnknownNode(src));
        }
        if !self.nodes.contains(&dst) {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst {
            return Err(NetError::SelfSend(src));
        }
        self.stats.record_send(payload.len());
        mrom_obs::net_send();

        if self.down.contains(&src) || self.down.contains(&dst) {
            self.stats.record_drop(src, dst);
            mrom_obs::net_drop();
            mrom_obs::link_dropped(src, dst);
            return Ok(None);
        }
        if self.config.is_partitioned(src, dst) {
            self.stats.record_drop(src, dst);
            mrom_obs::net_drop();
            mrom_obs::link_dropped(src, dst);
            return Ok(None);
        }
        let link = self.config.link(src, dst);
        if link.loss() > 0.0 && self.rng.random::<f64>() < link.loss() {
            self.stats.record_drop(src, dst);
            mrom_obs::net_drop();
            mrom_obs::link_dropped(src, dst);
            return Ok(None);
        }

        let mut arrival = self.now + link.transfer_time(payload.len());
        if link.jitter_bound_us() > 0 {
            arrival += SimTime::from_micros(self.rng.random_range(0..=link.jitter_bound_us()));
        }
        // All fault draws are gated on a non-zero probability so that a
        // fault-free configuration consumes exactly the RNG stream it did
        // before these knobs existed (seeded runs stay reproducible).
        let hold_us = link.transfer_time(payload.len()).as_micros().max(1);
        if link.reorder() > 0.0 && self.rng.random::<f64>() < link.reorder() {
            // A reordered message is held back by the network and exempted
            // from the FIFO clamp below, so later sends on the same link
            // can overtake it.
            arrival += SimTime::from_micros(self.rng.random_range(1..=3 * hold_us));
        } else {
            // FIFO per directed link: never deliver before an earlier send
            // on the same link.
            let front = self.link_front.entry((src, dst)).or_insert(SimTime::ZERO);
            if arrival < *front {
                arrival = *front;
            }
            *front = arrival;
        }

        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            at: arrival,
            seq: self.seq,
            src,
            dst,
            payload: payload.clone(),
            sent_at: self.now,
        }));

        if link.duplication() > 0.0 && self.rng.random::<f64>() < link.duplication() {
            // A retransmitting transport delivers a second copy slightly
            // later; the copy does not advance the FIFO front.
            self.stats.record_duplicate();
            mrom_obs::net_duplicate();
            let lag = SimTime::from_micros(self.rng.random_range(1..=hold_us));
            self.seq += 1;
            self.queue.push(Reverse(InFlight {
                at: arrival + lag,
                seq: self.seq,
                src,
                dst,
                payload,
                sent_at: self.now,
            }));
        }
        Ok(Some(arrival))
    }

    /// Delivers the next in-flight message, advancing the clock to its
    /// arrival time. Returns `None` when the network is idle.
    pub fn step(&mut self) -> Option<Delivery> {
        loop {
            let Reverse(msg) = self.queue.pop()?;
            if let Some(d) = self.arrive(msg) {
                return Some(d);
            }
        }
    }

    /// Advances the clock to `msg.at` and either delivers it or, when the
    /// destination has crashed while it was on the wire, drops it at the
    /// dead socket.
    fn arrive(&mut self, msg: InFlight) -> Option<Delivery> {
        debug_assert!(msg.at >= self.now, "time cannot run backwards");
        self.now = msg.at;
        // Stamp the recorder's virtual clock before any event this
        // delivery triggers, so telemetry windows follow simulated time.
        mrom_obs::set_virtual_now_us(self.now.as_micros());
        if self.down.contains(&msg.dst) {
            self.stats.record_drop(msg.src, msg.dst);
            mrom_obs::net_drop();
            mrom_obs::link_dropped(msg.src, msg.dst);
            return None;
        }
        self.stats
            .record_delivery(msg.src, msg.dst, msg.payload.len());
        mrom_obs::net_deliver(msg.payload.len());
        mrom_obs::link_delivered(
            msg.src,
            msg.dst,
            msg.payload.len(),
            msg.at.saturating_sub(msg.sent_at).as_micros(),
        );
        Some(Delivery {
            at: msg.at,
            src: msg.src,
            dst: msg.dst,
            payload: msg.payload,
        })
    }

    /// Pumps deliveries through `handler` until the network is idle. The
    /// handler may send new messages (request/response protocols). Returns
    /// the number of deliveries processed.
    pub fn run<F>(&mut self, mut handler: F) -> usize
    where
        F: FnMut(&mut SimNet, Delivery),
    {
        let mut count = 0;
        while let Some(d) = self.step() {
            count += 1;
            handler(self, d);
        }
        count
    }

    /// Advances the clock to `t` without delivering anything scheduled
    /// after `t`; returns deliveries due at or before `t`, in order.
    pub fn run_until(&mut self, t: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > t {
                break;
            }
            let Reverse(msg) = self.queue.pop().expect("peeked");
            // `arrive` returns `None` for messages swallowed by a crashed
            // destination; they consume queue slots but produce nothing.
            if let Some(d) = self.arrive(msg) {
                out.push(d);
            }
        }
        if self.now < t {
            self.now = t;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;

    fn three_node_net(seed: u64) -> SimNet {
        let cfg = NetworkConfig::new(seed).with_default_link(
            LinkConfig::new()
                .latency_us(1_000)
                .bandwidth_bytes_per_sec(1_000_000),
        );
        let mut net = SimNet::new(cfg);
        for n in 1..=3 {
            net.add_node(NodeId(n)).unwrap();
        }
        net
    }

    #[test]
    fn delivery_time_is_latency_plus_serialization() {
        let mut net = three_node_net(1);
        net.send(NodeId(1), NodeId(2), vec![0u8; 1_000]).unwrap();
        let d = net.step().unwrap();
        assert_eq!(d.at.as_micros(), 2_000); // 1 ms latency + 1 ms at 1 MB/s
        assert_eq!(net.now(), d.at);
    }

    #[test]
    fn send_validates_endpoints() {
        let mut net = three_node_net(1);
        assert_eq!(
            net.send(NodeId(9), NodeId(1), vec![]),
            Err(NetError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            net.send(NodeId(1), NodeId(9), vec![]),
            Err(NetError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            net.send(NodeId(1), NodeId(1), vec![]),
            Err(NetError::SelfSend(NodeId(1)))
        );
        assert!(matches!(
            net.add_node(NodeId(1)),
            Err(NetError::DuplicateNode(_))
        ));
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let mut net = three_node_net(2);
        // Big message first, then a small one on a *different* link; the
        // small one arrives earlier.
        net.send(NodeId(1), NodeId(2), vec![0u8; 100_000]).unwrap();
        net.send(NodeId(1), NodeId(3), vec![0u8; 10]).unwrap();
        let first = net.step().unwrap();
        let second = net.step().unwrap();
        assert_eq!(first.dst, NodeId(3));
        assert_eq!(second.dst, NodeId(2));
        assert!(first.at <= second.at);
        assert!(net.step().is_none());
    }

    #[test]
    fn same_link_is_fifo_even_when_sizes_differ() {
        let mut net = three_node_net(3);
        net.send(NodeId(1), NodeId(2), vec![0u8; 100_000]).unwrap();
        net.send(NodeId(1), NodeId(2), vec![0u8; 1]).unwrap();
        let first = net.step().unwrap();
        let second = net.step().unwrap();
        assert_eq!(first.payload.len(), 100_000, "FIFO: first sent, first out");
        assert_eq!(second.payload.len(), 1);
        assert!(second.at >= first.at);
    }

    #[test]
    fn partitions_drop_messages() {
        let mut net = three_node_net(4);
        net.config_mut().partition(NodeId(1), NodeId(2));
        assert_eq!(net.send(NodeId(1), NodeId(2), vec![1]).unwrap(), None);
        assert_eq!(net.send(NodeId(2), NodeId(1), vec![1]).unwrap(), None);
        // The unrelated link still works.
        assert!(net.send(NodeId(1), NodeId(3), vec![1]).unwrap().is_some());
        assert_eq!(net.stats().messages_dropped, 2);
        net.config_mut().heal(NodeId(1), NodeId(2));
        assert!(net.send(NodeId(1), NodeId(2), vec![1]).unwrap().is_some());
    }

    #[test]
    fn lossy_links_drop_roughly_the_configured_fraction() {
        let cfg = NetworkConfig::new(7).with_default_link(LinkConfig::new().loss_probability(0.3));
        let mut net = SimNet::new(cfg);
        net.add_node(NodeId(1)).unwrap();
        net.add_node(NodeId(2)).unwrap();
        for _ in 0..2_000 {
            net.send(NodeId(1), NodeId(2), vec![0]).unwrap();
        }
        let dropped = net.stats().messages_dropped as f64 / 2_000.0;
        assert!((dropped - 0.3).abs() < 0.05, "drop rate {dropped}");
    }

    #[test]
    fn identical_seeds_identical_schedules() {
        let run = |seed| {
            let cfg = NetworkConfig::new(seed)
                .with_default_link(LinkConfig::new().jitter_us(5_000).loss_probability(0.1));
            let mut net = SimNet::new(cfg);
            net.add_node(NodeId(1)).unwrap();
            net.add_node(NodeId(2)).unwrap();
            let mut arrivals = Vec::new();
            for i in 0..100u8 {
                net.send(NodeId(1), NodeId(2), vec![i]).unwrap();
            }
            while let Some(d) = net.step() {
                arrivals.push((d.at, d.payload));
            }
            arrivals
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn run_pumps_request_response() {
        let mut net = three_node_net(5);
        net.send(NodeId(1), NodeId(2), b"ping".to_vec()).unwrap();
        let delivered = net.run(|net, d| {
            if d.payload == b"ping" {
                net.send(d.dst, d.src, b"pong".to_vec()).unwrap();
            }
        });
        assert_eq!(delivered, 2);
        assert_eq!(net.stats().messages_delivered, 2);
    }

    #[test]
    fn run_until_respects_the_horizon() {
        let mut net = three_node_net(6);
        net.send(NodeId(1), NodeId(2), vec![0u8; 10]).unwrap(); // ~1ms
        net.send(NodeId(1), NodeId(3), vec![0u8; 3_000_000])
            .unwrap(); // ~3s
        let early = net.run_until(SimTime::from_millis(100));
        assert_eq!(early.len(), 1);
        assert_eq!(net.now(), SimTime::from_millis(100));
        assert_eq!(net.in_flight(), 1);
        let late = net.run_until(SimTime::from_secs(10));
        assert_eq!(late.len(), 1);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let cfg =
            NetworkConfig::new(21).with_default_link(LinkConfig::new().duplicate_probability(1.0));
        let mut net = SimNet::new(cfg);
        net.add_node(NodeId(1)).unwrap();
        net.add_node(NodeId(2)).unwrap();
        for i in 0..10u8 {
            net.send(NodeId(1), NodeId(2), vec![i]).unwrap();
        }
        let mut delivered = 0;
        while net.step().is_some() {
            delivered += 1;
        }
        assert_eq!(delivered, 20, "every message arrives twice");
        assert_eq!(net.stats().messages_duplicated, 10);
        assert_eq!(net.stats().messages_sent, 10);
        assert!(net.stats().accounts_for_every_send(net.in_flight()));
    }

    #[test]
    fn reordering_breaks_fifo() {
        let cfg =
            NetworkConfig::new(22).with_default_link(LinkConfig::new().reorder_probability(0.5));
        let mut net = SimNet::new(cfg);
        net.add_node(NodeId(1)).unwrap();
        net.add_node(NodeId(2)).unwrap();
        for i in 0..50u8 {
            net.send(NodeId(1), NodeId(2), vec![i]).unwrap();
        }
        let mut order = Vec::new();
        while let Some(d) = net.step() {
            order.push(d.payload[0]);
        }
        assert_eq!(order.len(), 50, "reordering never loses messages");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(order, sorted, "half the traffic held back must shuffle");
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn crashed_nodes_drop_traffic_until_restart() {
        let mut net = three_node_net(23);
        // One message already on the wire when the destination crashes.
        net.send(NodeId(1), NodeId(2), vec![1]).unwrap();
        net.crash_node(NodeId(2)).unwrap();
        assert!(net.is_down(NodeId(2)));
        // Sends to and from a crashed node are dropped at the source.
        assert_eq!(net.send(NodeId(1), NodeId(2), vec![2]).unwrap(), None);
        assert_eq!(net.send(NodeId(2), NodeId(3), vec![3]).unwrap(), None);
        // Unrelated links are unaffected.
        assert!(net.send(NodeId(1), NodeId(3), vec![4]).unwrap().is_some());
        // Pumping delivers only the 1→3 message: the in-flight 1→2 message
        // arrives at a dead socket and is dropped there.
        let mut delivered = Vec::new();
        while let Some(d) = net.step() {
            delivered.push(d.dst);
        }
        assert_eq!(delivered, vec![NodeId(3)]);
        assert_eq!(net.stats().messages_dropped, 3);
        assert!(net.stats().accounts_for_every_send(net.in_flight()));
        // After restart the link works again.
        net.restart_node(NodeId(2)).unwrap();
        assert!(!net.is_down(NodeId(2)));
        assert!(net.send(NodeId(1), NodeId(2), vec![5]).unwrap().is_some());
        assert_eq!(net.step().unwrap().dst, NodeId(2));
        assert!(matches!(
            net.crash_node(NodeId(9)),
            Err(NetError::UnknownNode(_))
        ));
        assert!(matches!(
            net.restart_node(NodeId(9)),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn run_until_skips_crashed_destinations_within_horizon() {
        let mut net = three_node_net(24);
        net.send(NodeId(1), NodeId(2), vec![1]).unwrap();
        net.send(NodeId(1), NodeId(3), vec![2]).unwrap();
        net.crash_node(NodeId(2)).unwrap();
        let out = net.run_until(SimTime::from_secs(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, NodeId(3));
        assert_eq!(net.stats().messages_dropped, 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |seed| {
            let cfg = NetworkConfig::new(seed).with_default_link(
                LinkConfig::new()
                    .jitter_us(2_000)
                    .loss_probability(0.1)
                    .duplicate_probability(0.2)
                    .reorder_probability(0.3),
            );
            let mut net = SimNet::new(cfg);
            net.add_node(NodeId(1)).unwrap();
            net.add_node(NodeId(2)).unwrap();
            for i in 0..100u8 {
                net.send(NodeId(1), NodeId(2), vec![i]).unwrap();
            }
            let mut arrivals = Vec::new();
            while let Some(d) = net.step() {
                arrivals.push((d.at, d.payload));
            }
            (arrivals, net.stats().clone())
        };
        assert_eq!(run(31), run(31));
        assert_ne!(run(31), run(32));
        let (_, stats) = run(31);
        assert!(stats.accounts_for_every_send(0));
    }

    #[test]
    fn stats_track_links() {
        let mut net = three_node_net(8);
        net.send(NodeId(1), NodeId(2), vec![0u8; 7]).unwrap();
        net.send(NodeId(1), NodeId(2), vec![0u8; 3]).unwrap();
        net.send(NodeId(2), NodeId(3), vec![0u8; 5]).unwrap();
        while net.step().is_some() {}
        let s = net.stats();
        assert_eq!(s.per_link[&(NodeId(1), NodeId(2))], (2, 10));
        assert_eq!(s.per_link[&(NodeId(2), NodeId(3))], (1, 5));
        assert_eq!(s.bytes_delivered, 15);
        assert_eq!(s.delivery_ratio(), 1.0);
    }
}
