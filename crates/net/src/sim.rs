//! The discrete-event simulator core.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use mrom_value::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::NetworkConfig;
use crate::error::NetError;
use crate::stats::NetStats;
use crate::time::SimTime;

/// A message arriving at its destination node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Opaque payload (protocols encode [`mrom_value::wire`] buffers).
    pub payload: Vec<u8>,
}

/// In-flight message ordered by arrival time, with a sequence tie-breaker
/// for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    at: SimTime,
    seq: u64,
    src: NodeId,
    dst: NodeId,
    payload: Vec<u8>,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network: seeded, deterministic, FIFO per directed link.
///
/// Drive it by calling [`SimNet::send`] and then pumping [`SimNet::step`]
/// until it returns `None`; each step advances the virtual clock to the
/// next arrival.
#[derive(Debug)]
pub struct SimNet {
    config: NetworkConfig,
    nodes: BTreeSet<NodeId>,
    queue: BinaryHeap<Reverse<InFlight>>,
    /// Earliest legal next-arrival per directed link, enforcing FIFO
    /// (TCP-like) ordering even under jitter.
    link_front: BTreeMap<(NodeId, NodeId), SimTime>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    stats: NetStats,
}

impl SimNet {
    /// Creates an empty network under `config`.
    pub fn new(config: NetworkConfig) -> SimNet {
        let rng = StdRng::seed_from_u64(config.seed());
        SimNet {
            config,
            nodes: BTreeSet::new(),
            queue: BinaryHeap::new(),
            link_front: BTreeMap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng,
            stats: NetStats::default(),
        }
    }

    /// Registers a node.
    ///
    /// # Errors
    ///
    /// [`NetError::DuplicateNode`].
    pub fn add_node(&mut self, node: NodeId) -> Result<(), NetError> {
        if !self.nodes.insert(node) {
            return Err(NetError::DuplicateNode(node));
        }
        Ok(())
    }

    /// The registered nodes, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Mutable access to the live configuration (partitions can be toggled
    /// mid-run; new sends observe the change, in-flight messages do not).
    pub fn config_mut(&mut self) -> &mut NetworkConfig {
        &mut self.config
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Sends `payload` from `src` to `dst`. Returns the scheduled arrival
    /// time, or `None` when the message was dropped (loss or partition) —
    /// the sender cannot tell, just like on a real network; the return
    /// value exists for tests and stats-free assertions.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] / [`NetError::SelfSend`].
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: Vec<u8>,
    ) -> Result<Option<SimTime>, NetError> {
        if !self.nodes.contains(&src) {
            return Err(NetError::UnknownNode(src));
        }
        if !self.nodes.contains(&dst) {
            return Err(NetError::UnknownNode(dst));
        }
        if src == dst {
            return Err(NetError::SelfSend(src));
        }
        self.stats.record_send(payload.len());
        mrom_obs::net_send();

        if self.config.is_partitioned(src, dst) {
            self.stats.record_drop(src, dst);
            mrom_obs::net_drop();
            return Ok(None);
        }
        let link = self.config.link(src, dst);
        if link.loss() > 0.0 && self.rng.random::<f64>() < link.loss() {
            self.stats.record_drop(src, dst);
            mrom_obs::net_drop();
            return Ok(None);
        }

        let mut arrival = self.now + link.transfer_time(payload.len());
        if link.jitter_bound_us() > 0 {
            arrival += SimTime::from_micros(self.rng.random_range(0..=link.jitter_bound_us()));
        }
        // FIFO per directed link: never deliver before an earlier send on
        // the same link.
        let front = self.link_front.entry((src, dst)).or_insert(SimTime::ZERO);
        if arrival < *front {
            arrival = *front;
        }
        *front = arrival;

        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            at: arrival,
            seq: self.seq,
            src,
            dst,
            payload,
        }));
        Ok(Some(arrival))
    }

    /// Delivers the next in-flight message, advancing the clock to its
    /// arrival time. Returns `None` when the network is idle.
    pub fn step(&mut self) -> Option<Delivery> {
        let Reverse(msg) = self.queue.pop()?;
        debug_assert!(msg.at >= self.now, "time cannot run backwards");
        self.now = msg.at;
        self.stats
            .record_delivery(msg.src, msg.dst, msg.payload.len());
        mrom_obs::net_deliver(msg.payload.len());
        Some(Delivery {
            at: msg.at,
            src: msg.src,
            dst: msg.dst,
            payload: msg.payload,
        })
    }

    /// Pumps deliveries through `handler` until the network is idle. The
    /// handler may send new messages (request/response protocols). Returns
    /// the number of deliveries processed.
    pub fn run<F>(&mut self, mut handler: F) -> usize
    where
        F: FnMut(&mut SimNet, Delivery),
    {
        let mut count = 0;
        while let Some(d) = self.step() {
            count += 1;
            handler(self, d);
        }
        count
    }

    /// Advances the clock to `t` without delivering anything scheduled
    /// after `t`; returns deliveries due at or before `t`, in order.
    pub fn run_until(&mut self, t: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > t {
                break;
            }
            out.push(self.step().expect("peeked"));
        }
        if self.now < t {
            self.now = t;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;

    fn three_node_net(seed: u64) -> SimNet {
        let cfg = NetworkConfig::new(seed).with_default_link(
            LinkConfig::new()
                .latency_us(1_000)
                .bandwidth_bytes_per_sec(1_000_000),
        );
        let mut net = SimNet::new(cfg);
        for n in 1..=3 {
            net.add_node(NodeId(n)).unwrap();
        }
        net
    }

    #[test]
    fn delivery_time_is_latency_plus_serialization() {
        let mut net = three_node_net(1);
        net.send(NodeId(1), NodeId(2), vec![0u8; 1_000]).unwrap();
        let d = net.step().unwrap();
        assert_eq!(d.at.as_micros(), 2_000); // 1 ms latency + 1 ms at 1 MB/s
        assert_eq!(net.now(), d.at);
    }

    #[test]
    fn send_validates_endpoints() {
        let mut net = three_node_net(1);
        assert_eq!(
            net.send(NodeId(9), NodeId(1), vec![]),
            Err(NetError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            net.send(NodeId(1), NodeId(9), vec![]),
            Err(NetError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            net.send(NodeId(1), NodeId(1), vec![]),
            Err(NetError::SelfSend(NodeId(1)))
        );
        assert!(matches!(
            net.add_node(NodeId(1)),
            Err(NetError::DuplicateNode(_))
        ));
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let mut net = three_node_net(2);
        // Big message first, then a small one on a *different* link; the
        // small one arrives earlier.
        net.send(NodeId(1), NodeId(2), vec![0u8; 100_000]).unwrap();
        net.send(NodeId(1), NodeId(3), vec![0u8; 10]).unwrap();
        let first = net.step().unwrap();
        let second = net.step().unwrap();
        assert_eq!(first.dst, NodeId(3));
        assert_eq!(second.dst, NodeId(2));
        assert!(first.at <= second.at);
        assert!(net.step().is_none());
    }

    #[test]
    fn same_link_is_fifo_even_when_sizes_differ() {
        let mut net = three_node_net(3);
        net.send(NodeId(1), NodeId(2), vec![0u8; 100_000]).unwrap();
        net.send(NodeId(1), NodeId(2), vec![0u8; 1]).unwrap();
        let first = net.step().unwrap();
        let second = net.step().unwrap();
        assert_eq!(first.payload.len(), 100_000, "FIFO: first sent, first out");
        assert_eq!(second.payload.len(), 1);
        assert!(second.at >= first.at);
    }

    #[test]
    fn partitions_drop_messages() {
        let mut net = three_node_net(4);
        net.config_mut().partition(NodeId(1), NodeId(2));
        assert_eq!(net.send(NodeId(1), NodeId(2), vec![1]).unwrap(), None);
        assert_eq!(net.send(NodeId(2), NodeId(1), vec![1]).unwrap(), None);
        // The unrelated link still works.
        assert!(net.send(NodeId(1), NodeId(3), vec![1]).unwrap().is_some());
        assert_eq!(net.stats().messages_dropped, 2);
        net.config_mut().heal(NodeId(1), NodeId(2));
        assert!(net.send(NodeId(1), NodeId(2), vec![1]).unwrap().is_some());
    }

    #[test]
    fn lossy_links_drop_roughly_the_configured_fraction() {
        let cfg = NetworkConfig::new(7).with_default_link(LinkConfig::new().loss_probability(0.3));
        let mut net = SimNet::new(cfg);
        net.add_node(NodeId(1)).unwrap();
        net.add_node(NodeId(2)).unwrap();
        for _ in 0..2_000 {
            net.send(NodeId(1), NodeId(2), vec![0]).unwrap();
        }
        let dropped = net.stats().messages_dropped as f64 / 2_000.0;
        assert!((dropped - 0.3).abs() < 0.05, "drop rate {dropped}");
    }

    #[test]
    fn identical_seeds_identical_schedules() {
        let run = |seed| {
            let cfg = NetworkConfig::new(seed)
                .with_default_link(LinkConfig::new().jitter_us(5_000).loss_probability(0.1));
            let mut net = SimNet::new(cfg);
            net.add_node(NodeId(1)).unwrap();
            net.add_node(NodeId(2)).unwrap();
            let mut arrivals = Vec::new();
            for i in 0..100u8 {
                net.send(NodeId(1), NodeId(2), vec![i]).unwrap();
            }
            while let Some(d) = net.step() {
                arrivals.push((d.at, d.payload));
            }
            arrivals
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn run_pumps_request_response() {
        let mut net = three_node_net(5);
        net.send(NodeId(1), NodeId(2), b"ping".to_vec()).unwrap();
        let delivered = net.run(|net, d| {
            if d.payload == b"ping" {
                net.send(d.dst, d.src, b"pong".to_vec()).unwrap();
            }
        });
        assert_eq!(delivered, 2);
        assert_eq!(net.stats().messages_delivered, 2);
    }

    #[test]
    fn run_until_respects_the_horizon() {
        let mut net = three_node_net(6);
        net.send(NodeId(1), NodeId(2), vec![0u8; 10]).unwrap(); // ~1ms
        net.send(NodeId(1), NodeId(3), vec![0u8; 3_000_000])
            .unwrap(); // ~3s
        let early = net.run_until(SimTime::from_millis(100));
        assert_eq!(early.len(), 1);
        assert_eq!(net.now(), SimTime::from_millis(100));
        assert_eq!(net.in_flight(), 1);
        let late = net.run_until(SimTime::from_secs(10));
        assert_eq!(late.len(), 1);
    }

    #[test]
    fn stats_track_links() {
        let mut net = three_node_net(8);
        net.send(NodeId(1), NodeId(2), vec![0u8; 7]).unwrap();
        net.send(NodeId(1), NodeId(2), vec![0u8; 3]).unwrap();
        net.send(NodeId(2), NodeId(3), vec![0u8; 5]).unwrap();
        while net.step().is_some() {}
        let s = net.stats();
        assert_eq!(s.per_link[&(NodeId(1), NodeId(2))], (2, 10));
        assert_eq!(s.per_link[&(NodeId(2), NodeId(3))], (1, 5));
        assert_eq!(s.bytes_delivered, 15);
        assert_eq!(s.delivery_ratio(), 1.0);
    }
}
