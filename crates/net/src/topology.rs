//! Parameterized fleet topologies: the wiring diagrams the `mrom-fleet`
//! harness lays over [`SimNet`](crate::SimNet).
//!
//! A [`Topology`] is a pure function from a site count to an edge list —
//! no RNG, no I/O — so the same shape always produces the same wiring
//! and the fleet harness stays byte-deterministic per seed. Each edge
//! carries a [`LinkTier`] naming the link profile it should run over:
//! `Local` edges model an intra-vicinity LAN, `Backbone` edges the
//! higher-latency trunk between vicinity heads (the paper's
//! "geographical dispersion" axis).

use mrom_value::NodeId;

use crate::config::LinkConfig;

/// Which class of wire an edge runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkTier {
    /// Intra-vicinity LAN hop (low latency, high bandwidth).
    Local,
    /// Inter-vicinity trunk (an order of magnitude more latency).
    Backbone,
}

impl LinkTier {
    /// The deterministic link profile for this tier. Neither profile
    /// carries jitter or fault probabilities — faults are injected by
    /// the harness, not baked into the wiring — so a fault-free run
    /// consumes no RNG draws regardless of topology.
    #[must_use]
    pub fn link(self) -> LinkConfig {
        match self {
            LinkTier::Local => LinkConfig::lan(),
            LinkTier::Backbone => LinkConfig::new()
                .latency_us(20_000)
                .bandwidth_bytes_per_sec(1_000_000),
        }
    }
}

/// One undirected edge of a topology: link `a` and `b` over `tier`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyEdge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// The wire class the edge runs over.
    pub tier: LinkTier,
}

/// A parameterized wiring shape over sites numbered `1..=n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every site links to site 1 (the hub). One hop to the hub, two
    /// between spokes; the hub is a single point of congestion.
    Star,
    /// A ring with `degree` chords per site: site `i` links to
    /// `i+1 ..= i+degree` (mod n). `degree >= n-1` degenerates to a
    /// full mesh.
    Mesh {
        /// Forward neighbours per site (clamped to ≥ 1).
        degree: usize,
    },
    /// Two-level vicinity hierarchy: consecutive sites form clusters of
    /// `cluster_size`, every member links to its cluster head over a
    /// `Local` edge, and every head links to the first head over a
    /// `Backbone` edge.
    Hierarchical {
        /// Sites per vicinity (clamped to ≥ 2).
        cluster_size: usize,
    },
}

impl Topology {
    /// A stable display name (used in reports and CLI output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Topology::Star => "star",
            Topology::Mesh { .. } => "mesh",
            Topology::Hierarchical { .. } => "hierarchical",
        }
    }

    /// Parses a CLI spelling: `star`, `mesh`, `mesh:<degree>`, `hier`,
    /// `hierarchical`, or `hier:<cluster_size>`.
    #[must_use]
    pub fn parse(spec: &str) -> Option<Topology> {
        let (kind, param) = match spec.split_once(':') {
            Some((k, p)) => (k, p.parse::<usize>().ok()?),
            None => (spec, 0),
        };
        match kind {
            "star" => Some(Topology::Star),
            "mesh" => Some(Topology::Mesh {
                degree: if param == 0 { 2 } else { param },
            }),
            "hier" | "hierarchical" => Some(Topology::Hierarchical {
                cluster_size: if param == 0 { 32 } else { param },
            }),
            _ => None,
        }
    }

    /// The site identifiers of an `n`-site fleet: nodes `1..=n`.
    #[must_use]
    pub fn sites(n: usize) -> Vec<NodeId> {
        (1..=n as u64).map(NodeId).collect()
    }

    /// The edge list for `n` sites, in a stable order with no duplicate
    /// pairs. Every returned graph is connected for `n >= 1`.
    #[must_use]
    pub fn edges(self, n: usize) -> Vec<TopologyEdge> {
        let mut out = Vec::new();
        if n < 2 {
            return out;
        }
        match self {
            Topology::Star => {
                let hub = NodeId(1);
                for spoke in 2..=n as u64 {
                    out.push(TopologyEdge {
                        a: hub,
                        b: NodeId(spoke),
                        tier: LinkTier::Local,
                    });
                }
            }
            Topology::Mesh { degree } => {
                let degree = degree.clamp(1, n - 1);
                // Ring + chords; wrap-around repeats unordered pairs at
                // small n, so dedup through a set.
                let mut seen = std::collections::BTreeSet::new();
                for i in 0..n as u64 {
                    for k in 1..=degree as u64 {
                        let j = (i + k) % n as u64;
                        let pair = (i.min(j) + 1, i.max(j) + 1);
                        if seen.insert(pair) {
                            out.push(TopologyEdge {
                                a: NodeId(pair.0),
                                b: NodeId(pair.1),
                                tier: LinkTier::Local,
                            });
                        }
                    }
                }
            }
            Topology::Hierarchical { cluster_size } => {
                let cluster_size = cluster_size.max(2);
                let first_head = NodeId(1);
                for start in (0..n).step_by(cluster_size) {
                    let head = NodeId(start as u64 + 1);
                    for member in start + 1..(start + cluster_size).min(n) {
                        out.push(TopologyEdge {
                            a: head,
                            b: NodeId(member as u64 + 1),
                            tier: LinkTier::Local,
                        });
                    }
                    if head != first_head {
                        out.push(TopologyEdge {
                            a: first_head,
                            b: head,
                            tier: LinkTier::Backbone,
                        });
                    }
                }
            }
        }
        out
    }

    /// The sites a given site is directly wired to, in ascending order.
    /// The fleet workload draws callers from this set (plus the site
    /// itself), so traffic always flows over negotiated links.
    #[must_use]
    pub fn neighbors(self, n: usize, site: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .edges(n)
            .into_iter()
            .filter_map(|e| {
                if e.a == site {
                    Some(e.b)
                } else if e.b == site {
                    Some(e.a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Structurally load-bearing sites (the star hub, vicinity heads):
    /// the churn injector spares these so a crash degrades a vicinity
    /// instead of partitioning the whole fleet.
    #[must_use]
    pub fn core_sites(self, n: usize) -> Vec<NodeId> {
        match self {
            Topology::Star => vec![NodeId(1)],
            Topology::Mesh { .. } => Vec::new(),
            Topology::Hierarchical { cluster_size } => {
                let cluster_size = cluster_size.max(2);
                (0..n)
                    .step_by(cluster_size)
                    .map(|start| NodeId(start as u64 + 1))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    /// Union-find-free connectivity check via BFS over the edge list.
    fn is_connected(n: usize, edges: &[TopologyEdge]) -> bool {
        let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for e in edges {
            adj.entry(e.a).or_default().push(e.b);
            adj.entry(e.b).or_default().push(e.a);
        }
        let mut seen = BTreeSet::new();
        let mut queue = vec![NodeId(1)];
        while let Some(v) = queue.pop() {
            if seen.insert(v) {
                queue.extend(adj.get(&v).into_iter().flatten().copied());
            }
        }
        seen.len() == n
    }

    fn no_duplicate_pairs(edges: &[TopologyEdge]) -> bool {
        let mut seen = BTreeSet::new();
        edges.iter().all(|e| {
            let key = if e.a <= e.b { (e.a, e.b) } else { (e.b, e.a) };
            e.a != e.b && seen.insert(key)
        })
    }

    #[test]
    fn star_connects_every_spoke_to_the_hub() {
        let edges = Topology::Star.edges(50);
        assert_eq!(edges.len(), 49);
        assert!(edges.iter().all(|e| e.a == NodeId(1)));
        assert!(is_connected(50, &edges));
        assert!(no_duplicate_pairs(&edges));
    }

    #[test]
    fn mesh_is_connected_and_duplicate_free() {
        for n in [2usize, 3, 5, 8, 40] {
            for degree in [1usize, 2, 3, 50] {
                let edges = Topology::Mesh { degree }.edges(n);
                assert!(is_connected(n, &edges), "mesh n={n} degree={degree}");
                assert!(no_duplicate_pairs(&edges), "mesh n={n} degree={degree}");
            }
        }
        // degree >= n-1 is the full mesh.
        assert_eq!(Topology::Mesh { degree: 9 }.edges(5).len(), 5 * 4 / 2);
    }

    #[test]
    fn hierarchy_has_local_clusters_and_a_backbone() {
        let topo = Topology::Hierarchical { cluster_size: 4 };
        let edges = topo.edges(10);
        assert!(is_connected(10, &edges));
        assert!(no_duplicate_pairs(&edges));
        let backbone: Vec<_> = edges
            .iter()
            .filter(|e| e.tier == LinkTier::Backbone)
            .collect();
        // Clusters {1..4} {5..8} {9,10}: two trunk links back to head 1.
        assert_eq!(backbone.len(), 2);
        assert_eq!(topo.core_sites(10), vec![NodeId(1), NodeId(5), NodeId(9)]);
    }

    #[test]
    fn neighbors_follow_the_edge_list() {
        let topo = Topology::Mesh { degree: 2 };
        let nbrs = topo.neighbors(6, NodeId(1));
        assert_eq!(nbrs, vec![NodeId(2), NodeId(3), NodeId(5), NodeId(6)]);
        assert_eq!(Topology::Star.neighbors(5, NodeId(3)), vec![NodeId(1)]);
    }

    #[test]
    fn edges_are_stable_across_calls() {
        for topo in [
            Topology::Star,
            Topology::Mesh { degree: 3 },
            Topology::Hierarchical { cluster_size: 8 },
        ] {
            assert_eq!(topo.edges(33), topo.edges(33));
        }
    }

    #[test]
    fn parse_covers_the_cli_spellings() {
        assert_eq!(Topology::parse("star"), Some(Topology::Star));
        assert_eq!(
            Topology::parse("mesh:4"),
            Some(Topology::Mesh { degree: 4 })
        );
        assert_eq!(
            Topology::parse("hier:16"),
            Some(Topology::Hierarchical { cluster_size: 16 })
        );
        assert_eq!(
            Topology::parse("hierarchical"),
            Some(Topology::Hierarchical { cluster_size: 32 })
        );
        assert_eq!(Topology::parse("tree"), None);
        assert_eq!(Topology::parse("mesh:x"), None);
    }
}
