//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in microseconds since simulation
/// start.
///
/// Newtype over `u64` so simulated instants can never be confused with
/// wall-clock values or plain counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// A time `us` microseconds after the epoch.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// A time `ms` milliseconds after the epoch.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// A time `s` seconds after the epoch.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis(), 1);
        assert!((SimTime::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(3);
        assert_eq!(a + b, SimTime::from_micros(13));
        assert_eq!(a - b, SimTime::from_micros(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_micros(13));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5us");
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
