//! Live in-process transport: real threads, real channels.
//!
//! The discrete-event simulator ([`crate::SimNet`]) gives deterministic
//! timing for experiments; this module gives *real concurrency* for
//! validating that the whole stack — migration images, protocol buffers,
//! object runtimes — is `Send` and behaves under genuine parallelism, the
//! way the paper's Java/RMI deployment did. Each node handle owns a
//! crossbeam receiver and can be moved onto its own thread; traffic
//! accounting is shared behind a [`parking_lot::Mutex`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use mrom_value::NodeId;
use parking_lot::Mutex;

use crate::error::NetError;
use crate::stats::NetStats;

/// A message as seen by a receiving live node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveDelivery {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node (always the handle's own node).
    pub dst: NodeId,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// One node's endpoint in a live cluster. `Send`, so it can be moved onto
/// a thread; the cluster stays alive as long as any handle does.
#[derive(Debug)]
pub struct LiveNode {
    node: NodeId,
    peers: Arc<BTreeMap<NodeId, Sender<LiveDelivery>>>,
    inbox: Receiver<LiveDelivery>,
    stats: Arc<Mutex<NetStats>>,
}

impl LiveNode {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `payload` to `dst`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] for nodes outside the cluster and
    /// [`NetError::SelfSend`] for loopback. A peer whose handle was
    /// dropped counts the message as dropped (like a dead host).
    pub fn send(&self, dst: NodeId, payload: Vec<u8>) -> Result<(), NetError> {
        if dst == self.node {
            return Err(NetError::SelfSend(dst));
        }
        let tx = self.peers.get(&dst).ok_or(NetError::UnknownNode(dst))?;
        let bytes = payload.len();
        let msg = LiveDelivery {
            src: self.node,
            dst,
            payload,
        };
        let mut stats = self.stats.lock();
        stats.record_send(bytes);
        if tx.send(msg).is_ok() {
            stats.record_delivery(self.node, dst, bytes);
        } else {
            stats.record_drop(self.node, dst);
        }
        Ok(())
    }

    /// Blocks until a message arrives; `None` when every peer handle has
    /// been dropped (cluster shutdown).
    pub fn recv(&self) -> Option<LiveDelivery> {
        self.inbox.recv().ok()
    }

    /// Waits up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<LiveDelivery> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<LiveDelivery> {
        self.inbox.try_recv().ok()
    }

    /// A snapshot of the cluster-wide traffic counters.
    pub fn stats_snapshot(&self) -> NetStats {
        self.stats.lock().clone()
    }
}

/// Builds a fully connected live cluster over the given nodes, returning
/// one [`LiveNode`] handle per node (in input order).
///
/// # Errors
///
/// [`NetError::DuplicateNode`] on repeated ids.
///
/// # Example
///
/// ```
/// use mrom_net::live_cluster;
/// use mrom_value::NodeId;
///
/// # fn main() -> Result<(), mrom_net::NetError> {
/// let mut handles = live_cluster(&[NodeId(1), NodeId(2)])?;
/// let b = handles.pop().unwrap();
/// let a = handles.pop().unwrap();
/// let t = std::thread::spawn(move || b.recv().unwrap().payload);
/// a.send(NodeId(2), b"across threads".to_vec())?;
/// assert_eq!(t.join().unwrap(), b"across threads");
/// # Ok(())
/// # }
/// ```
pub fn live_cluster(nodes: &[NodeId]) -> Result<Vec<LiveNode>, NetError> {
    let mut senders = BTreeMap::new();
    let mut receivers = Vec::with_capacity(nodes.len());
    for &n in nodes {
        let (tx, rx) = unbounded();
        if senders.insert(n, tx).is_some() {
            return Err(NetError::DuplicateNode(n));
        }
        receivers.push((n, rx));
    }
    let peers = Arc::new(senders);
    let stats = Arc::new(Mutex::new(NetStats::default()));
    Ok(receivers
        .into_iter()
        .map(|(node, inbox)| LiveNode {
            node,
            peers: Arc::clone(&peers),
            inbox,
            stats: Arc::clone(&stats),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn cluster_validates_nodes() {
        assert!(matches!(
            live_cluster(&[NodeId(1), NodeId(1)]),
            Err(NetError::DuplicateNode(_))
        ));
        let handles = live_cluster(&[NodeId(1), NodeId(2)]).unwrap();
        assert!(matches!(
            handles[0].send(NodeId(9), vec![]),
            Err(NetError::UnknownNode(_))
        ));
        assert!(matches!(
            handles[0].send(NodeId(1), vec![]),
            Err(NetError::SelfSend(_))
        ));
    }

    #[test]
    fn messages_cross_threads() {
        let mut handles = live_cluster(&[NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let c = handles.pop().unwrap();
        let b = handles.pop().unwrap();
        let a = handles.pop().unwrap();

        // b and c echo whatever they get back to the source.
        let echo = |h: LiveNode| {
            thread::spawn(move || {
                while let Some(d) = h.recv_timeout(Duration::from_secs(2)) {
                    let mut reply = d.payload.clone();
                    reply.push(h.node().0 as u8);
                    h.send(d.src, reply).unwrap();
                }
            })
        };
        let tb = echo(b);
        let tc = echo(c);

        a.send(NodeId(2), vec![10]).unwrap();
        a.send(NodeId(3), vec![20]).unwrap();
        let mut got = vec![
            a.recv_timeout(Duration::from_secs(2)).unwrap().payload,
            a.recv_timeout(Duration::from_secs(2)).unwrap().payload,
        ];
        got.sort();
        assert_eq!(got, vec![vec![10, 2], vec![20, 3]]);
        drop(a);
        tb.join().unwrap();
        tc.join().unwrap();
    }

    #[test]
    fn stats_are_shared_and_thread_safe() {
        let mut handles = live_cluster(&[NodeId(1), NodeId(2)]).unwrap();
        let b = handles.pop().unwrap();
        let a = handles.pop().unwrap();
        let t = thread::spawn(move || {
            let mut n = 0;
            while b.recv_timeout(Duration::from_millis(500)).is_some() {
                n += 1;
            }
            n
        });
        for i in 0..50u8 {
            a.send(NodeId(2), vec![i]).unwrap();
        }
        assert_eq!(t.join().unwrap(), 50);
        let s = a.stats_snapshot();
        assert_eq!(s.messages_sent, 50);
        assert_eq!(s.messages_delivered, 50);
        assert_eq!(s.bytes_sent, 50);
    }

    #[test]
    fn dead_peer_counts_as_drop() {
        let mut handles = live_cluster(&[NodeId(1), NodeId(2)]).unwrap();
        let b = handles.pop().unwrap();
        let a = handles.pop().unwrap();
        drop(b); // peer dies
        a.send(NodeId(2), vec![1]).unwrap();
        let s = a.stats_snapshot();
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.messages_delivered, 0);
    }

    #[test]
    fn try_recv_does_not_block() {
        let handles = live_cluster(&[NodeId(1), NodeId(2)]).unwrap();
        assert!(handles[0].try_recv().is_none());
        handles[1].send(NodeId(1), vec![7]).unwrap();
        assert_eq!(handles[0].try_recv().unwrap().payload, vec![7]);
    }
}
