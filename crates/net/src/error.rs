//! Network simulator errors.

use std::fmt;

use mrom_value::NodeId;

/// Errors raised by the simulator API (delivery failures are modelled as
/// silent drops with stats, not errors — like a real datagram network).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The referenced node was never added to the simulation.
    UnknownNode(NodeId),
    /// A node id was added twice.
    DuplicateNode(NodeId),
    /// A send targeted the sending node itself.
    SelfSend(NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "node {n} is not part of the simulation"),
            NetError::DuplicateNode(n) => write!(f, "node {n} already exists"),
            NetError::SelfSend(n) => write!(f, "node {n} cannot send to itself"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(NetError::UnknownNode(NodeId(3)).to_string().contains("n3"));
        assert!(NetError::SelfSend(NodeId(1)).to_string().contains("itself"));
    }
}
