//! Churn edge cases the fleet injector leans on: crashing a node that is
//! already down and restarting a node that never crashed must both be
//! no-ops — idempotent, stats-silent, and invisible to unrelated traffic.

use mrom_net::{LinkConfig, NetworkConfig, SimNet, Topology};
use mrom_value::NodeId;

fn three_node_net(seed: u64) -> SimNet {
    let cfg = NetworkConfig::new(seed).with_default_link(LinkConfig::lan());
    let mut net = SimNet::new(cfg);
    for n in 1..=3 {
        net.add_node(NodeId(n)).expect("fresh node");
    }
    net
}

#[test]
fn restart_of_a_never_crashed_node_is_a_noop() {
    let mut net = three_node_net(7);
    net.send(NodeId(1), NodeId(2), b"before".to_vec()).unwrap();
    let before = net.stats().clone();
    let in_flight = net.in_flight();

    net.restart_node(NodeId(2)).unwrap();
    net.restart_node(NodeId(2)).unwrap();

    assert!(!net.is_down(NodeId(2)));
    assert_eq!(*net.stats(), before, "restart must not touch NetStats");
    assert_eq!(
        net.in_flight(),
        in_flight,
        "restart must not touch the wire"
    );

    // The queued message still delivers normally.
    let d = net.step().expect("message survives the no-op restarts");
    assert_eq!(d.dst, NodeId(2));
    assert_eq!(d.payload, b"before");
}

#[test]
fn crash_of_an_already_down_node_is_a_noop() {
    let mut net = three_node_net(7);
    net.crash_node(NodeId(3)).unwrap();
    let once = net.stats().clone();

    // Crashing again changes nothing: same down set, same stats.
    net.crash_node(NodeId(3)).unwrap();
    net.crash_node(NodeId(3)).unwrap();
    assert!(net.is_down(NodeId(3)));
    assert_eq!(*net.stats(), once, "repeated crash must not touch NetStats");

    // One restart (not N) brings it back — crash does not nest.
    net.restart_node(NodeId(3)).unwrap();
    assert!(!net.is_down(NodeId(3)));

    // And the revived node serves traffic with balanced accounting.
    net.send(NodeId(1), NodeId(3), b"hello".to_vec()).unwrap();
    let d = net.step().expect("delivery after revival");
    assert_eq!(d.dst, NodeId(3));
    assert!(net.stats().accounts_for_every_send(net.in_flight()));
}

#[test]
fn churn_noops_are_invisible_to_a_seeded_run() {
    // Two identical seeded runs, one sprinkled with no-op churn calls:
    // byte-identical NetStats (the fleet determinism contract).
    let run = |noops: bool| {
        let mut net = three_node_net(99);
        for i in 0..20u64 {
            if noops {
                net.restart_node(NodeId(1)).unwrap();
                net.crash_node(NodeId(2)).unwrap();
                net.crash_node(NodeId(2)).unwrap();
                net.restart_node(NodeId(2)).unwrap();
                net.restart_node(NodeId(2)).unwrap();
            }
            let dst = NodeId(2 + (i % 2));
            net.send(NodeId(1), dst, vec![i as u8; 64]).unwrap();
        }
        net.run(|_, _| {});
        net.stats().clone()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn crash_and_restart_on_unknown_nodes_still_error() {
    // The no-op guarantee covers known nodes only; an unknown node is a
    // caller bug and keeps failing loudly.
    let mut net = three_node_net(1);
    assert!(net.crash_node(NodeId(9)).is_err());
    assert!(net.restart_node(NodeId(9)).is_err());
}

#[test]
fn downed_node_drops_and_counts_traffic_either_way() {
    // Whether the node went down via one crash or three, traffic to it is
    // dropped and counted identically.
    let outcome = |crashes: usize| {
        let mut net = three_node_net(5);
        for _ in 0..crashes {
            net.crash_node(NodeId(2)).unwrap();
        }
        net.send(NodeId(1), NodeId(2), b"lost".to_vec()).unwrap();
        net.run(|_, _| {});
        net.stats().clone()
    };
    let once = outcome(1);
    let thrice = outcome(3);
    assert_eq!(once, thrice);
    assert_eq!(once.messages_dropped, 1);
    assert!(once.accounts_for_every_send(0));
}

#[test]
fn topology_wiring_reaches_every_site() {
    // The harness links exactly the topology's edge list; sanity-check the
    // simulator accepts every generated pair under each shape.
    for topo in [
        Topology::Star,
        Topology::Mesh { degree: 3 },
        Topology::Hierarchical { cluster_size: 4 },
    ] {
        let n = 12;
        let cfg = NetworkConfig::new(11).with_default_link(LinkConfig::lan());
        let mut net = SimNet::new(cfg);
        for site in Topology::sites(n) {
            net.add_node(site).expect("fresh node");
        }
        for e in topo.edges(n) {
            net.config_mut().set_symmetric_link(e.a, e.b, e.tier.link());
            net.send(e.a, e.b, b"ping".to_vec()).unwrap();
        }
        net.run(|_, _| {});
        assert!(net.stats().accounts_for_every_send(0));
        assert_eq!(net.stats().messages_dropped, 0);
    }
}
