//! Property tests for the simulator: exactly-once delivery, per-link FIFO,
//! timing laws, and determinism.

use mrom_net::{LinkConfig, NetworkConfig, SimNet, SimTime};
use mrom_value::NodeId;
use proptest::prelude::*;

/// A randomized send plan: (src index, dst index, payload size).
fn plan(nodes: usize) -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    prop::collection::vec(
        (0..nodes, 0..nodes, 0usize..4096).prop_filter("no self sends", |(a, b, _)| a != b),
        0..64,
    )
}

fn build_net(seed: u64, nodes: usize, jitter: u64, loss: f64) -> SimNet {
    let cfg = NetworkConfig::new(seed).with_default_link(
        LinkConfig::new()
            .latency_us(500)
            .bandwidth_bytes_per_sec(1_000_000)
            .jitter_us(jitter)
            .loss_probability(loss),
    );
    let mut net = SimNet::new(cfg);
    for n in 0..nodes {
        net.add_node(NodeId(n as u64)).unwrap();
    }
    net
}

proptest! {
    /// Every accepted (non-dropped) message is delivered exactly once, and
    /// sent = delivered + dropped.
    #[test]
    fn exactly_once_accounting(sends in plan(4), seed in 0u64..1000, loss in 0.0f64..0.5) {
        let mut net = build_net(seed, 4, 2_000, loss);
        let mut accepted = 0u64;
        for (s, d, size) in &sends {
            if net
                .send(NodeId(*s as u64), NodeId(*d as u64), vec![0u8; *size])
                .unwrap()
                .is_some()
            {
                accepted += 1;
            }
        }
        let mut delivered = 0u64;
        while net.step().is_some() {
            delivered += 1;
        }
        prop_assert_eq!(delivered, accepted);
        let st = net.stats();
        prop_assert_eq!(st.messages_sent, sends.len() as u64);
        prop_assert_eq!(st.messages_delivered + st.messages_dropped, st.messages_sent);
    }

    /// Per directed link, messages arrive in send order even under jitter.
    #[test]
    fn per_link_fifo(sends in plan(3), seed in 0u64..1000) {
        let mut net = build_net(seed, 3, 10_000, 0.0);
        // Tag payloads with a global sequence number.
        for (i, (s, d, _)) in sends.iter().enumerate() {
            let payload = (i as u64).to_be_bytes().to_vec();
            net.send(NodeId(*s as u64), NodeId(*d as u64), payload).unwrap();
        }
        let mut last_seq_per_link = std::collections::HashMap::new();
        while let Some(d) = net.step() {
            let seq = u64::from_be_bytes(d.payload.as_slice().try_into().unwrap());
            if let Some(prev) = last_seq_per_link.insert((d.src, d.dst), seq) {
                prop_assert!(seq > prev, "link {:?}->{:?} reordered {} after {}", d.src, d.dst, seq, prev);
            }
        }
    }

    /// Arrival time is never before send time + deterministic transfer
    /// time, and the clock never runs backwards.
    #[test]
    fn timing_laws(sends in plan(3), seed in 0u64..1000) {
        let mut net = build_net(seed, 3, 3_000, 0.0);
        let mut expected_min = Vec::new();
        for (s, d, size) in &sends {
            let src = NodeId(*s as u64);
            let dst = NodeId(*d as u64);
            let min_arrival = net.now() + net.config().link(src, dst).transfer_time(*size);
            let scheduled = net.send(src, dst, vec![0u8; *size]).unwrap().unwrap();
            prop_assert!(scheduled >= min_arrival);
            expected_min.push(min_arrival);
        }
        let mut prev = SimTime::ZERO;
        while let Some(d) = net.step() {
            prop_assert!(d.at >= prev, "clock ran backwards");
            prev = d.at;
        }
    }

    /// The same seed and plan produce byte-identical delivery schedules.
    #[test]
    fn determinism(sends in plan(3), seed in 0u64..1000) {
        let run = |seed: u64| {
            let mut net = build_net(seed, 3, 7_000, 0.2);
            for (s, d, size) in &sends {
                net.send(NodeId(*s as u64), NodeId(*d as u64), vec![0u8; *size])
                    .unwrap();
            }
            let mut log = Vec::new();
            while let Some(d) = net.step() {
                log.push((d.at, d.src, d.dst, d.payload.len()));
            }
            log
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Partitioned pairs deliver nothing; others are unaffected.
    #[test]
    fn partitions_are_absolute(sends in plan(3), seed in 0u64..1000) {
        let mut net = build_net(seed, 3, 0, 0.0);
        net.config_mut().partition(NodeId(0), NodeId(1));
        for (s, d, size) in &sends {
            net.send(NodeId(*s as u64), NodeId(*d as u64), vec![0u8; *size])
                .unwrap();
        }
        while let Some(d) = net.step() {
            let pair = (d.src.0.min(d.dst.0), d.src.0.max(d.dst.0));
            prop_assert_ne!(pair, (0, 1), "partitioned pair delivered");
        }
    }
}
