//! Offline stand-in for `rand` 0.9.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{random, random_range, random_bool}`
//! and the free `random` function — over a xoshiro256** core. Statistical
//! quality is far beyond what the deterministic simulator and soak tests
//! need; the point is reproducibility without a network.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only the `seed_from_u64` form is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw words (the stand-in for
/// rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled (the stand-in for rand's `SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges, matching rand's behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128 + 1;
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and good enough to stand in for the
    /// real `StdRng` in deterministic simulations.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Draws one value from a process-local generator (seeded once per thread
/// from a global counter — deterministic enough for log-file name salting,
/// which is all this workspace uses it for).
pub fn random<T: Standard>() -> T {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    static THREAD_SEED: AtomicU64 = AtomicU64::new(0x5eed_cafe_f00d_d00d);
    thread_local! {
        static TLS_RNG: RefCell<rngs::StdRng> = RefCell::new(SeedableRng::seed_from_u64(
            THREAD_SEED.fetch_add(0x9e37_79b9, Ordering::Relaxed),
        ));
    }
    TLS_RNG.with(|r| T::sample(&mut *r.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "got {hits}");
    }
}
