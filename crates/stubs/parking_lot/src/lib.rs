//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly, recovering the data from a
//! poisoned lock instead of propagating the poison (parking_lot has no
//! poisoning at all, so this matches its observable behaviour).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's guard-returning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrows the data without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock with parking_lot's guard-returning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
