//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `serde::Serialize` / `serde::Deserialize` on a
//! handful of plain types but never actually serializes through serde (the
//! wire format is the self-contained TLV codec in `mrom-value`). These
//! derives therefore only need to produce *marker* impls. Parsing is done
//! by hand on the token stream — no `syn`/`quote`, so the crate builds with
//! nothing but the bundled toolchain.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword, skipping
/// attributes, doc comments, and visibility qualifiers.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive target must be a struct or enum");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive target must be a struct or enum");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
