//! Offline stand-in for `proptest`.
//!
//! A generate-only property-testing harness: strategies produce random
//! values from a per-test deterministic RNG and the body runs for
//! `ProptestConfig::cases` iterations. There is **no shrinking** — a
//! failure reports the case number so it can be replayed (generation is
//! a pure function of the test name and case index).
//!
//! Covered surface: `Strategy` (`prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`), `BoxedStrategy`, `Just`, `any` for the
//! primitive types, integer and float ranges, string-literal regex
//! strategies (`.`, classes with ranges/negation/`&&` intersection, and
//! `{m,n}` quantifiers), tuples up to arity 8, `prop::collection::{vec,
//! btree_map, btree_set}`, `prop::num::f64::NORMAL`, and the `proptest!`,
//! `prop_oneof!`, `prop_assert*!` macros.

pub mod test_runner {
    //! Runner configuration, RNG, and failure type.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic generator handed to every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Builds the RNG for one (test, case) pair. `salt` is derived
        /// from the test name so sibling tests see different streams.
        pub fn for_case(salt: u64, case: u32) -> TestRng {
            TestRng {
                inner: StdRng::seed_from_u64(
                    salt ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform draw in `[lo, hi]` (inclusive on both ends).
        pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi.wrapping_sub(lo).wrapping_add(1);
            if span == 0 {
                self.next_u64()
            } else {
                lo + self.next_u64() % span
            }
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the test name, used as the per-test RNG salt.
    pub fn name_salt(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Lower than upstream's 256: generation here is not
            // size-biased, so large cases dominate; 64 keeps tier-1 fast
            // while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A property failure (from `prop_assert*!`).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The asserted condition was false.
        Fail(String),
        /// The input was rejected (e.g. filter exhaustion).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred` (retrying up to a
        /// fixed bound, then panicking with `reason`).
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Builds a recursive strategy: `recurse` is applied `depth`
        /// times starting from `self` as the leaf level. The
        /// `_desired_size` / `_expected_branch` hints are accepted for
        /// API compatibility but unused (depth alone bounds growth).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut level: BoxedStrategy<Self::Value> = self.boxed();
            for _ in 0..depth {
                level = recurse(level).boxed();
            }
            level
        }

        /// Type-erases this strategy behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Cloneable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Strategy yielding clones of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.inner.gen_value(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
        }
    }

    /// Weighted union of boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if empty or all-zero-weighted.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Two's-complement offset arithmetic handles signed
                    // ranges as wide as (MIN+1)..MAX without overflow.
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    rng.in_range(lo as u64, hi as u64).wrapping_add(0) as $t
                }
            }
        )+};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            super::string::gen_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! Tiny regex-pattern string generator.
    //!
    //! Supports the subset the workspace's strategies use: `.`, literal
    //! characters, character classes with ranges, leading-`^` negation and
    //! `&&[...]` intersection, and the `{n}` / `{m,n}` / `?` / `*` / `+`
    //! quantifiers. Anchors, alternation, and groups are not supported.

    use super::test_runner::TestRng;

    const PRINTABLE: std::ops::RangeInclusive<u8> = 0x20..=0x7e;

    #[derive(Debug, Clone)]
    enum Atom {
        Any,
        Lit(char),
        Class(Vec<char>),
    }

    fn printable_set() -> Vec<char> {
        PRINTABLE.map(|b| b as char).collect()
    }

    /// Parses a class body starting after `[`, consuming the closing `]`.
    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let negated = chars.peek() == Some(&'^');
        if negated {
            chars.next();
        }
        let mut items: Vec<char> = Vec::new();
        let mut intersect: Option<Vec<char>> = None;
        loop {
            match chars.next() {
                None => panic!("unterminated character class"),
                Some(']') => break,
                Some('\\') => {
                    let c = chars.next().expect("escape at end of class");
                    items.push(c);
                }
                Some('&') if chars.peek() == Some(&'&') => {
                    chars.next();
                    assert_eq!(chars.next(), Some('['), "`&&` must be followed by a class");
                    let rhs = parse_class(chars);
                    intersect = Some(match intersect {
                        None => rhs,
                        Some(prev) => prev.into_iter().filter(|c| rhs.contains(c)).collect(),
                    });
                    // The `]` closing the *outer* class follows the inner one.
                    assert_eq!(chars.next(), Some(']'), "class must close after `&&[...]`");
                    break;
                }
                Some(lo) => {
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek().is_some() && ahead.peek() != Some(&']') {
                            chars.next();
                            let hi = chars.next().expect("range end");
                            for b in (lo as u32)..=(hi as u32) {
                                if let Some(c) = char::from_u32(b) {
                                    items.push(c);
                                }
                            }
                            continue;
                        }
                    }
                    items.push(lo);
                }
            }
        }
        let mut set: Vec<char> = if negated {
            printable_set()
                .into_iter()
                .filter(|c| !items.contains(c))
                .collect()
        } else {
            items
        };
        if let Some(mask) = intersect {
            set.retain(|c| mask.contains(c));
        }
        set.sort_unstable();
        set.dedup();
        assert!(!set.is_empty(), "character class matches nothing");
        set
    }

    fn parse(pattern: &str) -> Vec<(Atom, u32, u32)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<(Atom, u32, u32)> = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Lit(chars.next().expect("escape at end of pattern")),
                other => Atom::Lit(other),
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        body.push(c);
                    }
                    match body.split_once(',') {
                        None => {
                            let n: u32 = body.parse().expect("numeric quantifier");
                            (n, n)
                        }
                        Some((m, "")) => (m.parse().expect("numeric quantifier"), 16),
                        Some((m, n)) => (
                            m.parse().expect("numeric quantifier"),
                            n.parse().expect("numeric quantifier"),
                        ),
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    /// Generates one string matching `pattern`.
    pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pattern) {
            let count = rng.in_range(lo as u64, hi as u64);
            for _ in 0..count {
                match &atom {
                    Atom::Any => {
                        let b = rng.in_range(*PRINTABLE.start() as u64, *PRINTABLE.end() as u64);
                        out.push(b as u8 as char);
                    }
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            char::from_u32(rng.in_range(0x20, 0x7e) as u32).expect("printable ascii")
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections with a size range.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.start as u64, self.size.end.max(1) as u64 - 1);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Vector of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeMap` with distinct generated keys.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let want = rng.in_range(self.size.start as u64, self.size.end.max(1) as u64 - 1);
            let mut out = BTreeMap::new();
            // Key collisions shrink the map; bound the retries so tight
            // key spaces still terminate.
            for _ in 0..want * 4 {
                if out.len() as u64 >= want {
                    break;
                }
                out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
            }
            out
        }
    }

    /// Map of `key`→`value` entries with size in `size`.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// Strategy for `BTreeSet` with distinct generated elements.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let want = rng.in_range(self.size.start as u64, self.size.end.max(1) as u64 - 1);
            let mut out = BTreeSet::new();
            for _ in 0..want * 4 {
                if out.len() as u64 >= want {
                    break;
                }
                out.insert(self.element.gen_value(rng));
            }
            out
        }
    }

    /// Set of `element` values with size in `size`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod num {
    //! Numeric special-purpose strategies.

    pub mod f64 {
        //! `f64` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over normal (finite, non-zero, non-subnormal) doubles.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;
            fn gen_value(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let f = f64::from_bits(rng.next_u64());
                    if f.is_normal() {
                        return f;
                    }
                }
            }
        }

        /// Normal doubles: finite, non-zero, full exponent range.
        pub const NORMAL: NormalStrategy = NormalStrategy;
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// expands to a zero-argument test running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            let salt = $crate::test_runner::name_salt(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(salt, case);
                let ($($pat,)+) = $crate::strategy::Strategy::gen_value(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => {
                        panic!("property failed at case {case}/{}: {e}", config.cases);
                    }
                }
            }
        }
    )*};
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::test_runner::TestRng::for_case(1, 0);
        for case in 0..200u32 {
            let mut rng2 = crate::test_runner::TestRng::for_case(7, case);
            let s = crate::string::gen_from_pattern("[a-z][a-z0-9_]{0,6}", &mut rng2);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = crate::string::gen_from_pattern("[ -~&&[^\"\\\\]]{0,12}", &mut rng);
            assert!(t.len() <= 12);
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\'));
            let u = crate::string::gen_from_pattern(".{1,10}", &mut rng);
            assert!(!u.is_empty() && u.len() <= 10);
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(3, 1);
        for _ in 0..500 {
            let x = (0usize..7).gen_value(&mut rng);
            assert!(x < 7);
            let y = ((i64::MIN + 1)..i64::MAX).gen_value(&mut rng);
            assert!(y > i64::MIN);
            let f = (0.0f64..1.0).gen_value(&mut rng);
            assert!((0.0..1.0).contains(&f));
            let (a, b) = (0u32..4, 10u32..14).gen_value(&mut rng);
            assert!(a < 4 && (10..14).contains(&b));
        }
    }

    #[test]
    fn recursion_terminates() {
        let leaf = prop_oneof![Just(0u32), (1u32..10)];
        let nested = leaf.prop_recursive(4, 64, 8, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(|v| v.iter().sum::<u32>())
        });
        let mut rng = crate::test_runner::TestRng::for_case(9, 0);
        for _ in 0..100 {
            let _ = nested.gen_value(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_macro_runs(v in prop::collection::vec(any::<u8>(), 0..16), x in 0u64..100) {
            prop_assert!(v.len() < 16);
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
