//! Offline stand-in for `criterion`.
//!
//! Unlike the marker-only stubs, this one actually measures: each
//! benchmark is warmed up, then timed over `sample_size` samples with the
//! per-sample iteration count calibrated so a sample lasts ~2 ms, and the
//! median ns/iter is reported. Set `MROM_BENCH_JSON=<path>` to append one
//! JSON line per benchmark — the repo's bench tables are built from that.
//!
//! No statistics beyond median/min/max are computed; this is a regression
//! harness, not an estimator with confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, rendered as `function/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (recorded in the JSON line, not used to scale the
/// printed time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs `routine` once per calibrated outer iteration; the harness
    /// times the enclosing call, so no clock is read here.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }

    /// Like [`Bencher::iter`], with a per-iteration setup whose cost is
    /// (unlike real criterion) included in the sample — the stub has no
    /// per-call clock to subtract it with. Comparisons between benches
    /// that share the same setup remain meaningful.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            black_box(routine(input));
        }
    }
}

/// One benchmark's aggregated result.
#[derive(Debug, Clone)]
struct Sampled {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters_per_sample: u64,
    samples: usize,
}

fn run_sampled<O, R: FnMut() -> O>(sample_size: usize, mut routine: R) -> Sampled {
    // Warm up for ~100 ms while estimating the per-iteration cost.
    let warmup = Duration::from_millis(100);
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < warmup {
        black_box(routine());
        warm_iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

    // Aim for ~2 ms per sample so cheap ops still get a stable reading.
    let target_sample_ns = 2_000_000.0;
    let iters = ((target_sample_ns / per_iter.max(0.1)) as u64).clamp(1, 50_000_000);

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = if per_iter_ns.len() % 2 == 1 {
        per_iter_ns[per_iter_ns.len() / 2]
    } else {
        let hi = per_iter_ns.len() / 2;
        (per_iter_ns[hi - 1] + per_iter_ns[hi]) / 2.0
    };
    Sampled {
        median_ns,
        min_ns: per_iter_ns[0],
        max_ns: *per_iter_ns.last().expect("sample_size > 0"),
        iters_per_sample: iters,
        samples: per_iter_ns.len(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:.4} s", ns / 1_000_000_000.0)
    } else if ns >= 1_000_000.0 {
        format!("{:.4} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.4} µs", ns / 1_000.0)
    } else {
        format!("{ns:.4} ns")
    }
}

fn report(group: Option<&str>, id: &str, throughput: Option<Throughput>, s: &Sampled) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    println!(
        "{full:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(s.min_ns),
        fmt_ns(s.median_ns),
        fmt_ns(s.max_ns),
        s.samples,
        s.iters_per_sample
    );
    if let Ok(path) = std::env::var("MROM_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write as _;
            let tp = match throughput {
                Some(Throughput::Bytes(b)) => format!(",\"throughput_bytes\":{b}"),
                Some(Throughput::Elements(e)) => format!(",\"throughput_elems\":{e}"),
                None => String::new(),
            };
            let line = format!(
                "{{\"bench\":\"{full}\",\"median_ns\":{:.2},\"min_ns\":{:.2},\"max_ns\":{:.2},\"samples\":{},\"iters\":{}{tp}}}\n",
                s.median_ns, s.min_ns, s.max_ns, s.samples, s.iters_per_sample
            );
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let sampled = run_sampled(self.sample_size, || {
            let mut b = Bencher { iters: 1 };
            f(&mut b);
        });
        report(Some(&self.name), &id, self.throughput, &sampled);
        self
    }

    /// Runs one benchmark that closes over an input value.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let sampled = run_sampled(self.sample_size, || {
            let mut b = Bencher { iters: 1 };
            f(&mut b, input);
        });
        report(Some(&self.name), &id, self.throughput, &sampled);
        self
    }

    /// Ends the group (kept for API compatibility; no summary is emitted).
    pub fn finish(self) {}
}

/// Top-level harness handle, one per bench binary.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets the default sample count for `bench_function`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.sample_size == 0 {
                30
            } else {
                self.sample_size
            },
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = if self.sample_size == 0 {
            30
        } else {
            self.sample_size
        };
        let sampled = run_sampled(samples, || {
            let mut b = Bencher { iters: 1 };
            f(&mut b);
        });
        report(None, id, None, &sampled);
        self
    }
}

/// Declares a group function that runs each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = "Benchmark group runner (generated by `criterion_group!`)."]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Bench binaries are also compiled by `cargo test`; the
            // standard criterion skips timing there via its own runner,
            // and we approximate that with the --test flag check below.
            let test_mode = std::env::args().any(|a| a == "--test" || a == "--list");
            if test_mode {
                println!("benchmarks skipped (test mode)");
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_positive_median() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut g = c.benchmark_group("stub-selftest");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("lookup", 32).into_id(), "lookup/32");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }
}
