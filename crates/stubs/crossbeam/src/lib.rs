//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, as a thin facade over
//! `std::sync::mpsc`. The live transport uses one receiver per node and
//! cloneable senders, which maps directly onto mpsc; crossbeam's
//! select/scope machinery is not needed here.

pub mod channel {
    //! MPMC-flavoured channel API over `std::sync::mpsc` (receivers are
    //! actually single-consumer, which matches every use in this workspace).

    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// The sending half; cloneable, like crossbeam's.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, failing only if the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
