//! Offline stand-in for `serde`.
//!
//! The container image has no access to crates.io, and nothing in this
//! workspace actually serializes through serde — the self-contained TLV
//! codec in `mrom-value` is the only wire format, exactly as the paper's
//! self-containment argument requires. The `Serialize`/`Deserialize`
//! derives sprinkled on config and identity types are kept as *markers* so
//! downstream embedders that do link the real serde see the intent; here
//! they resolve to empty traits.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
