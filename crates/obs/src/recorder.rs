//! The `Recorder`: per-thread trace/metrics state and the span stack.
//!
//! One recorder lives in a thread-local (see the crate root's free
//! functions); everything in a single simulated world — both "sites" of a
//! federation, the runtime, the depot — shares it, which is exactly what
//! lets a migration hop appear as one causally-linked trace.
//!
//! ## Modes
//!
//! * **Disabled** — the default. Instrumentation call sites check one
//!   thread-local byte and fall through; no event is constructed, nothing
//!   allocates, counters do not move.
//! * **Ring** — events are assembled and appended to the bounded
//!   flight-recorder ring (plus any installed [`TraceSink`]); metrics
//!   counters are updated, but no clocks are read.
//! * **Full** — Ring plus wall-clock span latency histograms.
//!
//! The **log channel** is the one exception: it always records (bounded),
//! because it replaces the old `Runtime::log_entries` vec whose behaviour
//! did not depend on any observability switch.

use std::collections::VecDeque;
use std::time::Instant;

use mrom_value::{NodeId, ObjectId};

use crate::event::{Event, EventKind, TraceEvent};
use crate::metrics::Metrics;
use crate::profile::TelemetrySnapshot;
use crate::ring::{FlightRecorder, DEFAULT_RING_CAPACITY};
use crate::sink::TraceSink;
use crate::window::{WindowConfig, WindowState};

/// Retention cap for the always-on log channel.
pub const LOG_CHANNEL_CAPACITY: usize = 65_536;

/// Observability mode (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No recording; the instrumented paths cost one byte-load.
    #[default]
    Disabled,
    /// Flight-recorder ring + metrics counters, no clocks.
    Ring,
    /// Ring + metrics + wall-clock latency histograms.
    Full,
}

impl ObsMode {
    /// Encodes the mode into the fast-path byte.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            ObsMode::Disabled => 0,
            ObsMode::Ring => 1,
            ObsMode::Full => 2,
        }
    }

    /// Decodes the fast-path byte (unknown values read as `Disabled`).
    #[must_use]
    pub fn from_u8(raw: u8) -> ObsMode {
        match raw {
            1 => ObsMode::Ring,
            2 => ObsMode::Full,
            _ => ObsMode::Disabled,
        }
    }

    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ObsMode::Disabled => "disabled",
            ObsMode::Ring => "ring",
            ObsMode::Full => "full",
        }
    }
}

/// Handle returned by span-opening calls; pass it to the matching end
/// call. `NONE` (span 0) is inert, so call sites on the disabled path can
/// thread a handle through without branching twice.
#[derive(Debug, Clone, Copy)]
pub struct SpanHandle {
    /// The span id (0 = no span was opened).
    pub span: u64,
    /// Clock read at open time (Full mode only).
    pub started: Option<Instant>,
}

impl SpanHandle {
    /// The inert handle recorded when observability is disabled.
    pub const NONE: SpanHandle = SpanHandle {
        span: 0,
        started: None,
    };

    /// Whether this handle refers to a real open span.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.span != 0
    }
}

/// Per-thread recorder state (see module docs).
pub struct Recorder {
    mode: ObsMode,
    ring: FlightRecorder,
    extra_sink: Option<Box<dyn TraceSink>>,
    metrics: Metrics,
    /// Total events recorded since last reset — the counter the
    /// zero-overhead test asserts against.
    events_recorded: u64,
    seq: u64,
    next_trace: u64,
    next_span: u64,
    /// Open spans, innermost last.
    span_stack: Vec<u64>,
    /// Trace id of the activity the open spans belong to.
    active_trace: u64,
    /// Trace continuation installed by a migration hop (0 = none).
    forced_trace: u64,
    /// Remote parent span for the continuation's first root span.
    forced_parent: u64,
    /// The always-on bounded log channel.
    log: VecDeque<(NodeId, ObjectId, String)>,
    /// Log lines evicted from the channel since last reset.
    log_evicted: u64,
    /// Label stamped on every event this recorder emits (`None` =
    /// unlabeled). Worker-pool threads set this so a site's interleaved
    /// trace stays attributable per thread. Survives `reset` — it is an
    /// identity, like the mode, not recorded state.
    thread_label: Option<std::sync::Arc<str>>,
    /// Virtual clock in microseconds, advanced monotonically by the
    /// network simulator (and `Runtime::set_now`). Stamped on every
    /// event envelope and used to bucket window samples.
    virtual_now_us: u64,
    /// The sliding telemetry window, when configured (`None` = off; the
    /// recording paths then pay exactly one `Option` check).
    window: Option<WindowState>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("mode", &self.mode)
            .field("events_recorded", &self.events_recorded)
            .field("ring_len", &self.ring.len())
            .field("log_len", &self.log.len())
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh disabled recorder with the default ring capacity.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder {
            mode: ObsMode::Disabled,
            ring: FlightRecorder::with_capacity(DEFAULT_RING_CAPACITY),
            extra_sink: None,
            metrics: Metrics::default(),
            events_recorded: 0,
            seq: 0,
            next_trace: 1,
            next_span: 1,
            span_stack: Vec::new(),
            active_trace: 0,
            forced_trace: 0,
            forced_parent: 0,
            log: VecDeque::new(),
            log_evicted: 0,
            thread_label: None,
            virtual_now_us: 0,
            window: None,
        }
    }

    /// Labels this recorder's thread: every subsequent event carries the
    /// label. `None` returns to the unlabeled (single-threaded) default.
    pub fn set_thread_label(&mut self, label: Option<&str>) {
        self.thread_label = label.map(std::sync::Arc::from);
    }

    /// The current thread label, if any.
    #[must_use]
    pub fn thread_label(&self) -> Option<&str> {
        self.thread_label.as_deref()
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// Switches mode. Does not clear state — `reset` does that.
    pub fn set_mode(&mut self, mode: ObsMode) {
        self.mode = mode;
    }

    /// Clears ring, metrics, counters, trace state, and the log channel;
    /// mode is preserved.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.metrics = Metrics::default();
        self.events_recorded = 0;
        self.seq = 0;
        self.next_trace = 1;
        self.next_span = 1;
        self.span_stack.clear();
        self.active_trace = 0;
        self.forced_trace = 0;
        self.forced_parent = 0;
        self.log.clear();
        self.log_evicted = 0;
        self.virtual_now_us = 0;
        // Window *contents* are recorded state; the configured shape is
        // an identity (like the mode) and survives.
        if let Some(w) = &mut self.window {
            w.clear();
        }
    }

    /// Installs (replacing) the custom sink; returns the previous one.
    pub fn install_sink(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.extra_sink.replace(sink)
    }

    /// Removes the custom sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.extra_sink.take()
    }

    /// Total events recorded since the last reset.
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// Read access to the live metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Write access to the live metrics registry (instrumentation only).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Copies out the flight-recorder contents, oldest first.
    #[must_use]
    pub fn ring_snapshot(&self) -> Vec<TraceEvent> {
        self.ring.snapshot()
    }

    /// Replaces the flight recorder with an empty one of `capacity`
    /// (min 1); retained events and the eviction counter are dropped.
    pub fn set_ring_capacity(&mut self, capacity: usize) {
        self.ring = FlightRecorder::with_capacity(capacity);
    }

    /// The flight recorder's retention cap.
    #[must_use]
    pub fn ring_capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Events the ring has evicted since the last reset.
    #[must_use]
    pub fn ring_overwritten(&self) -> u64 {
        self.ring.overwritten()
    }

    // ----- virtual time and the telemetry window -------------------------

    /// Advances the virtual clock (monotonic max — site clocks and the
    /// simulator may stamp the same instant at different resolutions).
    pub fn set_virtual_now_us(&mut self, us: u64) {
        self.virtual_now_us = self.virtual_now_us.max(us);
    }

    /// The virtual clock, in microseconds.
    #[must_use]
    pub fn virtual_now_us(&self) -> u64 {
        self.virtual_now_us
    }

    /// Installs (or removes, with `None`) the sliding telemetry window.
    /// Replacing a window drops its samples.
    pub fn set_window(&mut self, cfg: Option<WindowConfig>) {
        self.window = cfg.map(WindowState::new);
    }

    /// The configured window shape, if windowing is on.
    #[must_use]
    pub fn window_config(&self) -> Option<WindowConfig> {
        self.window.as_ref().map(WindowState::config)
    }

    /// Folds the live window into a [`TelemetrySnapshot`].
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::collect(self.mode, self.virtual_now_us, self.window.as_ref())
    }

    /// Window feed: one completed application against `object`.
    pub fn window_invoke(
        &mut self,
        object: ObjectId,
        ok: bool,
        fuel: u64,
        latency_ns: Option<u64>,
    ) {
        let now = self.virtual_now_us;
        if let Some(b) = self.window.as_mut().and_then(|w| w.bucket_at(now)) {
            let s = b.objects.entry(object).or_default();
            s.invocations += 1;
            if !ok {
                s.errors += 1;
            }
            s.fuel.record(fuel);
            if let Some(ns) = latency_ns {
                s.latency_ns.record(ns);
            }
        }
    }

    /// Window feed: one remote invocation of `object` requested by the
    /// site `src`. Ignored unless the window opted into caller tracking
    /// ([`WindowConfig::with_callers`]), so pre-advisor snapshots stay
    /// byte-identical.
    pub fn window_remote_call(&mut self, src: NodeId, object: ObjectId) {
        let now = self.virtual_now_us;
        if let Some(b) = self
            .window
            .as_mut()
            .filter(|w| w.config().track_callers)
            .and_then(|w| w.bucket_at(now))
        {
            *b.objects
                .entry(object)
                .or_default()
                .remote_callers
                .entry(src)
                .or_insert(0) += 1;
        }
    }

    /// Window feed: a shared-runtime checkout collision on `object`.
    pub fn window_collision(&mut self, object: ObjectId) {
        let now = self.virtual_now_us;
        if let Some(b) = self.window.as_mut().and_then(|w| w.bucket_at(now)) {
            b.objects.entry(object).or_default().busy_collisions += 1;
        }
    }

    /// Window feed: one call-matrix edge (`src == dst` for an execution
    /// at a site, `src != dst` for a cross-site invocation request).
    pub fn window_call(&mut self, src: NodeId, dst: NodeId) {
        let now = self.virtual_now_us;
        if let Some(b) = self.window.as_mut().and_then(|w| w.bucket_at(now)) {
            *b.calls.entry((src, dst)).or_insert(0) += 1;
        }
    }

    /// Window feed: a delivery over `src → dst` that spent `latency_us`
    /// of virtual time on the wire.
    pub fn window_link_delivery(&mut self, src: NodeId, dst: NodeId, bytes: u64, latency_us: u64) {
        let now = self.virtual_now_us;
        if let Some(b) = self.window.as_mut().and_then(|w| w.bucket_at(now)) {
            let l = b.links.entry((src, dst)).or_default();
            l.delivered += 1;
            l.bytes += bytes;
            l.latency_us.record(latency_us);
        }
    }

    /// Window feed: a message lost on `src → dst`.
    pub fn window_link_drop(&mut self, src: NodeId, dst: NodeId) {
        let now = self.virtual_now_us;
        if let Some(b) = self.window.as_mut().and_then(|w| w.bucket_at(now)) {
            b.links.entry((src, dst)).or_default().dropped += 1;
        }
    }

    // ----- trace context -------------------------------------------------

    /// `(trace, span)` of the innermost open span, or the active trace
    /// with span 0 when none is open. `(0, 0)` means no activity.
    #[must_use]
    pub fn current_context(&self) -> (u64, u64) {
        let span = self.span_stack.last().copied().unwrap_or(0);
        let trace = if span == 0 && self.span_stack.is_empty() && self.active_trace == 0 {
            0
        } else {
            self.active_trace
        };
        (trace, span)
    }

    /// Installs a trace continuation: the next *root* span joins `trace`
    /// with `parent` as its parent span (how a migration hop links the
    /// remote half to the dispatching half). Returns the previous pair so
    /// a scope guard can restore it.
    pub fn set_continuation(&mut self, trace: u64, parent: u64) -> (u64, u64) {
        let prev = (self.forced_trace, self.forced_parent);
        self.forced_trace = trace;
        self.forced_parent = parent;
        // Keep local ids ahead of imported ones so spans stay unique
        // even if the continuation originated from another recorder.
        if trace >= self.next_trace {
            self.next_trace = trace + 1;
        }
        if parent >= self.next_span {
            self.next_span = parent + 1;
        }
        prev
    }

    // ----- recording -----------------------------------------------------

    fn emit(&mut self, trace: u64, span: u64, parent: u64, kind: EventKind) {
        let te = TraceEvent {
            event: Event {
                seq: self.seq,
                trace,
                span,
                parent,
                thread: self.thread_label.clone(),
                at_us: self.virtual_now_us,
            },
            kind,
        };
        self.seq += 1;
        self.events_recorded += 1;
        self.ring.record(&te);
        if let Some(sink) = self.extra_sink.as_mut() {
            sink.record(&te);
        }
    }

    /// Records a point event attributed to the innermost open span.
    pub fn record(&mut self, kind: EventKind) {
        let (trace, span) = self.current_context();
        let parent = if self.span_stack.len() >= 2 {
            self.span_stack[self.span_stack.len() - 2]
        } else {
            0
        };
        self.emit(trace, span, parent, kind);
    }

    /// Opens a span: assigns a fresh span id under the current (or a
    /// fresh / continued) trace, pushes it, and records `kind`.
    pub fn open_span(&mut self, kind: EventKind) -> SpanHandle {
        let parent = match self.span_stack.last() {
            Some(top) => *top,
            None => {
                self.active_trace = if self.forced_trace != 0 {
                    self.forced_trace
                } else {
                    let t = self.next_trace;
                    self.next_trace += 1;
                    t
                };
                self.forced_parent
            }
        };
        let span = self.next_span;
        self.next_span += 1;
        self.span_stack.push(span);
        let trace = self.active_trace;
        self.emit(trace, span, parent, kind);
        let started = if self.mode == ObsMode::Full {
            Some(Instant::now())
        } else {
            None
        };
        SpanHandle { span, started }
    }

    /// Closes a span: records `kind` with the span's ids and pops it
    /// (and anything opened after it that was leaked by an error path).
    pub fn close_span(&mut self, handle: SpanHandle, kind: EventKind) {
        if !handle.is_active() {
            return;
        }
        let parent = match self.span_stack.iter().rposition(|s| *s == handle.span) {
            Some(pos) => {
                let parent = if pos > 0 { self.span_stack[pos - 1] } else { 0 };
                self.span_stack.truncate(pos);
                parent
            }
            None => 0,
        };
        let trace = self.active_trace;
        self.emit(trace, handle.span, parent, kind);
        if self.span_stack.is_empty() {
            self.active_trace = 0;
        }
    }

    // ----- log channel ---------------------------------------------------

    /// Appends to the always-on log channel (bounded).
    pub fn log_line(&mut self, node: NodeId, caller: ObjectId, message: &str) {
        if self.log.len() == LOG_CHANNEL_CAPACITY {
            self.log.pop_front();
            self.log_evicted += 1;
        }
        self.log.push_back((node, caller, message.to_owned()));
        // When recording, the line also enters the trace stream.
        if self.mode != ObsMode::Disabled {
            self.record(EventKind::Log {
                node,
                caller,
                message: message.to_owned(),
            });
        }
    }

    /// Log lines observed by `node`'s runtime, oldest first.
    #[must_use]
    pub fn log_lines_for(&self, node: NodeId) -> Vec<(ObjectId, String)> {
        self.log
            .iter()
            .filter(|(n, _, _)| *n == node)
            .map(|(_, caller, msg)| (*caller, msg.clone()))
            .collect()
    }

    /// Lines evicted from the log channel since the last reset.
    #[must_use]
    pub fn log_evicted(&self) -> u64 {
        self.log_evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(r: &mut Recorder, method: &str, level: u32) -> SpanHandle {
        r.open_span(EventKind::InvokeStart {
            object: ObjectId::SYSTEM,
            method: method.to_owned(),
            caller: ObjectId::SYSTEM,
            level,
        })
    }

    fn end(r: &mut Recorder, handle: SpanHandle) {
        r.close_span(
            handle,
            EventKind::InvokeEnd {
                object: ObjectId::SYSTEM,
                method: "m".to_owned(),
                outcome: "ok",
                fuel_used: 0,
            },
        );
    }

    #[test]
    fn spans_nest_and_share_a_trace() {
        let mut r = Recorder::new();
        r.set_mode(ObsMode::Ring);
        let outer = start(&mut r, "outer", 1);
        let inner = start(&mut r, "inner", 0);
        end(&mut r, inner);
        end(&mut r, outer);
        let ring = r.ring_snapshot();
        assert_eq!(ring.len(), 4);
        let traces: Vec<u64> = ring.iter().map(|t| t.event.trace).collect();
        assert!(traces.iter().all(|t| *t == traces[0]));
        // inner's start is parented on outer's span
        assert_eq!(ring[1].event.parent, ring[0].event.span);
        // a second activity gets a fresh trace
        let solo = start(&mut r, "solo", 0);
        end(&mut r, solo);
        let ring = r.ring_snapshot();
        assert_ne!(ring[4].event.trace, traces[0]);
    }

    #[test]
    fn continuation_joins_the_existing_trace() {
        let mut r = Recorder::new();
        r.set_mode(ObsMode::Ring);
        let local = start(&mut r, "dispatch", 0);
        let (trace, span) = r.current_context();
        end(&mut r, local);
        let prev = r.set_continuation(trace, span);
        let remote = start(&mut r, "adopt", 0);
        end(&mut r, remote);
        r.set_continuation(prev.0, prev.1);
        let ring = r.ring_snapshot();
        assert_eq!(ring[2].event.trace, trace);
        assert_eq!(ring[2].event.parent, span);
        // after restoring, new activities are fresh again
        let after = start(&mut r, "later", 0);
        end(&mut r, after);
        let ring = r.ring_snapshot();
        assert_ne!(ring[4].event.trace, trace);
        assert_eq!(ring[4].event.parent, 0);
    }

    #[test]
    fn point_events_attach_to_the_open_span() {
        let mut r = Recorder::new();
        r.set_mode(ObsMode::Ring);
        let h = start(&mut r, "m", 0);
        r.record(EventKind::MetaOp {
            object: ObjectId::SYSTEM,
            op: "getDataItem",
        });
        end(&mut r, h);
        let ring = r.ring_snapshot();
        assert_eq!(ring[1].event.span, ring[0].event.span);
    }

    #[test]
    fn log_channel_works_while_disabled() {
        let mut r = Recorder::new();
        assert_eq!(r.mode(), ObsMode::Disabled);
        r.log_line(NodeId(9), ObjectId::SYSTEM, "tick");
        r.log_line(NodeId(8), ObjectId::SYSTEM, "other-node");
        assert_eq!(r.events_recorded(), 0, "disabled mode records no events");
        let lines = r.log_lines_for(NodeId(9));
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].1, "tick");
    }

    #[test]
    fn reset_clears_everything_but_mode() {
        let mut r = Recorder::new();
        r.set_mode(ObsMode::Full);
        let h = start(&mut r, "m", 0);
        end(&mut r, h);
        r.log_line(NodeId(1), ObjectId::SYSTEM, "x");
        r.reset();
        assert_eq!(r.events_recorded(), 0);
        assert!(r.ring_snapshot().is_empty());
        assert!(r.log_lines_for(NodeId(1)).is_empty());
        assert_eq!(r.mode(), ObsMode::Full);
    }
}
