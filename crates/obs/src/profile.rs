//! `TelemetrySnapshot`: the windowed profile the reflective
//! `getTelemetry` surface and `mrom-top --watch` consume.
//!
//! A snapshot folds the live epoch buckets of the sliding window
//! ([`WindowState`](crate::window::WindowState)) into three aggregates:
//!
//! * **hot objects** — per-receiver invocation count, error count, fuel
//!   p50/p95, wall latency p50/p95 (Full mode only), and the
//!   busy-collision count from the shared runtime;
//! * **call matrix** — `(src, dst)` site pairs: the diagonal counts
//!   invocations executed at a site, off-diagonal entries count
//!   cross-site `invoke_req` traffic;
//! * **link windows** — per-link delivered/dropped/bytes plus virtual
//!   wire-latency p50/p95.
//!
//! Everything is computed from integer counters bucketed by virtual
//! time, so a snapshot of a seeded simulation is a pure function of the
//! seed: [`TelemetrySnapshot::to_json`] is byte-identical across runs
//! (the determinism tests sweep this across chaos seeds). The JSON
//! schema is versioned via the top-level `schema` key — see
//! docs/OBSERVABILITY.md for the field-by-field contract.

use std::collections::BTreeMap;

use mrom_value::{NodeId, ObjectId, Value};

use crate::json::to_json;
use crate::metrics::Histogram;
use crate::recorder::ObsMode;
use crate::window::{WindowConfig, WindowState};

/// The stable schema tag stamped on every snapshot.
pub const TELEMETRY_SCHEMA: &str = "mrom.telemetry.v1";

/// Windowed per-object profile aggregated across the live epochs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectProfile {
    /// Applications with this object as receiver inside the window.
    pub invocations: u64,
    /// Of those, how many returned an error.
    pub errors: u64,
    /// Total fuel consumed inside the window.
    pub fuel_total: u64,
    /// Median fuel per application (log-bucket upper bound).
    pub fuel_p50: u64,
    /// 95th-percentile fuel per application (log-bucket upper bound).
    pub fuel_p95: u64,
    /// Median wall latency in nanoseconds (0 unless Full mode ran).
    pub latency_p50_ns: u64,
    /// 95th-percentile wall latency in nanoseconds.
    pub latency_p95_ns: u64,
    /// Shared-runtime checkout collisions against this object.
    pub busy_collisions: u64,
    /// Remote invocation requests per requesting site (empty unless the
    /// window was configured with
    /// [`WindowConfig::with_callers`](crate::WindowConfig::with_callers)).
    pub remote_callers: BTreeMap<NodeId, u64>,
}

impl ObjectProfile {
    /// The site issuing the most remote invocations of this object,
    /// with its request count (ties broken toward the lower site id, so
    /// the answer is total and deterministic). `None` when no remote
    /// caller was recorded.
    #[must_use]
    pub fn dominant_remote_caller(&self) -> Option<(NodeId, u64)> {
        self.remote_callers
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(site, n)| (*site, *n))
    }

    /// Total remote invocation requests recorded against this object.
    #[must_use]
    pub fn remote_requests(&self) -> u64 {
        self.remote_callers.values().sum()
    }
    /// Busy-collision rate per thousand invocations (integer, so the
    /// snapshot stays byte-deterministic).
    #[must_use]
    pub fn busy_per_1k(&self) -> u64 {
        if self.invocations == 0 {
            return 0;
        }
        self.busy_collisions.saturating_mul(1000) / self.invocations
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("invocations", int(self.invocations)),
            ("errors", int(self.errors)),
            ("fuel_total", int(self.fuel_total)),
            ("fuel_p50", int(self.fuel_p50)),
            ("fuel_p95", int(self.fuel_p95)),
            ("latency_p50_ns", int(self.latency_p50_ns)),
            ("latency_p95_ns", int(self.latency_p95_ns)),
            ("busy_collisions", int(self.busy_collisions)),
            ("busy_per_1k", int(self.busy_per_1k())),
        ];
        // Only rendered when caller tracking actually recorded something,
        // so snapshots from untracked windows keep their exact pre-advisor
        // byte layout.
        if !self.remote_callers.is_empty() {
            let callers: Vec<Value> = self
                .remote_callers
                .iter()
                .map(|(site, n)| Value::map([("site", node_int(*site)), ("count", int(*n))]))
                .collect();
            fields.push(("callers", Value::List(callers)));
        }
        Value::map(fields)
    }
}

/// Windowed per-link profile aggregated across the live epochs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkProfile {
    /// Messages delivered over this link inside the window.
    pub delivered: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Median virtual wire latency in microseconds.
    pub latency_p50_us: u64,
    /// 95th-percentile virtual wire latency in microseconds.
    pub latency_p95_us: u64,
}

impl LinkProfile {
    /// Delivery ratio per thousand attempts (integer-deterministic).
    #[must_use]
    pub fn delivered_per_1k(&self) -> u64 {
        let attempts = self.delivered + self.dropped;
        if attempts == 0 {
            return 0;
        }
        self.delivered.saturating_mul(1000) / attempts
    }

    fn to_value(&self) -> Value {
        Value::map([
            ("delivered", int(self.delivered)),
            ("dropped", int(self.dropped)),
            ("bytes", int(self.bytes)),
            ("latency_p50_us", int(self.latency_p50_us)),
            ("latency_p95_us", int(self.latency_p95_us)),
            ("delivered_per_1k", int(self.delivered_per_1k())),
        ])
    }
}

/// The aggregated window the reflective surface returns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Observability mode at snapshot time (stable lowercase name).
    pub mode: &'static str,
    /// Virtual clock at snapshot time, in microseconds.
    pub now_us: u64,
    /// Window shape, or `None` when windowing was not configured.
    pub window: Option<WindowConfig>,
    /// Newest epoch any sample landed in (0 when unwindowed).
    pub head_epoch: u64,
    /// Per-receiver profiles, keyed by object identity.
    pub objects: BTreeMap<ObjectId, ObjectProfile>,
    /// Site-to-site call matrix.
    pub calls: BTreeMap<(NodeId, NodeId), u64>,
    /// Per-link windowed delivery profiles.
    pub links: BTreeMap<(NodeId, NodeId), LinkProfile>,
}

impl TelemetrySnapshot {
    /// Folds the live window buckets into one snapshot. An unwindowed
    /// recorder yields an empty (but schema-complete) snapshot.
    #[must_use]
    pub fn collect(mode: ObsMode, now_us: u64, window: Option<&WindowState>) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot {
            mode: mode.name(),
            now_us,
            window: window.map(WindowState::config),
            head_epoch: window.map_or(0, WindowState::head_epoch),
            ..TelemetrySnapshot::default()
        };
        let Some(window) = window else {
            return snap;
        };
        let mut fuel: BTreeMap<ObjectId, Histogram> = BTreeMap::new();
        let mut latency: BTreeMap<ObjectId, Histogram> = BTreeMap::new();
        let mut link_latency: BTreeMap<(NodeId, NodeId), Histogram> = BTreeMap::new();
        for bucket in window.live_buckets() {
            for (id, s) in &bucket.objects {
                let p = snap.objects.entry(*id).or_default();
                p.invocations += s.invocations;
                p.errors += s.errors;
                p.fuel_total += s.fuel.sum();
                p.busy_collisions += s.busy_collisions;
                for (site, n) in &s.remote_callers {
                    *p.remote_callers.entry(*site).or_insert(0) += n;
                }
                fuel.entry(*id).or_default().merge(&s.fuel);
                latency.entry(*id).or_default().merge(&s.latency_ns);
            }
            for (edge, n) in &bucket.calls {
                *snap.calls.entry(*edge).or_insert(0) += n;
            }
            for (edge, s) in &bucket.links {
                let p = snap.links.entry(*edge).or_default();
                p.delivered += s.delivered;
                p.dropped += s.dropped;
                p.bytes += s.bytes;
                link_latency.entry(*edge).or_default().merge(&s.latency_us);
            }
        }
        for (id, p) in &mut snap.objects {
            if let Some(h) = fuel.get(id) {
                p.fuel_p50 = h.quantile(0.50);
                p.fuel_p95 = h.quantile(0.95);
            }
            if let Some(h) = latency.get(id) {
                p.latency_p50_ns = h.quantile(0.50);
                p.latency_p95_ns = h.quantile(0.95);
            }
        }
        for (edge, p) in &mut snap.links {
            if let Some(h) = link_latency.get(edge) {
                p.latency_p50_us = h.quantile(0.50);
                p.latency_p95_us = h.quantile(0.95);
            }
        }
        snap
    }

    /// The `k` hottest objects by windowed invocation count (ties broken
    /// by object identity, so the order is total and stable).
    #[must_use]
    pub fn hot_objects(&self, k: usize) -> Vec<(ObjectId, &ObjectProfile)> {
        let mut all: Vec<(ObjectId, &ObjectProfile)> =
            self.objects.iter().map(|(id, p)| (*id, p)).collect();
        all.sort_by(|a, b| b.1.invocations.cmp(&a.1.invocations).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Invocations *executed at* `node` inside the window — the
    /// diagonal of the call matrix, the per-site load figure the
    /// Advisor's shedding policy compares against the fleet mean.
    #[must_use]
    pub fn site_load(&self, node: NodeId) -> u64 {
        self.calls.get(&(node, node)).copied().unwrap_or(0)
    }

    /// Links whose windowed delivery ratio fell below
    /// `threshold_permille`, among links that carried at least
    /// `min_attempts` messages (so a single early drop cannot brand a
    /// quiet link degraded). Returns `(link, delivered_per_1k)` pairs in
    /// deterministic `BTreeMap` order — the Advisor's
    /// ambassador-refresh signal.
    #[must_use]
    pub fn degraded_links(
        &self,
        threshold_permille: u64,
        min_attempts: u64,
    ) -> Vec<((NodeId, NodeId), u64)> {
        self.links
            .iter()
            .filter(|(_, p)| p.delivered + p.dropped >= min_attempts.max(1))
            .map(|(edge, p)| (*edge, p.delivered_per_1k()))
            .filter(|(_, ratio)| *ratio < threshold_permille)
            .collect()
    }

    /// Restricts the snapshot to one site: objects passing `hosted`,
    /// matrix rows and links touching `node`. This is what
    /// `Federation::site_telemetry` serves.
    #[must_use]
    pub fn for_site(&self, node: NodeId, hosted: impl Fn(ObjectId) -> bool) -> TelemetrySnapshot {
        let mut out = self.clone();
        out.objects.retain(|id, _| hosted(*id));
        out.calls.retain(|(s, d), _| *s == node || *d == node);
        out.links.retain(|(s, d), _| *s == node || *d == node);
        out
    }

    /// Folds `other` into this snapshot — the fleet-level aggregation
    /// the `mrom-fleet` harness uses to combine per-site slices (from
    /// [`TelemetrySnapshot::for_site`] or per-process recorders) into
    /// one fleet view.
    ///
    /// Counters (invocations, errors, fuel totals, collisions, call
    /// matrix, link delivery/bytes) add; percentile fields are
    /// point-estimates that cannot be re-derived from two summaries, so
    /// the fold keeps the worst (maximum) observed value; the clock and
    /// head epoch advance to the newer of the two. Folding is
    /// commutative and deterministic, so a fold over `BTreeMap`-ordered
    /// slices is byte-stable.
    pub fn absorb(&mut self, other: &TelemetrySnapshot) {
        self.now_us = self.now_us.max(other.now_us);
        self.head_epoch = self.head_epoch.max(other.head_epoch);
        if self.window.is_none() {
            self.window = other.window;
        }
        for (id, p) in &other.objects {
            let mine = self.objects.entry(*id).or_default();
            mine.invocations += p.invocations;
            mine.errors += p.errors;
            mine.fuel_total += p.fuel_total;
            mine.fuel_p50 = mine.fuel_p50.max(p.fuel_p50);
            mine.fuel_p95 = mine.fuel_p95.max(p.fuel_p95);
            mine.latency_p50_ns = mine.latency_p50_ns.max(p.latency_p50_ns);
            mine.latency_p95_ns = mine.latency_p95_ns.max(p.latency_p95_ns);
            mine.busy_collisions += p.busy_collisions;
            for (site, n) in &p.remote_callers {
                *mine.remote_callers.entry(*site).or_insert(0) += n;
            }
        }
        for (pair, n) in &other.calls {
            *self.calls.entry(*pair).or_default() += n;
        }
        for (pair, p) in &other.links {
            let mine = self.links.entry(*pair).or_default();
            mine.delivered += p.delivered;
            mine.dropped += p.dropped;
            mine.bytes += p.bytes;
            mine.latency_p50_us = mine.latency_p50_us.max(p.latency_p50_us);
            mine.latency_p95_us = mine.latency_p95_us.max(p.latency_p95_us);
        }
    }

    /// The snapshot as a value tree on the stable `mrom.telemetry.v1`
    /// schema — the payload of the reflective `getTelemetry` meta-method.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let window = match &self.window {
            Some(cfg) => Value::map([
                ("epoch_micros", int(cfg.epoch_micros)),
                ("epochs", int(cfg.epochs as u64)),
                ("head_epoch", int(self.head_epoch)),
            ]),
            None => Value::Null,
        };
        let objects: Vec<Value> = self
            .objects
            .iter()
            .map(|(id, p)| {
                Value::map([
                    ("object", Value::from(id.to_string())),
                    ("profile", p.to_value()),
                ])
            })
            .collect();
        let calls: Vec<Value> = self
            .calls
            .iter()
            .map(|((src, dst), n)| {
                Value::map([
                    ("src", node_int(*src)),
                    ("dst", node_int(*dst)),
                    ("count", int(*n)),
                ])
            })
            .collect();
        let links: Vec<Value> = self
            .links
            .iter()
            .map(|((src, dst), p)| {
                Value::map([
                    ("src", node_int(*src)),
                    ("dst", node_int(*dst)),
                    ("profile", p.to_value()),
                ])
            })
            .collect();
        Value::map([
            ("schema", Value::from(TELEMETRY_SCHEMA)),
            ("mode", Value::from(self.mode)),
            ("now_us", int(self.now_us)),
            ("window", window),
            ("objects", Value::List(objects)),
            ("calls", Value::List(calls)),
            ("links", Value::List(links)),
        ])
    }

    /// Compact JSON encoding of [`TelemetrySnapshot::to_value`] —
    /// deterministic byte-for-byte for deterministic inputs.
    #[must_use]
    pub fn to_json(&self) -> String {
        to_json(&self.to_value())
    }
}

fn int(n: u64) -> Value {
    Value::Int(i64::try_from(n).unwrap_or(i64::MAX))
}

fn node_int(n: NodeId) -> Value {
    Value::Int(i64::try_from(n.0).unwrap_or(i64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_window() -> WindowState {
        let mut w = WindowState::new(WindowConfig::new(1000, 4));
        let a = ObjectId::SYSTEM;
        {
            let b = w.bucket_at(100).unwrap();
            let s = b.objects.entry(a).or_default();
            s.invocations = 3;
            s.fuel.record(10);
            s.fuel.record(100);
            s.fuel.record(100);
            s.busy_collisions = 1;
            *b.calls.entry((NodeId(1), NodeId(2))).or_insert(0) += 2;
            let l = b.links.entry((NodeId(1), NodeId(2))).or_default();
            l.delivered = 2;
            l.bytes = 64;
            l.latency_us.record(500);
        }
        {
            let b = w.bucket_at(1100).unwrap();
            let s = b.objects.entry(a).or_default();
            s.invocations = 2;
            s.errors = 1;
            s.fuel.record(100);
        }
        w
    }

    #[test]
    fn collect_folds_buckets_and_computes_quantiles() {
        let w = seeded_window();
        let snap = TelemetrySnapshot::collect(ObsMode::Ring, 1100, Some(&w));
        let p = snap.objects.get(&ObjectId::SYSTEM).unwrap();
        assert_eq!(p.invocations, 5);
        assert_eq!(p.errors, 1);
        assert_eq!(p.fuel_total, 310);
        // Samples 10,100,100,100: p50 and p95 land in the 100 bucket
        // (upper bound 127).
        assert_eq!(p.fuel_p50, 127);
        assert_eq!(p.fuel_p95, 127);
        assert_eq!(p.busy_collisions, 1);
        assert_eq!(snap.calls.get(&(NodeId(1), NodeId(2))), Some(&2));
        let l = snap.links.get(&(NodeId(1), NodeId(2))).unwrap();
        assert_eq!(l.delivered, 2);
        assert_eq!(l.delivered_per_1k(), 1000);
        assert_eq!(l.latency_p50_us, 511);
    }

    #[test]
    fn hot_objects_orders_by_count_then_id() {
        let mut snap = TelemetrySnapshot::default();
        let a = ObjectId::SYSTEM;
        snap.objects.entry(a).or_default().invocations = 5;
        let hot = snap.hot_objects(10);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].0, a);
        assert!(snap.hot_objects(0).is_empty());
    }

    #[test]
    fn json_is_deterministic_and_schema_stamped() {
        let w = seeded_window();
        let one = TelemetrySnapshot::collect(ObsMode::Ring, 1100, Some(&w)).to_json();
        let two = TelemetrySnapshot::collect(ObsMode::Ring, 1100, Some(&w)).to_json();
        assert_eq!(one, two);
        assert!(one.contains("\"schema\":\"mrom.telemetry.v1\""));
        assert!(one.contains("\"window\":{"));
    }

    #[test]
    fn unwindowed_snapshot_is_empty_but_complete() {
        let snap = TelemetrySnapshot::collect(ObsMode::Full, 7, None);
        assert!(snap.objects.is_empty());
        let json = snap.to_json();
        assert!(json.contains("\"window\":null"));
        assert!(json.contains("\"now_us\":7"));
    }

    #[test]
    fn for_site_filters_objects_and_edges() {
        let w = seeded_window();
        let snap = TelemetrySnapshot::collect(ObsMode::Ring, 1100, Some(&w));
        let site3 = snap.for_site(NodeId(3), |_| false);
        assert!(site3.objects.is_empty());
        assert!(site3.calls.is_empty());
        assert!(site3.links.is_empty());
        let site1 = snap.for_site(NodeId(1), |_| true);
        assert_eq!(site1.calls.len(), 1);
        assert_eq!(site1.links.len(), 1);
    }

    #[test]
    fn absorb_adds_counters_and_keeps_worst_percentiles() {
        let w = seeded_window();
        let snap = TelemetrySnapshot::collect(ObsMode::Ring, 1100, Some(&w));

        // A slice of a site the traffic never touched is empty, and
        // folding it in must round-trip the full picture unchanged.
        let mut folded = snap.for_site(NodeId(1), |_| true);
        folded.absorb(&snap.for_site(NodeId(3), |_| false));
        assert_eq!(folded.objects, snap.objects);
        assert_eq!(folded.calls, snap.calls);
        assert_eq!(folded.links, snap.links);
        assert_eq!(folded.now_us, snap.now_us);

        // Overlapping profiles: counters add, percentiles take the max.
        let mut twice = snap.clone();
        twice.absorb(&snap);
        let one = snap.objects.get(&ObjectId::SYSTEM).unwrap();
        let two = twice.objects.get(&ObjectId::SYSTEM).unwrap();
        assert_eq!(two.invocations, 2 * one.invocations);
        assert_eq!(two.fuel_total, 2 * one.fuel_total);
        assert_eq!(two.fuel_p95, one.fuel_p95);
        assert_eq!(
            twice.calls.get(&(NodeId(1), NodeId(2))),
            Some(&(2 * snap.calls[&(NodeId(1), NodeId(2))]))
        );
        let l1 = snap.links.get(&(NodeId(1), NodeId(2))).unwrap();
        let l2 = twice.links.get(&(NodeId(1), NodeId(2))).unwrap();
        assert_eq!(l2.bytes, 2 * l1.bytes);
        assert_eq!(l2.latency_p50_us, l1.latency_p50_us);
    }

    #[test]
    fn absorb_is_commutative_over_disjoint_slices() {
        let w = seeded_window();
        let snap = TelemetrySnapshot::collect(ObsMode::Ring, 1100, Some(&w));
        let a = snap.for_site(NodeId(1), |_| true);
        let b = snap.for_site(NodeId(3), |_| false);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        // Mode is a label, not an aggregate; compare the data fields.
        assert_eq!(ab.objects, ba.objects);
        assert_eq!(ab.calls, ba.calls);
        assert_eq!(ab.links, ba.links);
        assert_eq!(ab.to_json(), ba.to_json());
    }
}
