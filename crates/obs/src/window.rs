//! Sliding-window aggregation: a ring of virtual-time epoch buckets.
//!
//! The cumulative [`Metrics`](crate::Metrics) registry answers "what has
//! happened since reset"; the window answers "what is happening *now*".
//! Samples are bucketed by **virtual time** (the simulated clock the
//! `SimNet` advances deterministically), so two runs of the same seeded
//! scenario produce byte-identical windows — the property the telemetry
//! determinism tests pin down.
//!
//! The window is a ring of `epochs` buckets, each covering
//! `epoch_micros` of virtual time. Advancing time lazily retires stale
//! buckets: a bucket is reused (cleared) the first time a sample lands in
//! its slot under a newer epoch number, and samples older than the
//! retained span are dropped on the floor. Nothing here allocates on the
//! steady state beyond the per-object/per-link BTreeMap entries.
//!
//! Windowing is **off by default**: the recorder only touches this module
//! when a [`WindowConfig`] has been installed *and* recording is enabled,
//! so the disabled fast path stays one thread-local byte-load and the
//! plain Ring/Full paths pay one `Option` check inside code that already
//! records events.

use std::collections::BTreeMap;

use mrom_value::{NodeId, ObjectId};

use crate::metrics::Histogram;

/// Shape of the sliding window: `epochs` buckets of `epoch_micros`
/// virtual microseconds each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one epoch bucket in virtual microseconds (min 1).
    pub epoch_micros: u64,
    /// Number of epoch buckets retained (min 1).
    pub epochs: usize,
    /// Also attribute each remote invocation to its requesting site in
    /// per-object caller maps (the Advisor's placement input). Off by
    /// default: the maps cost one `BTreeMap` entry per (object, caller
    /// site) pair, and snapshots taken without them stay byte-identical
    /// to pre-advisor telemetry.
    pub track_callers: bool,
}

impl WindowConfig {
    /// The default window: 8 buckets of 1 virtual second.
    pub const DEFAULT: WindowConfig = WindowConfig {
        epoch_micros: 1_000_000,
        epochs: 8,
        track_callers: false,
    };

    /// A window with the given shape (both dimensions clamped to ≥ 1).
    #[must_use]
    pub fn new(epoch_micros: u64, epochs: usize) -> WindowConfig {
        WindowConfig {
            epoch_micros: epoch_micros.max(1),
            epochs: epochs.max(1),
            track_callers: false,
        }
    }

    /// Enables per-object remote-caller attribution (see
    /// [`WindowConfig::track_callers`]).
    #[must_use]
    pub fn with_callers(mut self) -> WindowConfig {
        self.track_callers = true;
        self
    }

    /// Virtual time span the full window covers, in microseconds.
    #[must_use]
    pub fn span_micros(&self) -> u64 {
        self.epoch_micros.saturating_mul(self.epochs as u64)
    }
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig::DEFAULT
    }
}

/// Windowed per-object tallies (one epoch bucket's worth).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectWindowStats {
    /// Applications with this object as receiver in this epoch.
    pub invocations: u64,
    /// Of those, how many returned an error.
    pub errors: u64,
    /// Fuel consumed per application.
    pub fuel: Histogram,
    /// Wall-clock application latency (Full mode only — Ring mode reads
    /// no clocks, so this stays empty and the window stays deterministic).
    pub latency_ns: Histogram,
    /// Shared-runtime checkout collisions against this object.
    pub busy_collisions: u64,
    /// Remote invocation requests per requesting site (only fed when the
    /// window was configured with [`WindowConfig::with_callers`]): which
    /// sites are pulling on this object, the dominant-caller signal the
    /// placement Advisor steers by. One entry per logical `remote_invoke`
    /// issued, counted at the sender, regardless of retries or outcome.
    pub remote_callers: BTreeMap<NodeId, u64>,
}

/// Windowed per-link delivery tallies (one epoch bucket's worth).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkWindowStats {
    /// Messages delivered over this link in this epoch.
    pub delivered: u64,
    /// Messages dropped (loss, partition, crashed receiver).
    pub dropped: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Virtual wire latency per delivered message, in microseconds.
    pub latency_us: Histogram,
}

/// One epoch's worth of samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochBucket {
    /// The epoch number this bucket currently holds (virtual time /
    /// `epoch_micros`).
    pub epoch: u64,
    /// Per-receiver invocation tallies.
    pub objects: BTreeMap<ObjectId, ObjectWindowStats>,
    /// Site-to-site call matrix: `(src, dst)` → invocations requested.
    /// The diagonal counts invocations *executed at* that site (local
    /// and remotely-requested alike); off-diagonal entries count
    /// cross-site `invoke_req` sends.
    pub calls: BTreeMap<(NodeId, NodeId), u64>,
    /// Per-link delivery tallies.
    pub links: BTreeMap<(NodeId, NodeId), LinkWindowStats>,
}

/// The live window: a ring of epoch buckets plus the head epoch.
#[derive(Debug, Clone)]
pub struct WindowState {
    cfg: WindowConfig,
    buckets: Vec<EpochBucket>,
    head: u64,
}

impl WindowState {
    /// An empty window of the given shape.
    #[must_use]
    pub fn new(cfg: WindowConfig) -> WindowState {
        WindowState {
            cfg,
            buckets: vec![EpochBucket::default(); cfg.epochs],
            head: 0,
        }
    }

    /// The window's shape.
    #[must_use]
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// The newest epoch any sample has landed in.
    #[must_use]
    pub fn head_epoch(&self) -> u64 {
        self.head
    }

    /// Drops every sample, keeping the shape.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = EpochBucket::default();
        }
        self.head = 0;
    }

    /// The bucket a sample stamped `now_us` belongs to, or `None` when
    /// the sample is older than the retained span. Reuses (clearing) the
    /// slot the first time a newer epoch claims it.
    pub fn bucket_at(&mut self, now_us: u64) -> Option<&mut EpochBucket> {
        let epoch = now_us / self.cfg.epoch_micros;
        if epoch + self.cfg.epochs as u64 <= self.head {
            return None;
        }
        self.head = self.head.max(epoch);
        let slot = usize::try_from(epoch % self.cfg.epochs as u64).unwrap_or(0);
        let bucket = &mut self.buckets[slot];
        if bucket.epoch != epoch {
            *bucket = EpochBucket {
                epoch,
                ..EpochBucket::default()
            };
        }
        Some(bucket)
    }

    /// The buckets still inside the retained span, oldest epoch first.
    /// Stale slots (overwritten-pending) and empty defaults are skipped
    /// unless they genuinely belong to the live span.
    #[must_use]
    pub fn live_buckets(&self) -> Vec<&EpochBucket> {
        let oldest = self.head.saturating_sub(self.cfg.epochs as u64 - 1);
        let mut live: Vec<&EpochBucket> = self
            .buckets
            .iter()
            .filter(|b| b.epoch >= oldest && b.epoch <= self.head)
            .collect();
        live.sort_by_key(|b| b.epoch);
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(w: &mut WindowState, now_us: u64, id: ObjectId) -> bool {
        match w.bucket_at(now_us) {
            Some(b) => {
                b.objects.entry(id).or_default().invocations += 1;
                true
            }
            None => false,
        }
    }

    #[test]
    fn samples_land_in_their_epoch() {
        let mut w = WindowState::new(WindowConfig::new(1000, 4));
        assert!(touch(&mut w, 0, ObjectId::SYSTEM));
        assert!(touch(&mut w, 999, ObjectId::SYSTEM));
        assert!(touch(&mut w, 1000, ObjectId::SYSTEM));
        let live = w.live_buckets();
        let counts: Vec<u64> = live
            .iter()
            .filter_map(|b| b.objects.get(&ObjectId::SYSTEM))
            .map(|o| o.invocations)
            .collect();
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn old_epochs_are_retired_and_slots_reused() {
        let mut w = WindowState::new(WindowConfig::new(1000, 2));
        assert!(touch(&mut w, 0, ObjectId::SYSTEM)); // epoch 0, slot 0
        assert!(touch(&mut w, 1000, ObjectId::SYSTEM)); // epoch 1, slot 1
        assert!(touch(&mut w, 2000, ObjectId::SYSTEM)); // epoch 2 reuses slot 0
                                                        // Epoch 0 has left the window; a late sample for it is dropped.
        assert!(!touch(&mut w, 500, ObjectId::SYSTEM));
        let live = w.live_buckets();
        let epochs: Vec<u64> = live.iter().map(|b| b.epoch).collect();
        assert_eq!(epochs, vec![1, 2]);
        assert_eq!(w.head_epoch(), 2);
    }

    #[test]
    fn jumping_far_ahead_empties_the_window() {
        let mut w = WindowState::new(WindowConfig::new(1000, 3));
        assert!(touch(&mut w, 0, ObjectId::SYSTEM));
        assert!(touch(&mut w, 100_000, ObjectId::SYSTEM)); // epoch 100
        let live = w.live_buckets();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].epoch, 100);
    }

    #[test]
    fn clear_keeps_the_shape() {
        let mut w = WindowState::new(WindowConfig::new(10, 2));
        assert!(touch(&mut w, 25, ObjectId::SYSTEM));
        w.clear();
        assert_eq!(w.head_epoch(), 0);
        assert!(w
            .live_buckets()
            .iter()
            .all(|b| b.objects.is_empty() && b.calls.is_empty() && b.links.is_empty()));
        assert_eq!(w.config(), WindowConfig::new(10, 2));
    }

    #[test]
    fn config_clamps_to_sane_minimums() {
        let cfg = WindowConfig::new(0, 0);
        assert_eq!(cfg.epoch_micros, 1);
        assert_eq!(cfg.epochs, 1);
        assert_eq!(WindowConfig::DEFAULT.span_micros(), 8_000_000);
    }
}
