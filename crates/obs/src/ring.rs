//! The bounded flight-recorder ring buffer.
//!
//! Keeps the last `capacity` trace events; older ones are overwritten and
//! counted, never reallocated past the cap. Analogous to an aircraft
//! flight recorder: always cheap to keep on, and the recent past is what
//! a post-mortem needs.

use std::collections::VecDeque;

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// Default number of events retained (per thread-local recorder).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A bounded ring of [`TraceEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    overwritten: u64,
}

impl FlightRecorder {
    /// Creates a ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            overwritten: 0,
        }
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room since creation / last clear.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The retention cap.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops all retained events and resets the eviction counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.overwritten = 0;
    }

    /// Copies out the retained events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            event: Event {
                seq,
                trace: 1,
                span: 0,
                parent: 0,
                thread: None,
                at_us: 0,
            },
            kind: EventKind::ScriptRun {
                fuel_used: seq,
                host_calls: 0,
            },
        }
    }

    #[test]
    fn ring_keeps_only_the_most_recent() {
        let mut ring = FlightRecorder::with_capacity(3);
        for seq in 0..5 {
            ring.record(&ev(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 2);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|t| t.event.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn clear_resets_contents_and_counter() {
        let mut ring = FlightRecorder::with_capacity(2);
        ring.record(&ev(0));
        ring.record(&ev(1));
        ring.record(&ev(2));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.overwritten(), 0);
        assert_eq!(ring.capacity(), 2);
    }
}
