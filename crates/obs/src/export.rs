//! Chrome `trace_event` export for flight-recorder / `VecSink` contents.
//!
//! [`chrome_trace`] renders a slice of [`TraceEvent`]s as the JSON-array
//! flavour of the Trace Event Format, which `chrome://tracing` and
//! Perfetto open directly:
//!
//! * span-opening/closing kinds (`invoke_start`/`invoke_end`,
//!   `fed_op_start`/`fed_op_end`) become `B`/`E` duration events, so an
//!   invocation tower renders as a nested flame;
//! * every other kind becomes an `i` instant event;
//! * timestamps are the **virtual-time** stamps on the event envelope
//!   (microseconds — exactly the unit the format expects), so a seeded
//!   simulation exports the same trace every run;
//! * recorder thread labels map to `tid`s (0 = the unlabeled main
//!   thread), each announced by a `thread_name` metadata event.
//!
//! [`validate_chrome_trace`] is the minimal checker the CLI smoke test
//! uses: structural JSON-array sanity plus the per-event required keys
//! and balanced `B`/`E` pairs. It is not a JSON parser — just enough to
//! catch a malformed export before a human pastes it into a viewer.

use std::collections::BTreeMap;

use mrom_value::Value;

use crate::event::{EventKind, TraceEvent};
use crate::json::to_json;

/// Renders events as a Chrome `trace_event` JSON array (see module docs).
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut tids: BTreeMap<String, i64> = BTreeMap::new();
    let mut records: Vec<Value> = Vec::new();
    for te in events {
        let label = te.event.thread.as_deref().unwrap_or("main");
        let next = i64::try_from(tids.len()).unwrap_or(i64::MAX);
        let tid = match tids.get(label) {
            Some(tid) => *tid,
            None => {
                tids.insert(label.to_owned(), next);
                records.push(Value::map([
                    ("ph", Value::from("M")),
                    ("pid", Value::Int(1)),
                    ("tid", Value::Int(next)),
                    ("name", Value::from("thread_name")),
                    ("args", Value::map([("name", Value::from(label))])),
                ]));
                next
            }
        };
        let (ph, name) = phase_and_name(&te.kind);
        let ts = i64::try_from(te.event.at_us).unwrap_or(i64::MAX);
        let mut fields = vec![
            ("ph", Value::from(ph)),
            ("pid", Value::Int(1)),
            ("tid", Value::Int(tid)),
            ("ts", Value::Int(ts)),
            ("name", Value::from(name)),
            (
                "args",
                Value::map([
                    ("seq", int(te.event.seq)),
                    ("trace", int(te.event.trace)),
                    ("span", int(te.event.span)),
                    ("parent", int(te.event.parent)),
                    ("text", Value::from(te.to_string())),
                ]),
            ),
        ];
        if ph == "i" {
            // Thread-scoped instant, so it renders on its track.
            fields.push(("s", Value::from("t")));
        }
        records.push(Value::Map(
            fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        ));
    }
    to_json(&Value::List(records))
}

/// Phase letter and display name for one event kind.
fn phase_and_name(kind: &EventKind) -> (&'static str, String) {
    match kind {
        EventKind::InvokeStart { method, .. } => ("B", format!("invoke {method}")),
        EventKind::InvokeEnd { method, .. } => ("E", format!("invoke {method}")),
        EventKind::FedOpStart { op, .. } => ("B", format!("fed {op}")),
        EventKind::FedOpEnd { op, .. } => ("E", format!("fed {op}")),
        other => ("i", other.tag().to_owned()),
    }
}

fn int(n: u64) -> Value {
    Value::Int(i64::try_from(n).unwrap_or(i64::MAX))
}

/// Minimal structural check of a Chrome `trace_event` JSON array:
/// array-shaped, every record an object carrying `ph`/`pid`/`tid`/`name`
/// (plus `ts` for non-metadata phases), only known phase letters, and
/// balanced `B`/`E` counts. Returns the number of records.
///
/// # Errors
///
/// A human-readable description of the first structural violation.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let trimmed = json.trim();
    if !trimmed.starts_with('[') || !trimmed.ends_with(']') {
        return Err("trace must be a JSON array".to_owned());
    }
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut object_start: Option<usize> = None;
    let mut records = 0usize;
    let mut begins = 0usize;
    let mut ends = 0usize;
    for (i, c) in trimmed.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                depth += 1;
                if depth == 2 && object_start.is_none() {
                    object_start = Some(i);
                }
            }
            '}' => {
                if depth == 0 {
                    return Err(format!("unbalanced '}}' at byte {i}"));
                }
                depth -= 1;
                if depth == 1 {
                    let start = object_start.take().ok_or("record closed before opening")?;
                    let record = &trimmed[start..=i];
                    let ph = check_record(record, records)?;
                    match ph {
                        'B' => begins += 1,
                        'E' => ends += 1,
                        _ => {}
                    }
                    records += 1;
                }
            }
            '[' => depth += 1,
            ']' => {
                if depth == 0 {
                    return Err(format!("unbalanced ']' at byte {i}"));
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err("unterminated structure".to_owned());
    }
    if begins != ends {
        return Err(format!("unbalanced spans: {begins} B vs {ends} E"));
    }
    Ok(records)
}

/// Checks one record's required keys; returns its phase letter.
fn check_record(record: &str, index: usize) -> Result<char, String> {
    let ph = record
        .split("\"ph\":\"")
        .nth(1)
        .and_then(|rest| rest.chars().next())
        .ok_or(format!("record {index}: missing \"ph\""))?;
    if !matches!(ph, 'B' | 'E' | 'i' | 'M' | 'X' | 'C') {
        return Err(format!("record {index}: unknown phase {ph:?}"));
    }
    for key in ["\"pid\":", "\"tid\":", "\"name\":"] {
        if !record.contains(key) {
            return Err(format!("record {index}: missing {key}"));
        }
    }
    if ph != 'M' && !record.contains("\"ts\":") {
        return Err(format!("record {index}: missing \"ts\""));
    }
    Ok(ph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use mrom_value::ObjectId;

    fn start(seq: u64, at_us: u64) -> TraceEvent {
        TraceEvent {
            event: Event {
                seq,
                trace: 1,
                span: seq + 1,
                parent: 0,
                thread: None,
                at_us,
            },
            kind: EventKind::InvokeStart {
                object: ObjectId::SYSTEM,
                method: "work".into(),
                caller: ObjectId::SYSTEM,
                level: 0,
            },
        }
    }

    fn end(seq: u64, at_us: u64) -> TraceEvent {
        TraceEvent {
            event: Event {
                seq,
                trace: 1,
                span: seq,
                parent: 0,
                thread: None,
                at_us,
            },
            kind: EventKind::InvokeEnd {
                object: ObjectId::SYSTEM,
                method: "work".into(),
                outcome: "ok",
                fuel_used: 9,
            },
        }
    }

    #[test]
    fn exports_spans_and_instants_that_validate() {
        let mut lookup = start(1, 10);
        lookup.kind = EventKind::Lookup {
            object: ObjectId::SYSTEM,
            method: "work".into(),
            cache_hit: true,
            found: true,
        };
        let events = vec![start(0, 10), lookup, end(2, 250)];
        let json = chrome_trace(&events);
        assert!(json.starts_with('['));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":250"));
        assert!(json.contains("\"name\":\"invoke work\""));
        // One thread_name metadata record plus the three events.
        assert_eq!(validate_chrome_trace(&json), Ok(4));
    }

    #[test]
    fn thread_labels_get_their_own_tids() {
        let mut a = start(0, 5);
        a.event.thread = Some("site-1-w0".into());
        let mut b = end(1, 6);
        b.event.thread = Some("site-1-w0".into());
        let json = chrome_trace(&[a, b, start(2, 7), end(3, 8)]);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"site-1-w0\""));
        // Two distinct tids announced.
        assert_eq!(validate_chrome_trace(&json), Ok(6));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[{\"ph\":\"B\",\"pid\":1}]").is_err());
        assert!(
            validate_chrome_trace("[{\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1,\"name\":\"x\"}]")
                .is_err(),
            "unbalanced B without E must fail"
        );
        assert!(validate_chrome_trace(
            "[{\"ph\":\"?\",\"pid\":1,\"tid\":0,\"ts\":1,\"name\":\"x\"}]"
        )
        .is_err());
        assert_eq!(validate_chrome_trace("[]"), Ok(0));
    }

    #[test]
    fn deterministic_for_identical_input() {
        let events = vec![start(0, 1), end(1, 2)];
        assert_eq!(chrome_trace(&events), chrome_trace(&events));
    }
}
