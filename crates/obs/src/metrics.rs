//! The metrics registry: counters and fixed-bucket histograms per
//! subsystem, plus per-object tallies backing the reflective `getStats`
//! surface.
//!
//! Everything here is plain `u64` arithmetic on thread-local state — no
//! atomics, no locks — because the whole reproduction is single-threaded
//! per simulated world. Snapshots are cheap structural clones and can be
//! exported as a [`Value`] tree (and from there as JSON).

use std::collections::BTreeMap;

use mrom_value::{ObjectId, Value};

/// Number of power-of-two buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` (bucket 0 additionally
/// holds 0). Thirty-two buckets cover ~4.3 seconds at nanosecond
/// resolution and any realistic fuel charge, with no allocation ever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (63 - (sample | 1).leading_zeros()) as usize;
        self.buckets[idx.min(HISTOGRAM_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts (bucket `i` = samples in `[2^i, 2^(i+1))`).
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Folds `other` into `self` bucket-by-bucket (how the telemetry
    /// window aggregates per-epoch histograms into one profile).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The `q`-quantile as the upper bound of the log bucket the
    /// cumulative count crosses `ceil(q · count)` in (0 when empty).
    /// Exact to within one power of two — the resolution the telemetry
    /// p50/p95 columns quote.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_sign_loss,
            clippy::cast_possible_truncation
        )]
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// Snapshot as a value tree: count, sum, mean, and the non-empty
    /// buckets as `[upper_bound, count]` pairs.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                let hi = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                Value::list([int(hi), int(*n)])
            })
            .collect();
        Value::map([
            ("count", int(self.count)),
            ("sum", int(self.sum)),
            ("mean", int(self.mean())),
            ("buckets", Value::List(buckets)),
        ])
    }
}

/// Converts a `u64` counter into a `Value::Int`, saturating at `i64::MAX`.
fn int(n: u64) -> Value {
    Value::Int(i64::try_from(n).unwrap_or(i64::MAX))
}

/// Counters for the Lookup → Match → Apply invocation machinery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvokeMetrics {
    /// Applications entered (one per tower level traversed).
    pub invocations: u64,
    /// Applications that returned an error.
    pub errors: u64,
    /// Lookups answered by the dispatch cache.
    pub cache_hits: u64,
    /// Lookups that fell back to full resolution.
    pub cache_misses: u64,
    /// Match-phase ACL checks that allowed.
    pub acl_allowed: u64,
    /// Match-phase ACL checks that denied.
    pub acl_denied: u64,
    /// Pre-procedures that passed.
    pub pre_pass: u64,
    /// Pre-procedures that vetoed.
    pub pre_veto: u64,
    /// Post-procedures that passed.
    pub post_pass: u64,
    /// Post-procedures that vetoed.
    pub post_veto: u64,
    /// Reflective meta-operations performed.
    pub meta_ops: u64,
    /// Dispatches routed through a meta-invoke level.
    pub tower_descents: u64,
    /// Deepest tower (in levels) seen on any dispatch.
    pub max_tower_depth: u64,
    /// Wall-clock latency of applications, in nanoseconds (Full mode only).
    pub latency_ns: Histogram,
    /// Fuel consumed per application.
    pub fuel: Histogram,
}

impl InvokeMetrics {
    fn to_value(&self) -> Value {
        Value::map([
            ("invocations", int(self.invocations)),
            ("errors", int(self.errors)),
            ("cache_hits", int(self.cache_hits)),
            ("cache_misses", int(self.cache_misses)),
            ("acl_allowed", int(self.acl_allowed)),
            ("acl_denied", int(self.acl_denied)),
            ("pre_pass", int(self.pre_pass)),
            ("pre_veto", int(self.pre_veto)),
            ("post_pass", int(self.post_pass)),
            ("post_veto", int(self.post_veto)),
            ("meta_ops", int(self.meta_ops)),
            ("tower_descents", int(self.tower_descents)),
            ("max_tower_depth", int(self.max_tower_depth)),
            ("latency_ns", self.latency_ns.to_value()),
            ("fuel", self.fuel.to_value()),
        ])
    }
}

/// Counters for script-method execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScriptMetrics {
    /// Script bodies executed.
    pub runs: u64,
    /// Host calls (`self.…`, world ops) performed by script bodies.
    pub host_calls: u64,
    /// Fuel charged by the evaluator, per body.
    pub fuel: Histogram,
    /// Inline-cache hits at `self.*` data-access sites (VM engine).
    pub ic_hits: u64,
    /// Inline-cache misses at `self.*` data-access sites (VM engine).
    pub ic_misses: u64,
}

impl ScriptMetrics {
    fn to_value(&self) -> Value {
        Value::map([
            ("runs", int(self.runs)),
            ("host_calls", int(self.host_calls)),
            ("fuel", self.fuel.to_value()),
            ("ic_hits", int(self.ic_hits)),
            ("ic_misses", int(self.ic_misses)),
        ])
    }
}

/// Counters for migration image encode / decode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrateMetrics {
    /// Images encoded.
    pub encodes: u64,
    /// Bytes produced by encoding.
    pub bytes_out: u64,
    /// Decode attempts.
    pub decodes: u64,
    /// Decode attempts that failed (framing, versioning, admission).
    pub decode_errors: u64,
    /// Bytes consumed by decode attempts.
    pub bytes_in: u64,
}

impl MigrateMetrics {
    fn to_value(&self) -> Value {
        Value::map([
            ("encodes", int(self.encodes)),
            ("bytes_out", int(self.bytes_out)),
            ("decodes", int(self.decodes)),
            ("decode_errors", int(self.decode_errors)),
            ("bytes_in", int(self.bytes_in)),
        ])
    }
}

/// Counters for the persistence depot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistMetrics {
    /// Images written to the depot.
    pub saves: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Restore attempts.
    pub restores: u64,
    /// Restore attempts that failed for any reason.
    pub restore_errors: u64,
    /// Failures classified as corruption (CRC / framing).
    pub corruptions: u64,
}

impl PersistMetrics {
    fn to_value(&self) -> Value {
        Value::map([
            ("saves", int(self.saves)),
            ("bytes_written", int(self.bytes_written)),
            ("restores", int(self.restores)),
            ("restore_errors", int(self.restore_errors)),
            ("corruptions", int(self.corruptions)),
        ])
    }
}

/// Counters for the mobile-code admission analyzer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionMetrics {
    /// Objects analyzed.
    pub checked: u64,
    /// Objects accepted.
    pub accepted: u64,
    /// Objects rejected (Strict policy).
    pub rejected: u64,
    /// Total diagnostics produced across all analyses.
    pub findings: u64,
}

impl AdmissionMetrics {
    fn to_value(&self) -> Value {
        Value::map([
            ("checked", int(self.checked)),
            ("accepted", int(self.accepted)),
            ("rejected", int(self.rejected)),
            ("findings", int(self.findings)),
        ])
    }
}

/// Counters for the shared (concurrent) runtime's object table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedMetrics {
    /// Checkout attempts refused because the target was already checked
    /// out by a concurrent invocation.
    pub busy_collisions: u64,
    /// Collisions where the in-flight and incoming methods' effect
    /// signatures were provably disjoint — serializing them was a
    /// conservative loss, not a correctness requirement. A high ratio
    /// here is the signal that finer-grained (per-signature) locking
    /// would pay off.
    pub disjoint_collisions: u64,
    /// Collisions where the signatures overlapped or could not be
    /// compared: mutual exclusion was required for correctness.
    pub overlapping_collisions: u64,
}

impl SharedMetrics {
    fn to_value(&self) -> Value {
        Value::map([
            ("busy_collisions", int(self.busy_collisions)),
            ("disjoint_collisions", int(self.disjoint_collisions)),
            ("overlapping_collisions", int(self.overlapping_collisions)),
        ])
    }
}

/// Counters for HADAS federation traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FederationMetrics {
    /// Protocol messages posted.
    pub sends: u64,
    /// Protocol messages received and decoded.
    pub receives: u64,
    /// Bytes posted.
    pub bytes_sent: u64,
    /// Calls relayed through an ambassador to its origin.
    pub ambassador_relays: u64,
    /// Whole-object migrations dispatched.
    pub objects_dispatched: u64,
    /// Whole-object migrations adopted.
    pub objects_adopted: u64,
    /// Requests re-posted after a timeout.
    pub retries: u64,
    /// Duplicate requests answered from a receiver's reply cache.
    pub dedup_hits: u64,
    /// Sites crashed (volatile state lost).
    pub site_crashes: u64,
    /// Sites restarted from their depot.
    pub site_restarts: u64,
}

impl FederationMetrics {
    fn to_value(&self) -> Value {
        Value::map([
            ("sends", int(self.sends)),
            ("receives", int(self.receives)),
            ("bytes_sent", int(self.bytes_sent)),
            ("ambassador_relays", int(self.ambassador_relays)),
            ("objects_dispatched", int(self.objects_dispatched)),
            ("objects_adopted", int(self.objects_adopted)),
            ("retries", int(self.retries)),
            ("dedup_hits", int(self.dedup_hits)),
            ("site_crashes", int(self.site_crashes)),
            ("site_restarts", int(self.site_restarts)),
        ])
    }
}

/// Counters for the simulated network substrate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Messages accepted by `SimNet::send`.
    pub sends: u64,
    /// Messages dropped (loss, partition, or crashed node).
    pub drops: u64,
    /// Messages delivered to a handler.
    pub deliveries: u64,
    /// Extra copies injected by link duplication faults.
    pub duplicates: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
}

impl NetMetrics {
    fn to_value(&self) -> Value {
        Value::map([
            ("sends", int(self.sends)),
            ("drops", int(self.drops)),
            ("deliveries", int(self.deliveries)),
            ("duplicates", int(self.duplicates)),
            ("bytes_delivered", int(self.bytes_delivered)),
        ])
    }
}

/// Per-object behavioural tallies — the data behind `getStats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectStats {
    /// Applications where this object was the receiver.
    pub invocations: u64,
    /// Of those, how many returned an error.
    pub errors: u64,
    /// Fuel consumed while this object was the receiver.
    pub fuel_used: u64,
    /// Meta-operations performed on this object.
    pub meta_ops: u64,
    /// ACL denials suffered by callers of this object.
    pub acl_denied: u64,
    /// The selector of the most recent application.
    pub last_method: String,
}

impl ObjectStats {
    /// Snapshot as a value tree.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::map([
            ("invocations", int(self.invocations)),
            ("errors", int(self.errors)),
            ("fuel_used", int(self.fuel_used)),
            ("meta_ops", int(self.meta_ops)),
            ("acl_denied", int(self.acl_denied)),
            ("last_method", Value::from(self.last_method.as_str())),
        ])
    }

    /// The schema of [`ObjectStats::to_value`]: field name → description.
    /// Used by `statsObject()` to populate the fixed (schema) section.
    #[must_use]
    pub fn schema() -> &'static [(&'static str, &'static str)] {
        &[
            ("invocations", "applications with this object as receiver"),
            ("errors", "applications that returned an error"),
            ("fuel_used", "fuel consumed while this object was receiver"),
            ("meta_ops", "reflective meta-operations performed"),
            ("acl_denied", "ACL denials suffered by callers"),
            ("last_method", "selector of the most recent application"),
        ]
    }
}

/// The full registry: one struct per subsystem plus per-object tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Invocation machinery.
    pub invoke: InvokeMetrics,
    /// Script execution.
    pub script: ScriptMetrics,
    /// Migration encode / decode.
    pub migrate: MigrateMetrics,
    /// Persistence depot.
    pub persist: PersistMetrics,
    /// Admission analysis.
    pub admission: AdmissionMetrics,
    /// Shared-runtime object table.
    pub shared: SharedMetrics,
    /// HADAS federation.
    pub federation: FederationMetrics,
    /// Simulated network.
    pub net: NetMetrics,
    /// Per-object tallies, keyed by receiver identity.
    pub per_object: BTreeMap<ObjectId, ObjectStats>,
}

impl Metrics {
    /// Mutable per-object entry, created on first touch.
    pub fn object_mut(&mut self, id: ObjectId) -> &mut ObjectStats {
        self.per_object.entry(id).or_default()
    }

    /// Snapshot of the whole registry as a value tree (JSON-exportable).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let objects: Vec<Value> = self
            .per_object
            .iter()
            .map(|(id, stats)| {
                Value::map([
                    ("object", Value::from(id.to_string())),
                    ("stats", stats.to_value()),
                ])
            })
            .collect();
        Value::map([
            ("invoke", self.invoke.to_value()),
            ("script", self.script.to_value()),
            ("migrate", self.migrate.to_value()),
            ("persist", self.persist.to_value()),
            ("admission", self.admission.to_value()),
            ("shared", self.shared.to_value()),
            ("federation", self.federation.to_value()),
            ("net", self.net.to_value()),
            ("objects", Value::List(objects)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.mean(), 206);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[10], 1);
    }

    #[test]
    fn quantile_returns_bucket_upper_bounds() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram has no quantiles");
        for _ in 0..90 {
            h.record(3); // bucket 1, upper bound 3
        }
        for _ in 0..10 {
            h.record(1000); // bucket 9, upper bound 1023
        }
        assert_eq!(h.quantile(0.50), 3);
        assert_eq!(h.quantile(0.90), 3);
        assert_eq!(h.quantile(0.95), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.quantile(0.0), 3, "q=0 clamps to the first sample");
    }

    #[test]
    fn merge_folds_counts_and_sums() {
        let mut a = Histogram::default();
        a.record(2);
        let mut b = Histogram::default();
        b.record(1024);
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 2050);
        assert_eq!(a.buckets()[1], 1);
        assert_eq!(a.buckets()[10], 2);
    }

    #[test]
    fn histogram_saturates_top_bucket() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn registry_snapshot_has_all_subsystems() {
        let mut m = Metrics::default();
        m.invoke.invocations = 3;
        m.object_mut(ObjectId::SYSTEM).invocations = 3;
        let v = m.to_value();
        let Value::Map(entries) = &v else {
            panic!("snapshot must be a map")
        };
        let keys: Vec<&str> = entries.keys().map(String::as_str).collect();
        for key in [
            "invoke",
            "script",
            "migrate",
            "persist",
            "admission",
            "federation",
            "net",
            "objects",
        ] {
            assert!(keys.contains(&key), "missing subsystem {key}");
        }
    }

    #[test]
    fn object_stats_value_matches_schema() {
        let stats = ObjectStats {
            invocations: 2,
            last_method: "greet".into(),
            ..ObjectStats::default()
        };
        let Value::Map(entries) = stats.to_value() else {
            panic!("stats must be a map")
        };
        let keys: Vec<String> = entries.keys().cloned().collect();
        for (name, _) in ObjectStats::schema() {
            assert!(keys.contains(&(*name).to_owned()), "schema field {name}");
        }
    }
}
