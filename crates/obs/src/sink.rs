//! The [`TraceSink`] trait: where recorded events go.
//!
//! The recorder fans each event out to the built-in flight-recorder ring
//! and to at most one installed custom sink. A sink sees events *after*
//! the envelope (sequence, trace, span linkage) has been assigned, so it
//! can reconstruct causality without talking to the recorder.

use crate::event::TraceEvent;

/// A consumer of trace events.
///
/// Implementations must be cheap: sinks run inline on the instrumented
/// path (there is no background thread in this single-threaded model).
pub trait TraceSink {
    /// Receives one event. The recorder retains ownership; clone if the
    /// sink needs to keep it.
    fn record(&mut self, event: &TraceEvent);
}

/// A sink that appends every event to a `Vec` — useful in tests and for
/// one-shot capture from tools.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The captured events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    #[test]
    fn vec_sink_captures_in_order() {
        let mut sink = VecSink::default();
        for seq in 0..3 {
            sink.record(&TraceEvent {
                event: Event {
                    seq,
                    trace: 0,
                    span: 0,
                    parent: 0,
                    thread: None,
                    at_us: 0,
                },
                kind: EventKind::ScriptRun {
                    fuel_used: 0,
                    host_calls: 0,
                },
            });
        }
        let seqs: Vec<u64> = sink.events.iter().map(|t| t.event.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
