//! Minimal JSON rendering for [`Value`] trees.
//!
//! The offline `serde` stub cannot serialize arbitrary trees, so the
//! snapshot exporter renders JSON by hand. Output is deterministic
//! (`Value::Map` is a `BTreeMap`) and standard-conformant: strings are
//! escaped, non-finite floats become `null`, bytes become a hex string,
//! and object references render as their display form.

use mrom_value::Value;

/// Renders a value tree as compact JSON.
#[must_use]
pub fn to_json(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

/// Renders a value tree as indented JSON (two-space indent).
#[must_use]
pub fn to_json_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Bytes(b) => write_string(out, &hex(b)),
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
        Value::ObjectRef(id) => write_string(out, &id.to_string()),
    }
}

fn write_pretty(out: &mut String, value: &Value, depth: usize) {
    match value {
        Value::List(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_string(out, key);
                out.push_str(": ");
                write_pretty(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let rendered = format!("{f}");
        // `{}` on an integral f64 omits the point; keep JSON number-ness.
        out.push_str(&rendered);
        if !rendered.contains('.') && !rendered.contains('e') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(to_json(&Value::Null), "null");
        assert_eq!(to_json(&Value::Bool(true)), "true");
        assert_eq!(to_json(&Value::Int(-42)), "-42");
        assert_eq!(to_json(&Value::Float(1.5)), "1.5");
        assert_eq!(to_json(&Value::Float(2.0)), "2.0");
        assert_eq!(to_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_json(&Value::from("a\"b\nc")), "\"a\\\"b\\nc\"");
        assert_eq!(to_json(&Value::Bytes(vec![0xde, 0xad])), "\"dead\"");
    }

    #[test]
    fn containers_render_deterministically() {
        let v = Value::map([
            ("b", Value::list([Value::Int(1), Value::Null])),
            ("a", Value::Int(2)),
        ]);
        // BTreeMap sorts keys.
        assert_eq!(to_json(&v), "{\"a\":2,\"b\":[1,null]}");
    }

    #[test]
    fn pretty_output_is_indented_and_equivalent() {
        let v = Value::map([("k", Value::list([Value::Int(1)]))]);
        let pretty = to_json_pretty(&v);
        assert!(pretty.contains("\n  \"k\": [\n"));
        let compact: String = pretty.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(compact, to_json(&v).replace(": ", ":"));
    }
}
