//! The event taxonomy: everything the instrumented layers can report.
//!
//! An [`Event`] is an envelope (sequence number, trace id, span linkage)
//! around an [`EventKind`] payload. Span-opening kinds (`InvokeStart`)
//! allocate a fresh span id and push it on the recorder's span stack;
//! every other kind is attributed to the span that is open at the moment
//! it is recorded, which is how nested meta-levels produce nested spans.

use std::fmt;

use mrom_value::{NodeId, ObjectId};

/// Which wrap procedure of the Apply phase produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapStage {
    /// The pre-procedure, consulted before the body runs.
    Pre,
    /// The post-procedure, consulted after the body returns.
    Post,
}

impl WrapStage {
    /// Stable lowercase name used in dumps and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WrapStage::Pre => "pre",
            WrapStage::Post => "post",
        }
    }
}

/// The payload of one recorded event.
///
/// Field conventions: `object` is the receiver the event concerns,
/// `method` is the *selector as invoked* (a meta-level sees the base
/// method's name in its arguments, not here), and byte counts are wire
/// sizes after encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An invocation entered the Apply machinery (one per tower level).
    InvokeStart {
        /// Receiver of the invocation.
        object: ObjectId,
        /// Selector being invoked at this level.
        method: String,
        /// Identity the ACL check will run against.
        caller: ObjectId,
        /// Tower level this application runs at (0 = base level).
        level: u32,
    },
    /// The matching invocation left the Apply machinery.
    InvokeEnd {
        /// Receiver of the invocation.
        object: ObjectId,
        /// Selector that was invoked.
        method: String,
        /// `"ok"` or the error's stable label.
        outcome: &'static str,
        /// Fuel consumed between start and end (includes nested calls).
        fuel_used: u64,
    },
    /// The Lookup phase resolved a selector.
    Lookup {
        /// Receiver searched.
        object: ObjectId,
        /// Selector searched for.
        method: String,
        /// Whether the generation-stamped dispatch cache answered.
        cache_hit: bool,
        /// Whether a method was found at all.
        found: bool,
    },
    /// The Match phase consulted an item ACL.
    AclDecision {
        /// Receiver whose item was guarded.
        object: ObjectId,
        /// Selector whose `invoke_acl` was consulted.
        method: String,
        /// Identity that asked.
        caller: ObjectId,
        /// The verdict.
        allowed: bool,
    },
    /// A pre- or post-procedure returned a verdict.
    WrapVerdict {
        /// Receiver of the wrapped invocation.
        object: ObjectId,
        /// Selector whose wrap ran.
        method: String,
        /// Which wrap stage.
        stage: WrapStage,
        /// Truthy verdict lets the invocation proceed / commit.
        passed: bool,
    },
    /// A reflective meta-operation executed (`getDataItem`, `addMethod`, …).
    MetaOp {
        /// Receiver of the meta-operation.
        object: ObjectId,
        /// The meta-method's camelCase name.
        op: &'static str,
    },
    /// Dispatch routed through an installed meta-invoke level.
    TowerDescend {
        /// Receiver whose tower is being descended.
        object: ObjectId,
        /// The level being entered (topmost = tower length).
        level: u32,
        /// Name of the meta-invoke method at that level.
        meta: String,
    },
    /// A script body finished executing.
    ScriptRun {
        /// Fuel the evaluator charged for this body.
        fuel_used: u64,
        /// `self.…` / world host calls the body performed.
        host_calls: u64,
    },
    /// `Runtime::invoke` dispatched to a managed object.
    RuntimeInvoke {
        /// Node the runtime serves.
        node: NodeId,
        /// Target object.
        target: ObjectId,
        /// Selector.
        method: String,
    },
    /// A `log` world-call from an executing object.
    Log {
        /// Node whose runtime observed the log line.
        node: NodeId,
        /// The executing object.
        caller: ObjectId,
        /// The message.
        message: String,
    },
    /// An object serialized itself into a migration image.
    MigrateEncode {
        /// The object encoded.
        object: ObjectId,
        /// Image size in bytes.
        bytes: u64,
    },
    /// A migration image was decoded (possibly unsuccessfully).
    MigrateDecode {
        /// Image size in bytes.
        bytes: u64,
        /// Whether decoding (including admission) succeeded.
        ok: bool,
    },
    /// The admission analyzer ruled on an object.
    Admission {
        /// Where admission ran (`"from_image"`, `"adopt"`, …).
        context: String,
        /// Whether the object was accepted.
        accepted: bool,
        /// Number of diagnostics the analysis produced.
        findings: u32,
    },
    /// The persistence depot wrote an image.
    DepotSave {
        /// Object checkpointed.
        object: ObjectId,
        /// Stored image size in bytes.
        bytes: u64,
    },
    /// The persistence depot read an image back.
    DepotRestore {
        /// Whether the read + decode succeeded.
        ok: bool,
        /// Whether the failure was a corruption (CRC / framing) fault.
        corrupt: bool,
    },
    /// A federation protocol message was posted into the network.
    FedSend {
        /// Sending site.
        src: NodeId,
        /// Receiving site.
        dst: NodeId,
        /// The message's wire tag (`"move_object"`, `"invoke_req"`, …).
        kind: &'static str,
        /// Encoded size in bytes.
        bytes: u64,
    },
    /// A federation protocol message was delivered and decoded.
    FedRecv {
        /// Sending site.
        src: NodeId,
        /// Receiving site.
        dst: NodeId,
        /// The message's wire tag.
        kind: &'static str,
    },
    /// A sender-side federation operation opened. This is a span-opening
    /// kind: the open span is what makes the trace context nonzero at the
    /// moment an outgoing message captures it, so the remote half of a
    /// migration or remote invocation can join the same trace.
    FedOpStart {
        /// The originating site.
        node: NodeId,
        /// The operation (`"dispatch_object"`, `"remote_invoke"`).
        op: &'static str,
    },
    /// The matching federation operation closed.
    FedOpEnd {
        /// The operation.
        op: &'static str,
        /// Whether the operation succeeded end to end.
        ok: bool,
    },
    /// An ambassador forwarded a call to its origin site.
    AmbassadorRelay {
        /// Site hosting the ambassador.
        host: NodeId,
        /// The ambassador object.
        object: ObjectId,
        /// Selector relayed.
        method: String,
    },
    /// A whole object left its site for another.
    ObjectDispatched {
        /// The migrating object.
        object: ObjectId,
        /// Origin site of this hop.
        from: NodeId,
        /// Destination site of this hop.
        to: NodeId,
    },
    /// A migrated object was adopted by the receiving site.
    ObjectAdopted {
        /// The migrated object.
        object: ObjectId,
        /// The adopting site.
        at: NodeId,
    },
    /// A federation operation re-posted its request after a timeout.
    FedRetry {
        /// The retrying site.
        node: NodeId,
        /// The operation being retried (`"move_object"`, `"invoke_req"`, …).
        op: &'static str,
        /// Attempt number about to be made (2 = first retry).
        attempt: u32,
    },
    /// A receiver recognised a request id it had already served and
    /// answered from its reply cache instead of re-executing.
    FedDedup {
        /// The deduplicating site.
        node: NodeId,
        /// The duplicate message's wire tag.
        kind: &'static str,
    },
    /// A shared-runtime checkout found the target already checked out by
    /// a concurrent invocation.
    SharedCollision {
        /// Node whose object table collided.
        node: NodeId,
        /// The busy object.
        target: ObjectId,
        /// Selector of the in-flight invocation.
        in_flight: String,
        /// Selector that was refused.
        incoming: String,
        /// Effect-signature verdict: `Some(true)` when the two methods
        /// provably touch disjoint state (the serialization was a
        /// conservative loss), `Some(false)` when they overlap, `None`
        /// when the signatures were not comparable.
        disjoint: Option<bool>,
    },
    /// A site crashed, losing all volatile state.
    SiteCrash {
        /// The crashed site.
        node: NodeId,
    },
    /// A crashed site restarted and bootstrapped from its depot.
    SiteRestart {
        /// The restarting site.
        node: NodeId,
        /// Objects successfully restored from the depot.
        restored: u64,
        /// Depot images that failed to restore (quarantined).
        quarantined: u64,
    },
}

impl EventKind {
    /// Stable snake_case tag for dumps and JSON.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::InvokeStart { .. } => "invoke_start",
            EventKind::InvokeEnd { .. } => "invoke_end",
            EventKind::Lookup { .. } => "lookup",
            EventKind::AclDecision { .. } => "acl",
            EventKind::WrapVerdict { .. } => "wrap",
            EventKind::MetaOp { .. } => "meta_op",
            EventKind::TowerDescend { .. } => "tower_descend",
            EventKind::ScriptRun { .. } => "script_run",
            EventKind::RuntimeInvoke { .. } => "runtime_invoke",
            EventKind::Log { .. } => "log",
            EventKind::MigrateEncode { .. } => "migrate_encode",
            EventKind::MigrateDecode { .. } => "migrate_decode",
            EventKind::Admission { .. } => "admission",
            EventKind::DepotSave { .. } => "depot_save",
            EventKind::DepotRestore { .. } => "depot_restore",
            EventKind::FedSend { .. } => "fed_send",
            EventKind::FedRecv { .. } => "fed_recv",
            EventKind::FedOpStart { .. } => "fed_op_start",
            EventKind::FedOpEnd { .. } => "fed_op_end",
            EventKind::AmbassadorRelay { .. } => "ambassador_relay",
            EventKind::ObjectDispatched { .. } => "object_dispatched",
            EventKind::ObjectAdopted { .. } => "object_adopted",
            EventKind::FedRetry { .. } => "fed_retry",
            EventKind::FedDedup { .. } => "fed_dedup",
            EventKind::SharedCollision { .. } => "shared_collision",
            EventKind::SiteCrash { .. } => "site_crash",
            EventKind::SiteRestart { .. } => "site_restart",
        }
    }
}

/// One recorded observation: envelope plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic per-recorder sequence number (total order of recording).
    pub seq: u64,
    /// Trace this event belongs to. All events of one causally-linked
    /// activity — including a migration hop's remote half — share it.
    pub trace: u64,
    /// Span id: fresh for `InvokeStart`, the matching id for `InvokeEnd`,
    /// and the enclosing open span for everything else (0 = none open).
    pub span: u64,
    /// Parent span id (0 = root). For a migrated trace's first remote
    /// span this is the dispatching site's span — the causal link.
    pub parent: u64,
    /// Label of the thread that recorded the event (`None` = unlabeled,
    /// the single-threaded default). Worker pools label their threads so
    /// interleaved traces from one site stay attributable.
    pub thread: Option<std::sync::Arc<str>>,
    /// Virtual time at recording, in microseconds — the simulated
    /// `SimNet` clock (0 until a simulation stamps it). This is the
    /// timestamp the Chrome `trace_event` exporter quotes, so exported
    /// traces of a seeded run are reproducible byte for byte.
    pub at_us: u64,
}

impl Event {
    /// Renders the envelope for `trace dump` output.
    fn fmt_envelope(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<5} t{:<3} s{:<3} p{:<3}",
            self.seq, self.trace, self.span, self.parent
        )?;
        if let Some(thread) = &self.thread {
            write!(f, " [{thread}]")?;
        }
        Ok(())
    }
}

/// A fully rendered event line: envelope plus payload description.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The envelope.
    pub event: Event,
    /// The payload.
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.event.fmt_envelope(f)?;
        write!(f, " {:<16} ", self.kind.tag())?;
        match &self.kind {
            EventKind::InvokeStart {
                object,
                method,
                caller,
                level,
            } => write!(f, "{object} .{method} caller={caller} level={level}"),
            EventKind::InvokeEnd {
                object,
                method,
                outcome,
                fuel_used,
            } => write!(f, "{object} .{method} outcome={outcome} fuel={fuel_used}"),
            EventKind::Lookup {
                object,
                method,
                cache_hit,
                found,
            } => write!(f, "{object} .{method} cache_hit={cache_hit} found={found}"),
            EventKind::AclDecision {
                object,
                method,
                caller,
                allowed,
            } => write!(f, "{object} .{method} caller={caller} allowed={allowed}"),
            EventKind::WrapVerdict {
                object,
                method,
                stage,
                passed,
            } => write!(
                f,
                "{object} .{method} stage={} passed={passed}",
                stage.name()
            ),
            EventKind::MetaOp { object, op } => write!(f, "{object} op={op}"),
            EventKind::TowerDescend {
                object,
                level,
                meta,
            } => write!(f, "{object} level={level} meta={meta}"),
            EventKind::ScriptRun {
                fuel_used,
                host_calls,
            } => write!(f, "fuel={fuel_used} host_calls={host_calls}"),
            EventKind::RuntimeInvoke {
                node,
                target,
                method,
            } => write!(f, "{node} {target} .{method}"),
            EventKind::Log {
                node,
                caller,
                message,
            } => write!(f, "{node} {caller} {message:?}"),
            EventKind::MigrateEncode { object, bytes } => write!(f, "{object} bytes={bytes}"),
            EventKind::MigrateDecode { bytes, ok } => write!(f, "bytes={bytes} ok={ok}"),
            EventKind::Admission {
                context,
                accepted,
                findings,
            } => write!(f, "{context} accepted={accepted} findings={findings}"),
            EventKind::DepotSave { object, bytes } => write!(f, "{object} bytes={bytes}"),
            EventKind::DepotRestore { ok, corrupt } => write!(f, "ok={ok} corrupt={corrupt}"),
            EventKind::FedSend {
                src,
                dst,
                kind,
                bytes,
            } => write!(f, "{src}->{dst} {kind} bytes={bytes}"),
            EventKind::FedRecv { src, dst, kind } => write!(f, "{src}->{dst} {kind}"),
            EventKind::FedOpStart { node, op } => write!(f, "{node} op={op}"),
            EventKind::FedOpEnd { op, ok } => write!(f, "op={op} ok={ok}"),
            EventKind::AmbassadorRelay {
                host,
                object,
                method,
            } => write!(f, "{host} {object} .{method}"),
            EventKind::ObjectDispatched { object, from, to } => {
                write!(f, "{object} {from}->{to}")
            }
            EventKind::ObjectAdopted { object, at } => write!(f, "{object} at={at}"),
            EventKind::FedRetry { node, op, attempt } => {
                write!(f, "{node} op={op} attempt={attempt}")
            }
            EventKind::FedDedup { node, kind } => write!(f, "{node} {kind}"),
            EventKind::SharedCollision {
                node,
                target,
                in_flight,
                incoming,
                disjoint,
            } => {
                let verdict = match disjoint {
                    Some(true) => "disjoint",
                    Some(false) => "overlapping",
                    None => "unknown",
                };
                write!(
                    f,
                    "{node} {target} in_flight={in_flight} incoming={incoming} {verdict}"
                )
            }
            EventKind::SiteCrash { node } => write!(f, "{node}"),
            EventKind::SiteRestart {
                node,
                restored,
                quarantined,
            } => write!(f, "{node} restored={restored} quarantined={quarantined}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable_and_distinct() {
        let a = EventKind::Lookup {
            object: ObjectId::SYSTEM,
            method: "m".into(),
            cache_hit: true,
            found: true,
        };
        let b = EventKind::MetaOp {
            object: ObjectId::SYSTEM,
            op: "getDataItem",
        };
        assert_eq!(a.tag(), "lookup");
        assert_eq!(b.tag(), "meta_op");
        assert_ne!(a.tag(), b.tag());
    }

    #[test]
    fn display_carries_envelope_and_payload() {
        let te = TraceEvent {
            event: Event {
                seq: 7,
                trace: 1,
                span: 2,
                parent: 0,
                thread: None,
                at_us: 0,
            },
            kind: EventKind::InvokeStart {
                object: ObjectId::SYSTEM,
                method: "greet".into(),
                caller: ObjectId::SYSTEM,
                level: 0,
            },
        };
        let line = te.to_string();
        assert!(line.contains("invoke_start"));
        assert!(line.contains(".greet"));
        assert!(line.contains("level=0"));
        assert!(line.contains("t1"));
    }
}
