//! # mrom-obs
//!
//! Observability for the MROM reproduction: a flight-recorder trace, a
//! metrics registry, and the data feed for the reflective `getStats`
//! surface — *zero-cost when disabled*.
//!
//! The paper's first principle is self-representation: an object answers
//! questions about its own structure. This crate extends that to
//! *behaviour* — what did the last thousand invocations do, where did
//! fuel go, which pre-wraps vetoed — so the answer can be queried both by
//! tools (`mrom-top`) and through the model itself (`getStats`).
//!
//! ## Design
//!
//! All state is **thread-local**. The reproduction simulates whole worlds
//! — several runtimes, a network, a federation — on one thread, so a
//! single recorder per thread sees every side of a migration and can link
//! the hop into one causal trace, while parallel tests stay isolated
//! without locks.
//!
//! The fast path is one thread-local byte: when the mode is
//! [`ObsMode::Disabled`] (the default), instrumentation call sites check
//! [`enabled`] and fall through — no event is constructed, nothing
//! allocates, no counter moves. [`events_recorded`] is the proof: tests
//! assert it stays put across a disabled-mode workload.
//!
//! ```
//! use mrom_obs as obs;
//!
//! obs::reset();
//! obs::set_mode(obs::ObsMode::Ring);
//! let span = obs::invoke_start(
//!     mrom_value::ObjectId::SYSTEM,
//!     "greet",
//!     mrom_value::ObjectId::SYSTEM,
//!     0,
//! );
//! obs::invoke_end(span, mrom_value::ObjectId::SYSTEM, "greet", "ok", 17);
//! assert_eq!(obs::events_recorded(), 2);
//! obs::set_mode(obs::ObsMode::Disabled);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod json;
mod metrics;
mod profile;
mod recorder;
mod ring;
mod sink;
mod window;

pub use event::{Event, EventKind, TraceEvent, WrapStage};
pub use export::{chrome_trace, validate_chrome_trace};
pub use json::{to_json, to_json_pretty};
pub use metrics::{
    AdmissionMetrics, FederationMetrics, Histogram, InvokeMetrics, Metrics, MigrateMetrics,
    NetMetrics, ObjectStats, PersistMetrics, ScriptMetrics, SharedMetrics, HISTOGRAM_BUCKETS,
};
pub use profile::{LinkProfile, ObjectProfile, TelemetrySnapshot, TELEMETRY_SCHEMA};
pub use recorder::{ObsMode, Recorder, SpanHandle, LOG_CHANNEL_CAPACITY};
pub use ring::{FlightRecorder, DEFAULT_RING_CAPACITY};
pub use sink::{TraceSink, VecSink};
pub use window::{EpochBucket, LinkWindowStats, ObjectWindowStats, WindowConfig, WindowState};

use std::cell::{Cell, RefCell};

use mrom_value::{NodeId, ObjectId, Value};

thread_local! {
    /// Fast-path mode byte, read on every instrumented operation.
    static MODE: Cell<u8> = const { Cell::new(0) };
    /// The per-thread recorder (only touched when recording or logging).
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
}

/// Runs `f` against this thread's recorder. Escape hatch for tools and
/// tests; instrumentation should use the typed helpers below.
pub fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    RECORDER.with(|r| f(&mut r.borrow_mut()))
}

/// This thread's observability mode.
#[inline]
#[must_use]
pub fn mode() -> ObsMode {
    MODE.with(|m| ObsMode::from_u8(m.get()))
}

/// Whether any recording is on — the one-byte check instrumented hot
/// paths perform before constructing anything.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    MODE.with(|m| m.get() != 0)
}

/// Switches this thread's mode. State is preserved; call [`reset`] to
/// clear it.
pub fn set_mode(mode: ObsMode) {
    MODE.with(|m| m.set(mode.as_u8()));
    with_recorder(|r| r.set_mode(mode));
}

/// Clears ring, metrics, counters, trace state, and the log channel.
pub fn reset() {
    with_recorder(Recorder::reset);
}

/// Labels this thread's recorder: every subsequent event carries the
/// label in its envelope (worker pools use `site-<node>-w<k>`). Pass
/// `None` to return to the unlabeled single-threaded default.
pub fn set_thread_label(label: Option<&str>) {
    with_recorder(|r| r.set_thread_label(label));
}

/// This thread's recorder label, if any.
#[must_use]
pub fn thread_label() -> Option<String> {
    with_recorder(|r| r.thread_label().map(str::to_owned))
}

/// Installs (replacing) a custom [`TraceSink`]; returns the previous one.
pub fn install_sink(sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
    with_recorder(|r| r.install_sink(sink))
}

/// Removes the custom sink, if any.
pub fn take_sink() -> Option<Box<dyn TraceSink>> {
    with_recorder(Recorder::take_sink)
}

// ===== snapshots =========================================================

/// Total events recorded on this thread since the last [`reset`].
#[must_use]
pub fn events_recorded() -> u64 {
    with_recorder(|r| r.events_recorded())
}

/// Copies out the flight-recorder ring, oldest first.
#[must_use]
pub fn ring_snapshot() -> Vec<TraceEvent> {
    with_recorder(|r| r.ring_snapshot())
}

/// Events evicted from the ring since the last [`reset`].
#[must_use]
pub fn ring_overwritten() -> u64 {
    with_recorder(|r| r.ring_overwritten())
}

/// Replaces this thread's flight recorder with an empty ring of
/// `capacity` events (min 1). Retained events are dropped.
pub fn set_ring_capacity(capacity: usize) {
    with_recorder(|r| r.set_ring_capacity(capacity));
}

/// This thread's flight-recorder retention cap.
#[must_use]
pub fn ring_capacity() -> usize {
    with_recorder(|r| r.ring_capacity())
}

/// Structural clone of the live metrics registry.
#[must_use]
pub fn metrics_snapshot() -> Metrics {
    with_recorder(|r| r.metrics().clone())
}

/// Per-object tallies for `id` (zeroed if never seen).
#[must_use]
pub fn object_stats(id: ObjectId) -> ObjectStats {
    with_recorder(|r| r.metrics().per_object.get(&id).cloned().unwrap_or_default())
}

/// Per-object tallies as a value tree — the payload of the reflective
/// `getStats` meta-method.
#[must_use]
pub fn object_stats_value(id: ObjectId) -> Value {
    object_stats(id).to_value()
}

/// The stable schema tag stamped on every [`snapshot_value`] tree —
/// the contract `mrom-top --snapshot --json` consumers parse against
/// (see docs/OBSERVABILITY.md for the field-by-field description).
pub const METRICS_SCHEMA: &str = "mrom.metrics.v1";

/// Whole-registry snapshot as a value tree, wrapped with the schema
/// tag, the mode, and the event count.
#[must_use]
pub fn snapshot_value() -> Value {
    with_recorder(|r| {
        Value::map([
            ("schema", Value::from(METRICS_SCHEMA)),
            ("mode", Value::from(r.mode().name())),
            (
                "events_recorded",
                Value::Int(i64::try_from(r.events_recorded()).unwrap_or(i64::MAX)),
            ),
            ("metrics", r.metrics().to_value()),
        ])
    })
}

/// [`snapshot_value`] rendered as compact JSON.
#[must_use]
pub fn snapshot_json() -> String {
    to_json(&snapshot_value())
}

/// [`snapshot_value`] rendered as indented JSON.
#[must_use]
pub fn snapshot_json_pretty() -> String {
    to_json_pretty(&snapshot_value())
}

// ===== virtual time and the telemetry window =============================

/// Advances this thread's virtual clock (monotonic max). The network
/// simulator stamps delivery times here so telemetry windows — and the
/// Chrome-trace timestamps — follow *simulated* time and stay
/// deterministic per seed. One branch when recording is off.
#[inline]
pub fn set_virtual_now_us(us: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.set_virtual_now_us(us));
}

/// This thread's virtual clock, in microseconds.
#[must_use]
pub fn virtual_now_us() -> u64 {
    with_recorder(|r| r.virtual_now_us())
}

/// Installs (or, with `None`, removes) the sliding telemetry window on
/// this thread. Off by default: without a window, the recording paths
/// pay one `Option` check and the disabled fast path is untouched.
pub fn set_window(cfg: Option<WindowConfig>) {
    with_recorder(|r| r.set_window(cfg));
}

/// The configured window shape, if windowing is on.
#[must_use]
pub fn window_config() -> Option<WindowConfig> {
    with_recorder(|r| r.window_config())
}

/// Folds this thread's live window into a [`TelemetrySnapshot`] — the
/// payload behind `getTelemetry`, `Runtime::telemetry()`, and
/// `mrom-top --watch`.
#[must_use]
pub fn telemetry_snapshot() -> TelemetrySnapshot {
    with_recorder(|r| r.telemetry())
}

/// [`telemetry_snapshot`] as a value tree (`mrom.telemetry.v1` schema).
#[must_use]
pub fn telemetry_value() -> Value {
    telemetry_snapshot().to_value()
}

// ===== trace context =====================================================

/// `(trace, span)` of the innermost open span on this thread, or
/// `(0, 0)` when nothing is active. A migration hop carries this pair to
/// the destination so the remote half joins the same trace.
#[must_use]
pub fn current_trace_context() -> (u64, u64) {
    if !enabled() {
        return (0, 0);
    }
    with_recorder(|r| r.current_context())
}

/// Guard that scopes a trace continuation (see [`continue_trace`]).
/// Restores the previous continuation when dropped.
#[derive(Debug)]
pub struct TraceScope {
    prev: Option<(u64, u64)>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some((trace, parent)) = self.prev.take() {
            with_recorder(|r| {
                r.set_continuation(trace, parent);
            });
        }
    }
}

/// Installs a trace continuation for the duration of the returned guard:
/// the next root span joins `trace` with `parent` as its parent. Inert
/// when recording is off or `trace` is 0 (no context travelled).
#[must_use]
pub fn continue_trace(trace: u64, parent: u64) -> TraceScope {
    if !enabled() || trace == 0 {
        return TraceScope { prev: None };
    }
    let prev = with_recorder(|r| r.set_continuation(trace, parent));
    TraceScope { prev: Some(prev) }
}

// ===== invocation machinery ==============================================

/// Opens an invocation span (one per tower level entered).
#[inline]
#[must_use]
pub fn invoke_start(object: ObjectId, method: &str, caller: ObjectId, level: u32) -> SpanHandle {
    if !enabled() {
        return SpanHandle::NONE;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.invoke.invocations += 1;
        m.invoke.max_tower_depth = m.invoke.max_tower_depth.max(u64::from(level));
        let per = m.object_mut(object);
        per.invocations += 1;
        per.last_method.clear();
        per.last_method.push_str(method);
        r.open_span(EventKind::InvokeStart {
            object,
            method: method.to_owned(),
            caller,
            level,
        })
    })
}

/// Closes an invocation span. `outcome` is `"ok"` or an error label.
#[inline]
pub fn invoke_end(
    handle: SpanHandle,
    object: ObjectId,
    method: &str,
    outcome: &'static str,
    fuel_used: u64,
) {
    if !handle.is_active() {
        return;
    }
    with_recorder(|r| {
        let latency_ns = handle
            .started
            .map(|started| u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        if let Some(ns) = latency_ns {
            r.metrics_mut().invoke.latency_ns.record(ns);
        }
        let m = r.metrics_mut();
        m.invoke.fuel.record(fuel_used);
        let ok = outcome == "ok";
        if !ok {
            m.invoke.errors += 1;
        }
        let per = m.object_mut(object);
        per.fuel_used += fuel_used;
        if !ok {
            per.errors += 1;
        }
        r.window_invoke(object, ok, fuel_used, latency_ns);
        r.close_span(
            handle,
            EventKind::InvokeEnd {
                object,
                method: method.to_owned(),
                outcome,
                fuel_used,
            },
        );
    });
}

/// Records a Lookup-phase resolution.
#[inline]
pub fn lookup(object: ObjectId, method: &str, cache_hit: bool, found: bool) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        if cache_hit {
            r.metrics_mut().invoke.cache_hits += 1;
        } else {
            r.metrics_mut().invoke.cache_misses += 1;
        }
        r.record(EventKind::Lookup {
            object,
            method: method.to_owned(),
            cache_hit,
            found,
        });
    });
}

/// Records a Match-phase ACL verdict.
#[inline]
pub fn acl_decision(object: ObjectId, method: &str, caller: ObjectId, allowed: bool) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        if allowed {
            m.invoke.acl_allowed += 1;
        } else {
            m.invoke.acl_denied += 1;
            m.object_mut(object).acl_denied += 1;
        }
        r.record(EventKind::AclDecision {
            object,
            method: method.to_owned(),
            caller,
            allowed,
        });
    });
}

/// Records a pre- or post-procedure verdict.
#[inline]
pub fn wrap_verdict(object: ObjectId, method: &str, stage: WrapStage, passed: bool) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        match (stage, passed) {
            (WrapStage::Pre, true) => m.invoke.pre_pass += 1,
            (WrapStage::Pre, false) => m.invoke.pre_veto += 1,
            (WrapStage::Post, true) => m.invoke.post_pass += 1,
            (WrapStage::Post, false) => m.invoke.post_veto += 1,
        }
        r.record(EventKind::WrapVerdict {
            object,
            method: method.to_owned(),
            stage,
            passed,
        });
    });
}

/// Records a reflective meta-operation.
#[inline]
pub fn meta_op(object: ObjectId, op: &'static str) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().invoke.meta_ops += 1;
        r.metrics_mut().object_mut(object).meta_ops += 1;
        r.record(EventKind::MetaOp { object, op });
    });
}

/// Records a dispatch routed through a meta-invoke level.
#[inline]
pub fn tower_descend(object: ObjectId, level: u32, meta: &str) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.invoke.tower_descents += 1;
        m.invoke.max_tower_depth = m.invoke.max_tower_depth.max(u64::from(level));
        r.record(EventKind::TowerDescend {
            object,
            level,
            meta: meta.to_owned(),
        });
    });
}

/// Records a completed script-body execution.
#[inline]
pub fn script_run(fuel_used: u64, host_calls: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.script.runs += 1;
        m.script.host_calls += host_calls;
        m.script.fuel.record(fuel_used);
        r.record(EventKind::ScriptRun {
            fuel_used,
            host_calls,
        });
    });
}

/// Records inline-cache traffic from one script-body execution
/// (metrics-only: IC hit rates are an aggregate, not an event stream).
#[inline]
pub fn script_ic(hits: u64, misses: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.script.ic_hits += hits;
        m.script.ic_misses += misses;
    });
}

/// Records a shared-runtime checkout collision, classified by effect
/// signatures: `disjoint = Some(true)` when the in-flight and incoming
/// methods provably touch disjoint state, `Some(false)` when they
/// overlap, `None` when no comparison was possible.
#[inline]
pub fn shared_collision(
    node: NodeId,
    target: ObjectId,
    in_flight: &str,
    incoming: &str,
    disjoint: Option<bool>,
) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.shared.busy_collisions += 1;
        if disjoint == Some(true) {
            m.shared.disjoint_collisions += 1;
        } else {
            m.shared.overlapping_collisions += 1;
        }
        r.window_collision(target);
        r.record(EventKind::SharedCollision {
            node,
            target,
            in_flight: in_flight.to_owned(),
            incoming: incoming.to_owned(),
            disjoint,
        });
    });
}

/// Records a `Runtime::invoke` dispatch.
#[inline]
pub fn runtime_invoke(node: NodeId, target: ObjectId, method: &str) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        // Call-matrix diagonal: an invocation executed *at* this site
        // (local and remotely-requested dispatches alike).
        r.window_call(node, node);
        r.record(EventKind::RuntimeInvoke {
            node,
            target,
            method: method.to_owned(),
        });
    });
}

// ===== log channel (always on) ===========================================

/// Appends to the bounded log channel. Unlike every other helper this
/// records even in `Disabled` mode — it replaces `Runtime::log_entries`,
/// whose behaviour never depended on an observability switch.
pub fn log_line(node: NodeId, caller: ObjectId, message: &str) {
    with_recorder(|r| r.log_line(node, caller, message));
}

/// Log lines observed by `node`'s runtime, oldest first.
#[must_use]
pub fn log_lines_for(node: NodeId) -> Vec<(ObjectId, String)> {
    with_recorder(|r| r.log_lines_for(node))
}

// ===== migration, persistence, admission =================================

/// Records a migration-image encode.
#[inline]
pub fn migrate_encode(object: ObjectId, bytes: usize) {
    if !enabled() {
        return;
    }
    let bytes = bytes as u64;
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.migrate.encodes += 1;
        m.migrate.bytes_out += bytes;
        r.record(EventKind::MigrateEncode { object, bytes });
    });
}

/// Records a migration-image decode attempt.
#[inline]
pub fn migrate_decode(bytes: usize, ok: bool) {
    if !enabled() {
        return;
    }
    let bytes = bytes as u64;
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.migrate.decodes += 1;
        m.migrate.bytes_in += bytes;
        if !ok {
            m.migrate.decode_errors += 1;
        }
        r.record(EventKind::MigrateDecode { bytes, ok });
    });
}

/// Records an admission-analysis verdict.
#[inline]
pub fn admission_verdict(context: &str, accepted: bool, findings: usize) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.admission.checked += 1;
        m.admission.findings += findings as u64;
        if accepted {
            m.admission.accepted += 1;
        } else {
            m.admission.rejected += 1;
        }
        r.record(EventKind::Admission {
            context: context.to_owned(),
            accepted,
            findings: u32::try_from(findings).unwrap_or(u32::MAX),
        });
    });
}

/// Records a depot write.
#[inline]
pub fn depot_save(object: ObjectId, bytes: usize) {
    if !enabled() {
        return;
    }
    let bytes = bytes as u64;
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.persist.saves += 1;
        m.persist.bytes_written += bytes;
        r.record(EventKind::DepotSave { object, bytes });
    });
}

/// Records a depot read attempt. `corrupt` marks CRC / framing faults.
#[inline]
pub fn depot_restore(ok: bool, corrupt: bool) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.persist.restores += 1;
        if !ok {
            m.persist.restore_errors += 1;
        }
        if corrupt {
            m.persist.corruptions += 1;
        }
        r.record(EventKind::DepotRestore { ok, corrupt });
    });
}

// ===== federation and network ============================================

/// Records a federation protocol send.
#[inline]
pub fn fed_send(src: NodeId, dst: NodeId, kind: &'static str, bytes: usize) {
    if !enabled() {
        return;
    }
    let bytes = bytes as u64;
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.federation.sends += 1;
        m.federation.bytes_sent += bytes;
        // Call-matrix off-diagonal: cross-site invocation requests.
        if kind == "invoke_req" && src != dst {
            r.window_call(src, dst);
        }
        r.record(EventKind::FedSend {
            src,
            dst,
            kind,
            bytes,
        });
    });
}

/// Attributes one logical remote invocation of `target` to the
/// requesting site `src` in the telemetry window's per-object caller
/// map. Fed from the federation's `remote_invoke` entry points — once
/// per logical operation, before any retries — and only recorded when
/// the installed window opted into caller tracking
/// ([`WindowConfig::with_callers`]); otherwise it is a no-op, keeping
/// pre-advisor telemetry byte-identical.
#[inline]
pub fn remote_invoke_requested(src: NodeId, target: ObjectId) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.window_remote_call(src, target));
}

/// Records a federation protocol receive.
#[inline]
pub fn fed_recv(src: NodeId, dst: NodeId, kind: &'static str) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().federation.receives += 1;
        r.record(EventKind::FedRecv { src, dst, kind });
    });
}

/// Opens a span around a sender-side federation operation
/// (`dispatch_object`, `remote_invoke`). While this span is open,
/// [`current_trace_context`] is nonzero, so the trace/parent pair the
/// outgoing message captures lets the remote half join the same trace
/// even when the operation was not started from inside an invocation.
#[inline]
#[must_use]
pub fn fed_op_start(node: NodeId, op: &'static str) -> SpanHandle {
    if !enabled() {
        return SpanHandle::NONE;
    }
    with_recorder(|r| r.open_span(EventKind::FedOpStart { node, op }))
}

/// Closes a federation-operation span opened by [`fed_op_start`].
#[inline]
pub fn fed_op_end(handle: SpanHandle, op: &'static str, ok: bool) {
    if !handle.is_active() {
        return;
    }
    with_recorder(|r| r.close_span(handle, EventKind::FedOpEnd { op, ok }));
}

/// Records a call relayed through an ambassador to its origin site.
#[inline]
pub fn ambassador_relay(host: NodeId, object: ObjectId, method: &str) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().federation.ambassador_relays += 1;
        r.record(EventKind::AmbassadorRelay {
            host,
            object,
            method: method.to_owned(),
        });
    });
}

/// Records a whole-object dispatch (the sending half of a hop).
#[inline]
pub fn object_dispatched(object: ObjectId, from: NodeId, to: NodeId) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().federation.objects_dispatched += 1;
        r.record(EventKind::ObjectDispatched { object, from, to });
    });
}

/// Records an adoption (the receiving half of a hop).
#[inline]
pub fn object_adopted(object: ObjectId, at: NodeId) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().federation.objects_adopted += 1;
        r.record(EventKind::ObjectAdopted { object, at });
    });
}

/// Records a federation request being re-posted after a timeout.
#[inline]
pub fn fed_retry(node: NodeId, op: &'static str, attempt: u32) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().federation.retries += 1;
        r.record(EventKind::FedRetry { node, op, attempt });
    });
}

/// Records a duplicate request answered from a receiver's reply cache.
#[inline]
pub fn fed_dedup(node: NodeId, kind: &'static str) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().federation.dedup_hits += 1;
        r.record(EventKind::FedDedup { node, kind });
    });
}

/// Records a site crash (volatile state lost).
#[inline]
pub fn site_crash(node: NodeId) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().federation.site_crashes += 1;
        r.record(EventKind::SiteCrash { node });
    });
}

/// Records a site restart bootstrapped from its depot.
#[inline]
pub fn site_restart(node: NodeId, restored: u64, quarantined: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        r.metrics_mut().federation.site_restarts += 1;
        r.record(EventKind::SiteRestart {
            node,
            restored,
            quarantined,
        });
    });
}

/// Bumps the network send counter (metrics only; no trace event — one
/// per message would drown the ring).
#[inline]
pub fn net_send() {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.metrics_mut().net.sends += 1);
}

/// Bumps the network drop counter (metrics only).
#[inline]
pub fn net_drop() {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.metrics_mut().net.drops += 1);
}

/// Bumps the network duplication counter (metrics only).
#[inline]
pub fn net_duplicate() {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.metrics_mut().net.duplicates += 1);
}

/// Bumps the network delivery counters (metrics only).
#[inline]
pub fn net_deliver(bytes: usize) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        let m = r.metrics_mut();
        m.net.deliveries += 1;
        m.net.bytes_delivered += bytes as u64;
    });
}

/// Records a delivery over one link into the telemetry window:
/// `latency_us` is the virtual time the message spent on the wire.
/// Like the other `net_*` hooks this emits no trace event (one per
/// message would drown the ring).
#[inline]
pub fn link_delivered(src: NodeId, dst: NodeId, bytes: usize, latency_us: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.window_link_delivery(src, dst, bytes as u64, latency_us));
}

/// Records a message lost on one link into the telemetry window.
#[inline]
pub fn link_dropped(src: NodeId, dst: NodeId) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.window_link_drop(src, dst));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test in this crate shares no state with these — each `#[test]`
    /// runs on its own thread, so the thread-local recorder is private.
    #[test]
    fn disabled_mode_records_nothing() {
        assert!(!enabled());
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        assert!(!span.is_active());
        invoke_end(span, ObjectId::SYSTEM, "m", "ok", 5);
        lookup(ObjectId::SYSTEM, "m", true, true);
        meta_op(ObjectId::SYSTEM, "getDataItem");
        net_send();
        assert_eq!(events_recorded(), 0);
        assert!(ring_snapshot().is_empty());
        assert_eq!(metrics_snapshot(), Metrics::default());
    }

    #[test]
    fn full_mode_times_spans_and_counts() {
        set_mode(ObsMode::Full);
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        assert!(span.is_active());
        assert!(span.started.is_some());
        invoke_end(span, ObjectId::SYSTEM, "m", "ok", 40);
        let m = metrics_snapshot();
        assert_eq!(m.invoke.invocations, 1);
        assert_eq!(m.invoke.latency_ns.count(), 1);
        assert_eq!(m.invoke.fuel.count(), 1);
        assert_eq!(object_stats(ObjectId::SYSTEM).fuel_used, 40);
        assert_eq!(object_stats(ObjectId::SYSTEM).last_method, "m");
    }

    #[test]
    fn ring_mode_skips_the_clock() {
        set_mode(ObsMode::Ring);
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        assert!(span.is_active());
        assert!(span.started.is_none());
        invoke_end(span, ObjectId::SYSTEM, "m", "no-such-method", 0);
        let m = metrics_snapshot();
        assert_eq!(m.invoke.latency_ns.count(), 0);
        assert_eq!(m.invoke.errors, 1);
        assert_eq!(object_stats(ObjectId::SYSTEM).errors, 1);
    }

    #[test]
    fn thread_label_stamps_events() {
        set_mode(ObsMode::Ring);
        assert_eq!(thread_label(), None);
        set_thread_label(Some("site-1-w0"));
        assert_eq!(thread_label().as_deref(), Some("site-1-w0"));
        meta_op(ObjectId::SYSTEM, "getClass");
        set_thread_label(None);
        meta_op(ObjectId::SYSTEM, "getClass");
        let ring = ring_snapshot();
        let labeled = &ring[ring.len() - 2];
        let unlabeled = &ring[ring.len() - 1];
        assert_eq!(labeled.event.thread.as_deref(), Some("site-1-w0"));
        assert!(labeled.to_string().contains("[site-1-w0]"));
        assert_eq!(unlabeled.event.thread, None);
        assert!(!unlabeled.to_string().contains('['));
    }

    #[test]
    fn custom_sink_sees_the_stream() {
        set_mode(ObsMode::Ring);
        install_sink(Box::new(VecSink::default()));
        meta_op(ObjectId::SYSTEM, "getMethod");
        let sink = take_sink().expect("sink was installed");
        // Downcasting isn't available without `Any`; recount via events.
        assert_eq!(events_recorded(), 1);
        drop(sink);
    }

    #[test]
    fn continuation_guard_restores_on_drop() {
        set_mode(ObsMode::Ring);
        {
            let _scope = continue_trace(77, 5);
            let span = invoke_start(ObjectId::SYSTEM, "adopt", ObjectId::SYSTEM, 0);
            invoke_end(span, ObjectId::SYSTEM, "adopt", "ok", 0);
        }
        let ring = ring_snapshot();
        assert_eq!(ring[0].event.trace, 77);
        assert_eq!(ring[0].event.parent, 5);
        let span = invoke_start(ObjectId::SYSTEM, "later", ObjectId::SYSTEM, 0);
        invoke_end(span, ObjectId::SYSTEM, "later", "ok", 0);
        let ring = ring_snapshot();
        assert_ne!(ring[2].event.trace, 77);
    }

    #[test]
    fn window_profiles_follow_virtual_time() {
        set_mode(ObsMode::Ring);
        set_window(Some(WindowConfig::new(1000, 4)));
        set_virtual_now_us(100);
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        invoke_end(span, ObjectId::SYSTEM, "m", "ok", 50);
        set_virtual_now_us(1100);
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        invoke_end(span, ObjectId::SYSTEM, "m", "err", 10);
        link_delivered(NodeId(1), NodeId(2), 32, 700);
        link_dropped(NodeId(1), NodeId(2));
        let snap = telemetry_snapshot();
        let p = snap.objects.get(&ObjectId::SYSTEM).expect("profiled");
        assert_eq!(p.invocations, 2);
        assert_eq!(p.errors, 1);
        assert_eq!(p.fuel_total, 60);
        let l = snap.links.get(&(NodeId(1), NodeId(2))).expect("link");
        assert_eq!(l.delivered, 1);
        assert_eq!(l.dropped, 1);
        assert_eq!(l.delivered_per_1k(), 500);
        assert_eq!(snap.head_epoch, 1);
        // Events carry the virtual stamp the Chrome exporter quotes.
        let ring = ring_snapshot();
        assert_eq!(ring[0].event.at_us, 100);
        assert_eq!(ring[2].event.at_us, 1100);
        set_window(None);
        set_mode(ObsMode::Disabled);
    }

    #[test]
    fn window_is_inert_until_configured_and_survives_reset() {
        set_mode(ObsMode::Ring);
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        invoke_end(span, ObjectId::SYSTEM, "m", "ok", 5);
        assert!(telemetry_snapshot().objects.is_empty());
        assert_eq!(telemetry_snapshot().window, None);
        set_window(Some(WindowConfig::DEFAULT));
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        invoke_end(span, ObjectId::SYSTEM, "m", "ok", 5);
        assert_eq!(
            telemetry_snapshot().objects[&ObjectId::SYSTEM].invocations,
            1
        );
        reset();
        // Shape survives reset; samples do not.
        assert_eq!(window_config(), Some(WindowConfig::DEFAULT));
        assert!(telemetry_snapshot().objects.is_empty());
        assert_eq!(virtual_now_us(), 0);
        set_window(None);
        set_mode(ObsMode::Disabled);
    }

    #[test]
    fn disabled_mode_ignores_window_feeds() {
        set_window(Some(WindowConfig::DEFAULT));
        assert!(!enabled());
        set_virtual_now_us(500);
        link_delivered(NodeId(1), NodeId(2), 8, 10);
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        invoke_end(span, ObjectId::SYSTEM, "m", "ok", 5);
        assert!(telemetry_snapshot().objects.is_empty());
        assert!(telemetry_snapshot().links.is_empty());
        assert_eq!(virtual_now_us(), 0, "clock is not advanced while disabled");
        set_window(None);
    }

    #[test]
    fn snapshot_json_is_renderable() {
        set_mode(ObsMode::Full);
        let span = invoke_start(ObjectId::SYSTEM, "m", ObjectId::SYSTEM, 0);
        invoke_end(span, ObjectId::SYSTEM, "m", "ok", 1);
        let json = snapshot_json();
        assert!(json.contains("\"mode\":\"full\""));
        assert!(json.contains("\"invocations\":1"));
        let pretty = snapshot_json_pretty();
        assert!(pretty.contains("\"invoke\""));
    }
}
