//! Edge-case battery for [`TelemetrySnapshot::absorb`], the fold the
//! fleet harness uses to reassemble per-site telemetry slices into the
//! global view. The fleet invariant checker already verifies one happy
//! path at scale; these tests pin the algebra:
//!
//! * absorbing an **empty** snapshot is the identity;
//! * **disjoint** slices concatenate, **overlapping** slices sum
//!   counters and max watermarks;
//! * the fold is **associative** across 3+ slices — any absorb order
//!   yields the same snapshot, which is what lets the harness fold
//!   sites in arbitrary groupings.

use mrom_obs::{LinkProfile, ObjectProfile, TelemetrySnapshot};
use mrom_value::{NodeId, ObjectId};

fn oid(n: u32) -> ObjectId {
    ObjectId::from_parts(NodeId(5), n, 0)
}

fn profile(invocations: u64, fuel_p95: u64, callers: &[(u64, u64)]) -> ObjectProfile {
    let mut p = ObjectProfile {
        invocations,
        errors: invocations / 10,
        fuel_total: invocations * 7,
        fuel_p95,
        ..ObjectProfile::default()
    };
    for (site, n) in callers {
        p.remote_callers.insert(NodeId(*site), *n);
    }
    p
}

fn slice(
    now_us: u64,
    objects: &[(ObjectId, ObjectProfile)],
    calls: &[((u64, u64), u64)],
    links: &[((u64, u64), LinkProfile)],
) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot {
        now_us,
        head_epoch: now_us / 1000,
        ..TelemetrySnapshot::default()
    };
    for (id, p) in objects {
        snap.objects.insert(*id, p.clone());
    }
    for ((a, b), n) in calls {
        snap.calls.insert((NodeId(*a), NodeId(*b)), *n);
    }
    for ((a, b), l) in links {
        snap.links.insert((NodeId(*a), NodeId(*b)), l.clone());
    }
    snap
}

fn link(delivered: u64, dropped: u64, p95: u64) -> LinkProfile {
    LinkProfile {
        delivered,
        dropped,
        bytes: delivered * 64,
        latency_p95_us: p95,
        ..LinkProfile::default()
    }
}

#[test]
fn absorbing_an_empty_snapshot_is_the_identity() {
    let base = slice(
        900,
        &[(oid(1), profile(40, 12, &[(2, 30)]))],
        &[((1, 2), 30)],
        &[((1, 2), link(30, 2, 5000))],
    );
    let mut folded = base.clone();
    folded.absorb(&TelemetrySnapshot::default());
    assert_eq!(folded, base, "empty right-operand must change nothing");

    let mut empty = TelemetrySnapshot::default();
    empty.absorb(&base);
    assert_eq!(
        empty, base,
        "absorbing into an empty snapshot must reproduce the slice"
    );
}

#[test]
fn disjoint_slices_concatenate() {
    let mut a = slice(
        100,
        &[(oid(1), profile(10, 5, &[(3, 10)]))],
        &[((3, 1), 10)],
        &[],
    );
    let b = slice(
        200,
        &[(oid(2), profile(20, 9, &[(4, 20)]))],
        &[((4, 2), 20)],
        &[],
    );
    a.absorb(&b);
    assert_eq!(a.objects.len(), 2);
    assert_eq!(a.objects[&oid(1)].invocations, 10);
    assert_eq!(a.objects[&oid(2)].invocations, 20);
    assert_eq!(a.calls[&(NodeId(3), NodeId(1))], 10);
    assert_eq!(a.calls[&(NodeId(4), NodeId(2))], 20);
    assert_eq!(a.now_us, 200, "clock is the max watermark");
}

#[test]
fn overlapping_slices_sum_counters_and_max_watermarks() {
    let mut a = slice(
        500,
        &[(oid(7), profile(30, 40, &[(1, 10), (2, 20)]))],
        &[((1, 7), 10)],
        &[((1, 7), link(10, 1, 9000))],
    );
    let b = slice(
        400,
        &[(oid(7), profile(5, 90, &[(2, 3), (6, 2)]))],
        &[((1, 7), 4)],
        &[((1, 7), link(4, 0, 2000))],
    );
    a.absorb(&b);
    let p = &a.objects[&oid(7)];
    assert_eq!(p.invocations, 35, "counters sum");
    assert_eq!(p.fuel_p95, 90, "percentile watermarks take the max");
    assert_eq!(p.remote_callers[&NodeId(1)], 10);
    assert_eq!(
        p.remote_callers[&NodeId(2)],
        23,
        "caller weights sum per site"
    );
    assert_eq!(p.remote_callers[&NodeId(6)], 2);
    assert_eq!(a.calls[&(NodeId(1), NodeId(7))], 14);
    let l = &a.links[&(NodeId(1), NodeId(7))];
    assert_eq!((l.delivered, l.dropped), (14, 1));
    assert_eq!(l.latency_p95_us, 9000);
    assert_eq!(a.now_us, 500, "older slice must not rewind the clock");
}

#[test]
fn fold_is_associative_across_many_slices() {
    let slices = [
        slice(
            100,
            &[(oid(1), profile(10, 4, &[(2, 10)]))],
            &[((2, 1), 10)],
            &[((2, 1), link(10, 0, 100))],
        ),
        slice(
            300,
            &[
                (oid(1), profile(7, 9, &[(3, 7)])),
                (oid(2), profile(4, 2, &[])),
            ],
            &[((3, 1), 7)],
            &[((2, 1), link(3, 1, 800))],
        ),
        slice(
            200,
            &[(oid(2), profile(6, 11, &[(2, 6)]))],
            &[((2, 2), 6)],
            &[((3, 2), link(6, 0, 50))],
        ),
        slice(50, &[], &[((2, 1), 1)], &[]),
    ];

    // ((a ⊕ b) ⊕ c) ⊕ d
    let mut left = slices[0].clone();
    for s in &slices[1..] {
        left.absorb(s);
    }
    // a ⊕ (b ⊕ (c ⊕ d))
    let mut tail = slices[2].clone();
    tail.absorb(&slices[3]);
    let mut mid = slices[1].clone();
    mid.absorb(&tail);
    let mut right = slices[0].clone();
    right.absorb(&mid);

    assert_eq!(left, right, "absorb must be associative");
    assert_eq!(
        left.to_json(),
        right.to_json(),
        "…down to the rendered JSON bytes"
    );
    assert_eq!(left.objects[&oid(1)].invocations, 17);
    assert_eq!(left.objects[&oid(2)].invocations, 10);
    assert_eq!(left.calls[&(NodeId(2), NodeId(1))], 11);
    assert_eq!(left.now_us, 300);
}
