//! Regression tests for `ObsMode::Ring` overwrite-oldest semantics.
//!
//! The flight recorder must behave like a true ring at its boundary:
//! filling it to *exactly* capacity evicts nothing, the `capacity+1`-th
//! event evicts exactly the oldest, and the semantics hold on a worker
//! thread that joined a migrated trace via `continue_trace` (each thread
//! owns its recorder, so the ring accounting must be independent).

use mrom_obs as obs;
use mrom_value::ObjectId;
use obs::ObsMode;

/// Records one point event (`meta_op` — a non-span kind, so each call is
/// exactly one ring entry).
fn one_event(tag: &'static str) {
    obs::meta_op(ObjectId::SYSTEM, tag);
}

#[test]
fn exactly_capacity_evicts_nothing() {
    obs::reset();
    obs::set_ring_capacity(8);
    obs::set_mode(ObsMode::Ring);
    for _ in 0..8 {
        one_event("getClass");
    }
    obs::set_mode(ObsMode::Disabled);
    assert_eq!(obs::ring_snapshot().len(), 8);
    assert_eq!(obs::ring_overwritten(), 0, "at capacity nothing is evicted");
    let seqs: Vec<u64> = obs::ring_snapshot().iter().map(|t| t.event.seq).collect();
    assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
}

#[test]
fn capacity_plus_one_evicts_exactly_the_oldest() {
    obs::reset();
    obs::set_ring_capacity(8);
    obs::set_mode(ObsMode::Ring);
    for _ in 0..9 {
        one_event("getClass");
    }
    obs::set_mode(ObsMode::Disabled);
    let ring = obs::ring_snapshot();
    assert_eq!(ring.len(), 8, "length stays pinned at capacity");
    assert_eq!(obs::ring_overwritten(), 1, "exactly one eviction");
    let seqs: Vec<u64> = ring.iter().map(|t| t.event.seq).collect();
    assert_eq!(seqs, (1..9).collect::<Vec<u64>>(), "seq 0 was the victim");
    assert_eq!(
        obs::events_recorded(),
        9,
        "the recorded-event counter keeps counting past eviction"
    );
}

#[test]
fn overwrite_semantics_hold_after_continue_trace_across_threads() {
    // Main thread: open a span so there is a real (trace, span) context
    // to continue from.
    obs::reset();
    obs::set_mode(ObsMode::Ring);
    let span = obs::invoke_start(ObjectId::SYSTEM, "dispatch", ObjectId::SYSTEM, 0);
    let (trace, parent) = obs::current_trace_context();
    assert_ne!(trace, 0);

    // Worker thread: its own thread-local recorder, a tiny ring, and a
    // continuation of the main thread's trace. Overwrite-oldest must
    // hold while trace linkage is preserved for the surviving events.
    let handle = std::thread::spawn(move || {
        obs::set_ring_capacity(4);
        obs::set_mode(ObsMode::Ring);
        let scope = obs::continue_trace(trace, parent);
        let remote = obs::invoke_start(ObjectId::SYSTEM, "adopt", ObjectId::SYSTEM, 0);
        for _ in 0..5 {
            one_event("getStats");
        }
        obs::invoke_end(remote, ObjectId::SYSTEM, "adopt", "ok", 0);
        drop(scope);
        obs::set_mode(ObsMode::Disabled);
        (
            obs::ring_snapshot(),
            obs::ring_overwritten(),
            obs::events_recorded(),
        )
    });
    let (ring, overwritten, recorded) = handle.join().expect("worker completes");
    obs::invoke_end(span, ObjectId::SYSTEM, "dispatch", "ok", 0);
    obs::set_mode(ObsMode::Disabled);

    // 7 events hit a 4-ring: 3 evicted (the invoke_start and the two
    // oldest meta_ops), the rest retained oldest-first.
    assert_eq!(recorded, 7);
    assert_eq!(overwritten, 3);
    assert_eq!(ring.len(), 4);
    let seqs: Vec<u64> = ring.iter().map(|t| t.event.seq).collect();
    assert_eq!(seqs, vec![3, 4, 5, 6]);
    // Every survivor still belongs to the continued trace, and the
    // closing invoke_end still references the continued parent linkage.
    assert!(ring.iter().all(|t| t.event.trace == trace));
    let last = ring.last().expect("nonempty");
    assert_eq!(last.kind.tag(), "invoke_end");

    // The main thread's ring was untouched by the worker's evictions.
    assert_eq!(obs::ring_overwritten(), 0);
    assert!(obs::ring_snapshot().len() >= 2);
}
