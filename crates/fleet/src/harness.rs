//! The fleet harness: builds a federation over a parameterized topology,
//! drives a seeded Zipf workload with churn and migration traffic through
//! it, drains everything, and distills the run into a [`FleetReport`].
//!
//! The harness is the scale analogue of `hadas::chaos`: where the chaos
//! suite stresses *one* object on *two* sites under adversarial links,
//! the fleet suite stresses *many* objects on *many* sites under churn,
//! and checks the same family of invariants — single host per object,
//! exactly-once counter windows, clean recovery, balanced accounting —
//! plus windowed-telemetry accounting across per-site slices.
//!
//! Everything is a pure function of `(config, seed)`: the simulator, the
//! Zipf stream, the churn schedule, and the report are all seeded, so a
//! run is reproducible byte for byte.

use std::collections::{BTreeMap, BTreeSet};

use hadas::{
    Advisor, AdvisorDecision, AdvisorInput, AmbassadorSpec, Candidate, Federation, HadasError,
    RetryPolicy,
};
use mrom_core::{AdmissionPolicy, ClassSpec, DataItem, Method, MethodBody};
use mrom_net::{LinkConfig, NetworkConfig, Topology, TopologyEdge};
use mrom_obs::{ObsMode, TelemetrySnapshot, WindowConfig};
use mrom_value::{NodeId, ObjectId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{AdvisorReport, FleetReport, LatencyReport};
use crate::workload::{FleetConfig, Zipf};

/// One epoch wide enough to hold any simulated run, so the whole run
/// lands in a single telemetry window.
const RUN_EPOCH_US: u64 = 1 << 40;

/// Name every site's status APO registers under when the advisor is on;
/// ambassador-refresh decisions re-import it across degraded links.
const FLEET_STATUS_APO: &str = "fleet-status";

/// Seed salt for the caller-affinity home assignment (its own stream, so
/// affinity draws never perturb the workload or churn streams).
const AFFINITY_SALT: u64 = 0xC3A5_5A3C_6996_0B5F;

/// A completed run: the invariant report plus the global telemetry
/// snapshot taken at the end (both deterministic per seed).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Counters and invariants.
    pub report: FleetReport,
    /// The recorder's windowed view of the whole run.
    pub telemetry: TelemetrySnapshot,
}

/// The fleet cell: one non-idempotent method (`bump`, so double-applied
/// retries are visible in state) and one read-only method (`peek`).
/// Compiled once; every instance shares the compiled program.
fn fleet_cell_class() -> ClassSpec {
    ClassSpec::new("fleet-cell")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_method(
            "bump",
            Method::public(
                MethodBody::script(
                    "self.set(\"count\", self.get(\"count\") + 1); return self.get(\"count\");",
                )
                .expect("bump parses"),
            ),
        )
        .fixed_method(
            "peek",
            Method::public(MethodBody::script("return self.get(\"count\");").expect("peek parses")),
        )
}

/// Wire-encoded migration image size of a fresh fleet cell — the
/// bytes-per-object figure the capacity bench reports.
///
/// # Panics
///
/// Never in practice: the cell is script-only and always imageable.
#[must_use]
pub fn cell_image_bytes() -> usize {
    let cell = fleet_cell_class().instantiate_as(ObjectId::from_parts(NodeId(1), 1, 1), None);
    let image = cell.image_value().expect("script-only cell is imageable");
    mrom_value::wire::encode(&image).len()
}

/// A churn step scheduled at a workload-op index.
#[derive(Debug, Clone, Copy)]
enum ChurnAction {
    Crash(NodeId),
    Restart(NodeId),
}

/// Runs one fleet scenario under one seed and reports the final state.
/// The run itself never asserts; callers check
/// [`FleetReport::violations`] so a failing seed reports *what* broke.
///
/// Windowed telemetry is recorded for the duration (previous recorder
/// state is reset and recording is switched off again afterwards).
///
/// # Errors
///
/// Setup failures and non-fault protocol errors; fault-induced timeouts
/// are expected outcomes and are tallied, not returned.
pub fn run_fleet(cfg: &FleetConfig, seed: u64) -> Result<FleetRun, HadasError> {
    let prev_mode = mrom_obs::mode();
    mrom_obs::reset();
    // Caller tracking is gated on the advisor so advisor-off telemetry
    // stays byte-identical to pre-advisor builds.
    let mut window = WindowConfig::new(RUN_EPOCH_US, 2);
    if cfg.advisor.enabled {
        window = window.with_callers();
    }
    mrom_obs::set_window(Some(window));
    mrom_obs::set_mode(ObsMode::Ring);
    let result = run_inner(cfg, seed);
    mrom_obs::reset();
    mrom_obs::set_window(None);
    mrom_obs::set_mode(prev_mode);
    result
}

/// Per-site status APO registered when the advisor is on: one public
/// datum naming its origin and a pure reader, enough for ambassador
/// refresh traffic to be real protocol work.
fn fleet_status_class(origin: NodeId) -> ClassSpec {
    ClassSpec::new("fleet-status")
        .fixed_data(
            "origin",
            DataItem::public(Value::Int(i64::try_from(origin.0).unwrap_or(i64::MAX))),
        )
        .fixed_method(
            "status",
            Method::public(
                MethodBody::script("return self.get(\"origin\");").expect("status parses"),
            ),
        )
}

/// Exact percentile over a sorted latency slice (nearest-rank on the
/// zero-based index, so the figure is integer-deterministic).
fn percentile_us(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// p50/p95 over one quarter of the latency trace.
fn quarter_stats(quarter: &[u64]) -> (u64, u64) {
    let mut sorted = quarter.to_vec();
    sorted.sort_unstable();
    (percentile_us(&sorted, 50), percentile_us(&sorted, 95))
}

#[allow(clippy::too_many_lines)]
fn run_inner(cfg: &FleetConfig, seed: u64) -> Result<FleetRun, HadasError> {
    let n = cfg.sites;
    let sites = Topology::sites(n);
    let edges = cfg.topology.edges(n);
    let affinity = cfg.caller_affinity_permille > 0;

    // -- federation over the topology ------------------------------------
    // In caller-affinity mode the default (non-edge) route is WAN-priced:
    // pre-convergence remote traffic is visibly expensive, while topology
    // edges keep their tier links. No jitter or loss — fault-free runs
    // stay RNG-free either way.
    let default_link = if affinity {
        LinkConfig::new()
            .latency_us(80_000)
            .bandwidth_bytes_per_sec(64_000)
    } else {
        mrom_net::LinkTier::Local.link()
    };
    let net_cfg = NetworkConfig::new(seed).with_default_link(default_link);
    let mut fed = Federation::new(net_cfg);
    for &s in &sites {
        fed.add_site(s)?;
    }
    fed.set_retry_policy(RetryPolicy::standard());
    fed.set_site_workers(cfg.workers);
    let mut adj: BTreeMap<NodeId, Vec<NodeId>> = sites.iter().map(|&s| (s, Vec::new())).collect();
    for &TopologyEdge { a, b, tier } in &edges {
        fed.net_config_mut().set_symmetric_link(a, b, tier.link());
        fed.link(a, b)?;
        adj.get_mut(&a).expect("site known").push(b);
        adj.get_mut(&b).expect("site known").push(a);
    }
    for neighbors in adj.values_mut() {
        neighbors.sort_unstable();
        neighbors.dedup();
    }
    let mut ioo_ids: BTreeMap<NodeId, ObjectId> = BTreeMap::new();
    for &s in &sites {
        ioo_ids.insert(s, fed.ioo_id(s)?);
    }
    if cfg.advisor.enabled {
        // Every site exports a status APO so ambassador-refresh
        // decisions have something real to (re)deploy.
        for &s in &sites {
            let apo = {
                let rt = fed.runtime_mut(s)?;
                fleet_status_class(s).instantiate_as(rt.ids_mut().next_id(), None)
            };
            let spec = AmbassadorSpec::relay_only()
                .with_methods(["status"])
                .with_data(["origin"]);
            fed.integrate_apo(s, FLEET_STATUS_APO, apo, spec)?;
        }
    }

    // -- the object population (interleaved placement) -------------------
    let class = fleet_cell_class();
    let total = cfg.total_objects();
    let mut objects: Vec<ObjectId> = Vec::with_capacity(total);
    let mut hosts: Vec<NodeId> = Vec::with_capacity(total);
    for k in 0..total {
        let site = sites[k % n];
        let rt = fed.runtime_mut(site)?;
        let cell = class.instantiate_as(rt.ids_mut().next_id(), None);
        let id = cell.id();
        rt.adopt(cell)?;
        objects.push(id);
        hosts.push(site);
    }

    // -- caller-affinity homes (own RNG stream) --------------------------
    // Each object gets a seeded home caller plus a distinct alternate
    // (used only by the ping-pong flip). Residual non-affine draws come
    // from the home's topology neighbors, so a converged placement
    // serves them over cheap tier links rather than the WAN default.
    let mut home: Vec<NodeId> = Vec::new();
    let mut alt: Vec<NodeId> = Vec::new();
    if affinity {
        let mut aff_rng = StdRng::seed_from_u64(seed ^ AFFINITY_SALT);
        for _ in 0..total {
            let h = aff_rng.random_range(0..n);
            let mut a = aff_rng.random_range(0..n);
            if a == h {
                a = (a + 1) % n;
            }
            home.push(sites[h]);
            alt.push(sites[a]);
        }
    }

    // -- churn schedule (own RNG stream; core sites are spared) ----------
    let core: BTreeSet<NodeId> = cfg.topology.core_sites(n).into_iter().collect();
    let pool: Vec<NodeId> = sites
        .iter()
        .copied()
        .filter(|s| !core.contains(s))
        .collect();
    let mut churn_rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut schedule: Vec<(usize, ChurnAction)> = Vec::new();
    if cfg.churn_events > 0 && !pool.is_empty() {
        let stride = cfg.invocations / (cfg.churn_events + 1);
        if stride > 0 {
            for i in 0..cfg.churn_events {
                let victim = pool[churn_rng.random_range(0..pool.len())];
                let crash_at = (i + 1) * stride;
                let restart_at = crash_at + (stride / 2).max(1);
                schedule.push((crash_at, ChurnAction::Crash(victim)));
                if restart_at < cfg.invocations {
                    schedule.push((restart_at, ChurnAction::Restart(victim)));
                }
            }
        }
    }
    schedule.sort_by_key(|&(at, _)| at);

    // -- the seeded Zipf workload ----------------------------------------
    let zipf = Zipf::new(total, cfg.zipf_permille);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ok_per = vec![0u32; total];
    let mut failed_per = vec![0u32; total];
    let mut touched: BTreeSet<usize> = BTreeSet::new();
    let mut down: BTreeSet<NodeId> = BTreeSet::new();
    let mut report = FleetReport {
        topology: cfg.topology.name(),
        seed,
        sites: n as u64,
        objects: total as u64,
        invocations: cfg.invocations as u64,
        workers: cfg.workers as u64,
        ops_ok: 0,
        ops_failed: 0,
        ops_rejected: 0,
        peeks_ok: 0,
        peeks_failed: 0,
        peeks_rejected: 0,
        migrations_ok: 0,
        migrations_failed: 0,
        migrations_skipped: 0,
        crashes: 0,
        restarts: 0,
        distinct_targets: 0,
        counter_total: 0,
        lost_objects: 0,
        duplicated_objects: 0,
        window_violations: 0,
        parked_in_doubt: 0,
        in_flight: 0,
        stats: mrom_net::NetStats::default(),
        telemetry_invocations: 0,
        telemetry_fold_matches: true,
        advisor: None,
        latency: None,
    };

    // -- advisor state ----------------------------------------------------
    let mut advisor = Advisor::new(cfg.advisor);
    let mut advisor_report = AdvisorReport::default();
    let mut next_epoch_at = cfg.advisor.epoch_us.max(1);
    let mut shed_active = false;
    let mut latencies: Vec<u64> = Vec::new();

    let mut next_event = 0usize;
    for op in 0..cfg.invocations {
        while next_event < schedule.len() && schedule[next_event].0 <= op {
            match schedule[next_event].1 {
                ChurnAction::Crash(v) if !down.contains(&v) => {
                    // Checkpoint at the crash instant so the restart
                    // restores exactly the pre-crash state — state loss
                    // would invalidate the exactly-once windows.
                    fed.checkpoint_site(v)?;
                    fed.crash_site(v)?;
                    down.insert(v);
                    report.crashes += 1;
                }
                ChurnAction::Restart(v) if down.contains(&v) => {
                    fed.restart_site(v)?;
                    down.remove(&v);
                    report.restarts += 1;
                }
                _ => {}
            }
            next_event += 1;
        }

        let k = zipf.sample(&mut rng);
        let target = objects[k];
        let host = hosts[k];
        touched.insert(k);
        let (caller, bumping) = if affinity {
            // The op originates at the object's (possibly flipped) home
            // caller, or at one of the home's neighbors for the
            // residual non-affine share.
            let base = if cfg.affinity_flip_every > 0 && (op / cfg.affinity_flip_every) % 2 == 1 {
                alt[k]
            } else {
                home[k]
            };
            let from_home = rng.random_range(0..1000u64) < cfg.caller_affinity_permille;
            let bumping = rng.random_bool(0.75);
            let caller = if from_home {
                base
            } else {
                let nbrs = &adj[&base];
                if nbrs.is_empty() {
                    base
                } else {
                    nbrs[rng.random_range(0..nbrs.len())]
                }
            };
            (caller, bumping)
        } else {
            // Classic workload: caller is the host itself or one of the
            // host's neighbors — exactly the pre-advisor draw sequence.
            let neighbors = &adj[&host];
            let pick = rng.random_range(0..=neighbors.len());
            let bumping = rng.random_bool(0.75);
            let caller = if pick == 0 { host } else { neighbors[pick - 1] };
            (caller, bumping)
        };
        let method = if bumping { "bump" } else { "peek" };
        let issued_at = fed.now().as_micros();
        let outcome = if caller == host {
            // Caller and object share a site: straight runtime invoke.
            fed.runtime_mut(host)?
                .invoke(ioo_ids[&host], target, method, &[])
                .map_err(HadasError::Model)
        } else {
            fed.remote_invoke(caller, host, ioo_ids[&caller], target, method, &[])
        };
        if affinity {
            // Virtual-time cost of the op: 0 when served locally, the
            // round-trip (plus retries) when served remotely.
            latencies.push(fed.now().as_micros().saturating_sub(issued_at));
        }
        match (outcome, bumping) {
            (Ok(_), true) => {
                report.ops_ok += 1;
                ok_per[k] += 1;
            }
            (Ok(_), false) => report.peeks_ok += 1,
            // Ambiguous: the request may have been applied before the
            // reply was lost — widens the per-object window.
            (Err(HadasError::Timeout { .. }), true) => {
                report.ops_failed += 1;
                failed_per[k] += 1;
            }
            (Err(HadasError::Timeout { .. }), false) => report.peeks_failed += 1,
            // Definite refusal (e.g. the host crashed and evicted the
            // cell): provably never applied.
            (Err(_), true) => report.ops_rejected += 1,
            (Err(_), false) => report.peeks_rejected += 1,
        }

        if cfg.migration_every != 0 && (op + 1) % cfg.migration_every == 0 {
            let m = zipf.sample(&mut rng);
            let from = hosts[m];
            let targets = &adj[&from];
            if !targets.is_empty() {
                let to = targets[rng.random_range(0..targets.len())];
                match fed.dispatch_object(from, to, objects[m]) {
                    Ok(()) => {
                        report.migrations_ok += 1;
                        hosts[m] = to;
                    }
                    // Parked in-doubt; the drain settles ownership.
                    Err(HadasError::Timeout { .. }) => report.migrations_failed += 1,
                    Err(_) => report.migrations_skipped += 1,
                }
            }
        }

        if cfg.advisor.enabled && fed.now().as_micros() >= next_epoch_at {
            advisor_pass(
                &mut fed,
                &mut advisor,
                &mut advisor_report,
                &mut shed_active,
                &objects,
                &mut hosts,
                &down,
            )?;
            next_epoch_at = fed.now().as_micros() + cfg.advisor.epoch_us.max(1);
        }
    }
    report.distinct_targets = touched.len() as u64;

    // -- heal, drain, settle ----------------------------------------------
    for v in std::mem::take(&mut down) {
        fed.restart_site(v)?;
        report.restarts += 1;
    }
    fed.pump_all();
    settle_in_doubt(&mut fed)?;
    fed.pump_all();

    // -- final state scan --------------------------------------------------
    let member: BTreeMap<ObjectId, usize> =
        objects.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut copies = vec![0u32; total];
    let mut final_host: Vec<Option<NodeId>> = vec![None; total];
    for &node in &sites {
        for id in fed.runtime(node)?.object_ids() {
            if let Some(&i) = member.get(&id) {
                copies[i] += 1;
                final_host[i] = Some(node);
            }
        }
    }
    for i in 0..total {
        match copies[i] {
            0 => report.lost_objects += 1,
            1 => {
                let host = final_host[i].expect("counted a copy");
                let count = fed
                    .runtime(host)?
                    .object(objects[i])
                    .and_then(|obj| obj.read_data(ObjectId::SYSTEM, "count").ok())
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                report.counter_total += count;
                let min = i64::from(ok_per[i]);
                let max = min + i64::from(failed_per[i]);
                if count < min || count > max {
                    report.window_violations += 1;
                }
            }
            _ => report.duplicated_objects += 1,
        }
    }
    report.parked_in_doubt = parked_total(&fed) as u64;
    report.in_flight = fed.in_flight() as u64;
    report.stats = fed.net_stats().clone();
    if cfg.advisor.enabled {
        report.advisor = Some(advisor_report);
    }
    if affinity && !latencies.is_empty() {
        let q = (latencies.len() / 4).max(1).min(latencies.len());
        let (early_p50, early_p95) = quarter_stats(&latencies[..q]);
        let (late_p50, late_p95) = quarter_stats(&latencies[latencies.len() - q..]);
        report.latency = Some(LatencyReport {
            ops_measured: latencies.len() as u64,
            early_p50_us: early_p50,
            early_p95_us: early_p95,
            late_p50_us: late_p50,
            late_p95_us: late_p95,
        });
    }

    // -- telemetry accounting ----------------------------------------------
    let telemetry = fed.telemetry();
    report.telemetry_invocations = objects
        .iter()
        .filter_map(|id| telemetry.objects.get(id))
        .map(|profile| profile.invocations)
        .sum();
    let mut folded = TelemetrySnapshot::default();
    for &node in &sites {
        folded.absorb(&fed.site_telemetry(node)?);
    }
    report.telemetry_fold_matches = folded.objects == telemetry.objects;

    Ok(FleetRun { report, telemetry })
}

/// One advisory epoch: global telemetry snapshot → effect-system
/// candidate table → pure [`Advisor::decide`] → execute each decision
/// through the ordinary federation machinery → commit the evidence
/// ledgers. The pass itself consumes no RNG: every decision is a pure
/// function of the snapshot, the config, and the accumulated state.
#[allow(clippy::too_many_lines)]
fn advisor_pass(
    fed: &mut Federation,
    advisor: &mut Advisor,
    advisor_report: &mut AdvisorReport,
    shed_active: &mut bool,
    objects: &[ObjectId],
    hosts: &mut [NodeId],
    down: &BTreeSet<NodeId>,
) -> Result<(), HadasError> {
    let snap = fed.telemetry();
    let stats = fed.net_stats().clone();
    let mut candidates = BTreeMap::new();
    for (i, &id) in objects.iter().enumerate() {
        let host = hosts[i];
        if down.contains(&host) {
            continue;
        }
        let Ok(rt) = fed.runtime_mut(host) else {
            continue;
        };
        // Checked-out or evicted objects are simply not advisable.
        let Some(obj) = rt.object_mut(id) else {
            continue;
        };
        let effects = obj.effects();
        let migration_safe = !effects.is_empty() && effects.values().all(|sig| sig.migration_safe);
        let idempotent = effects.values().filter(|sig| sig.idempotent).count() as u64;
        let idempotent_permille = if effects.is_empty() {
            0
        } else {
            idempotent * 1000 / effects.len() as u64
        };
        candidates.insert(
            id,
            Candidate {
                host,
                migration_safe,
                idempotent_permille,
                busy: false,
            },
        );
    }
    let input = AdvisorInput {
        epoch: advisor_report.epochs,
        telemetry: &snap,
        stats: &stats,
        candidates,
    };
    let pass = advisor.decide(&input);

    let member: BTreeMap<ObjectId, usize> =
        objects.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut shed_this_pass = false;
    for decision in &pass.decisions {
        match *decision {
            AdvisorDecision::Migrate { object, from, to } => {
                let Some(&i) = member.get(&object) else {
                    continue;
                };
                if hosts[i] != from || from == to || down.contains(&from) || down.contains(&to) {
                    advisor_report.migrations_skipped += 1;
                    continue;
                }
                // Link on demand: the advisor targets arbitrary pairs,
                // dispatch requires an agreement.
                if !fed.is_linked(from, to) && fed.link(from, to).is_err() {
                    advisor_report.migrations_skipped += 1;
                    continue;
                }
                match fed.dispatch_object(from, to, object) {
                    Ok(()) => {
                        advisor_report.migrations_ok += 1;
                        hosts[i] = to;
                    }
                    // Parked in-doubt; the final drain settles it.
                    Err(HadasError::Timeout { .. }) => advisor_report.migrations_failed += 1,
                    Err(_) => advisor_report.migrations_skipped += 1,
                }
            }
            AdvisorDecision::RefreshAmbassador { origin, host } => {
                if origin == host || down.contains(&origin) || down.contains(&host) {
                    continue;
                }
                if !fed.is_linked(host, origin) && fed.link(host, origin).is_err() {
                    continue;
                }
                if fed.import_apo(host, origin, FLEET_STATUS_APO).is_ok() {
                    advisor_report.ambassadors_refreshed += 1;
                }
            }
            AdvisorDecision::Shed { site: _ } => {
                // Admission is federation-wide: tightening to Strict
                // makes every admission pay analysis and refuse
                // error-severity images until the pressure clears.
                fed.set_admission_policy(AdmissionPolicy::Strict);
                *shed_active = true;
                shed_this_pass = true;
                advisor_report.sheds += 1;
            }
        }
    }
    if *shed_active && !shed_this_pass {
        fed.set_admission_policy(AdmissionPolicy::Off);
        *shed_active = false;
    }
    advisor_report.thrash_aborts += pass.thrash_aborts;
    advisor_report.epochs += 1;
    advisor.commit(&input, &pass);
    Ok(())
}

/// Heals every parked migration at every site, retrying a few passes in
/// case the first query races residual traffic.
fn settle_in_doubt(fed: &mut Federation) -> Result<(), HadasError> {
    for _ in 0..3 {
        let mut parked = 0;
        for node in fed.site_nodes() {
            parked += fed.in_doubt(node)?.len();
            fed.resolve_in_doubt(node)?;
        }
        if parked == 0 {
            return Ok(());
        }
    }
    Ok(())
}

/// Total in-doubt entries across the federation.
fn parked_total(fed: &Federation) -> usize {
    fed.site_nodes()
        .into_iter()
        .filter_map(|n| fed.in_doubt(n).ok())
        .map(|v| v.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_every_invariant() {
        let run = run_fleet(&FleetConfig::smoke(), 42).expect("smoke runs");
        run.report.assert_invariants();
        assert!(run.report.ops_ok > 0, "some bumps must land");
        assert!(run.report.migrations_ok > 0, "some migrations must land");
        assert_eq!(run.report.crashes, 2);
        assert!(run.report.distinct_targets > 1);
    }

    #[test]
    fn zipf_concentrates_traffic_on_hot_cells() {
        let run = run_fleet(&FleetConfig::smoke(), 7).expect("smoke runs");
        // 400 draws over 200 cells at s=1.1 must leave cold cells.
        assert!(run.report.distinct_targets < run.report.objects);
    }

    #[test]
    fn cell_image_is_small_and_stable() {
        let bytes = cell_image_bytes();
        assert!(bytes > 0);
        assert_eq!(bytes, cell_image_bytes());
    }
}
