//! End-of-run fleet report: every counter the harness tallied plus the
//! global invariants a run must uphold *regardless of seed, topology,
//! churn schedule, or worker-pool width*.
//!
//! The report is integers-only (plus stable name strings), so its JSON
//! rendering is byte-identical across runs of the same seed — the
//! property the determinism suite sweeps.

use mrom_net::NetStats;
use mrom_value::Value;

/// What the self-tuning Advisor did over one run. Present only when the
/// run's [`AdvisorConfig`](hadas::AdvisorConfig) was enabled, so
/// advisor-off reports stay byte-identical to pre-advisor builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvisorReport {
    /// Advisory passes executed (one per virtual-time epoch reached).
    pub epochs: u64,
    /// Advisor-driven migrations acknowledged by the destination.
    pub migrations_ok: u64,
    /// Advisor-driven migrations parked in-doubt (settled by the drain).
    pub migrations_failed: u64,
    /// Advisor-driven migrations refused outright.
    pub migrations_skipped: u64,
    /// Candidate moves suppressed by dwell time or migration budgets —
    /// the no-thrash witness.
    pub thrash_aborts: u64,
    /// Ambassadors deployed or refreshed across degraded links.
    pub ambassadors_refreshed: u64,
    /// Shed decisions executed (admission policy tightened).
    pub sheds: u64,
}

impl AdvisorReport {
    fn to_value(self) -> Value {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        Value::map([
            ("epochs", int(self.epochs)),
            ("migrations_ok", int(self.migrations_ok)),
            ("migrations_failed", int(self.migrations_failed)),
            ("migrations_skipped", int(self.migrations_skipped)),
            ("thrash_aborts", int(self.thrash_aborts)),
            ("ambassadors_refreshed", int(self.ambassadors_refreshed)),
            ("sheds", int(self.sheds)),
        ])
    }
}

/// Virtual-time per-op latency percentiles over the run's first and
/// last quarters. Present only for caller-affinity workloads (the E19
/// battery), where the early/late contrast is the convergence figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyReport {
    /// Workload ops whose virtual-time latency was measured.
    pub ops_measured: u64,
    /// Median latency over the first quarter of ops, in µs.
    pub early_p50_us: u64,
    /// 95th-percentile latency over the first quarter of ops, in µs.
    pub early_p95_us: u64,
    /// Median latency over the last quarter of ops, in µs.
    pub late_p50_us: u64,
    /// 95th-percentile latency over the last quarter of ops, in µs.
    pub late_p95_us: u64,
}

impl LatencyReport {
    fn to_value(self) -> Value {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        Value::map([
            ("ops_measured", int(self.ops_measured)),
            ("early_p50_us", int(self.early_p50_us)),
            ("early_p95_us", int(self.early_p95_us)),
            ("late_p50_us", int(self.late_p50_us)),
            ("late_p95_us", int(self.late_p95_us)),
        ])
    }
}

/// The outcome of one [`crate::run_fleet`] run. Doubles as the
/// determinism witness: same config + seed must reproduce it field for
/// field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Topology name (stable, lowercase).
    pub topology: &'static str,
    /// The seed the run executed under.
    pub seed: u64,
    /// Number of sites.
    pub sites: u64,
    /// Total objects in the fleet.
    pub objects: u64,
    /// Workload operations issued.
    pub invocations: u64,
    /// Per-site worker pool width.
    pub workers: u64,
    /// Non-idempotent `bump` calls acknowledged.
    pub ops_ok: u64,
    /// `bump` calls that timed out after every retry (ambiguous: the
    /// increment may or may not have landed).
    pub ops_failed: u64,
    /// `bump` calls definitively refused (e.g. the target site was down
    /// and had evicted the object) — provably never applied.
    pub ops_rejected: u64,
    /// Read-only `peek` calls acknowledged.
    pub peeks_ok: u64,
    /// `peek` calls that timed out (ambiguous).
    pub peeks_failed: u64,
    /// `peek` calls definitively refused.
    pub peeks_rejected: u64,
    /// Migrations acknowledged by the destination.
    pub migrations_ok: u64,
    /// Migrations parked in-doubt (timeout; settled during the drain).
    pub migrations_failed: u64,
    /// Migrations refused outright (object currently unavailable).
    pub migrations_skipped: u64,
    /// Churn crash events injected.
    pub crashes: u64,
    /// Churn restart events injected.
    pub restarts: u64,
    /// Distinct objects the Zipf stream actually targeted.
    pub distinct_targets: u64,
    /// Sum of every cell's final counter.
    pub counter_total: i64,
    /// Objects with zero live copies after the final drain.
    pub lost_objects: u64,
    /// Objects with more than one live copy after the final drain.
    pub duplicated_objects: u64,
    /// Objects whose final counter fell outside their per-object
    /// exactly-once window `[ok, ok + failed]`.
    pub window_violations: u64,
    /// Migrations still in doubt after the drain.
    pub parked_in_doubt: u64,
    /// Messages still on the wire after the drain.
    pub in_flight: u64,
    /// Simulator counters at the end of the run.
    pub stats: NetStats,
    /// Windowed telemetry applications summed over every fleet cell.
    pub telemetry_invocations: u64,
    /// Whether absorbing every per-site telemetry slice reproduced the
    /// global per-object profiles exactly.
    pub telemetry_fold_matches: bool,
    /// Advisor activity, when the run's advisor was enabled (`None`
    /// keeps advisor-off reports byte-identical to pre-advisor builds).
    pub advisor: Option<AdvisorReport>,
    /// Early/late latency percentiles, for caller-affinity workloads.
    pub latency: Option<LatencyReport>,
}

impl FleetReport {
    /// Advisor-driven migrations attempted (acknowledged + in-doubt);
    /// 0 when the advisor was off.
    #[must_use]
    pub fn advisor_migrations(&self) -> u64 {
        self.advisor
            .map_or(0, |a| a.migrations_ok + a.migrations_failed)
    }

    /// Moves the advisor's hysteresis suppressed; 0 when it was off.
    #[must_use]
    pub fn advisor_thrash_aborts(&self) -> u64 {
        self.advisor.map_or(0, |a| a.thrash_aborts)
    }

    /// Checks every fleet invariant, returning a human-readable list of
    /// violations (empty = the run upheld all of them):
    ///
    /// 1. **single host** — every object lives at exactly one site;
    /// 2. **exactly-once windows** — each cell's counter sits inside its
    ///    `[acknowledged, acknowledged + ambiguous]` window;
    /// 3. **clean recovery** — nothing parked in doubt, nothing on the
    ///    wire after the drain;
    /// 4. **accounting** — every simulator send is delivered or dropped;
    /// 5. **telemetry accounting** — windowed per-object applications
    ///    equal the state-derived application count up to ambiguous
    ///    peeks, and the per-site slices fold back to the global view.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.lost_objects != 0 {
            out.push(format!(
                "{} object(s) lost (zero live copies)",
                self.lost_objects
            ));
        }
        if self.duplicated_objects != 0 {
            out.push(format!(
                "{} object(s) duplicated (multiple live copies)",
                self.duplicated_objects
            ));
        }
        if self.window_violations != 0 {
            out.push(format!(
                "{} cell(s) outside their exactly-once counter window",
                self.window_violations
            ));
        }
        if self.parked_in_doubt != 0 {
            out.push(format!(
                "{} migration(s) still in doubt after the drain",
                self.parked_in_doubt
            ));
        }
        if self.in_flight != 0 {
            out.push(format!(
                "{} message(s) still in flight after the drain",
                self.in_flight
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        if !self.stats.accounts_for_every_send(self.in_flight as usize) {
            out.push(format!(
                "stats do not balance: delivered {} + dropped {} + in-flight {} \
                 != sent {} + duplicated {}",
                self.stats.messages_delivered,
                self.stats.messages_dropped,
                self.in_flight,
                self.stats.messages_sent,
                self.stats.messages_duplicated,
            ));
        }
        // Every applied `bump` left exactly one increment (state survives
        // churn because the harness checkpoints at the crash instant), so
        // actual bump applications == counter_total. Peek applications are
        // known exactly for acknowledged calls and at-most-once for
        // ambiguous ones, which bounds the windowed telemetry count.
        #[allow(clippy::cast_sign_loss)]
        let applied_bumps = self.counter_total.max(0) as u64;
        let min = applied_bumps + self.peeks_ok;
        let max = applied_bumps + self.peeks_ok + self.peeks_failed;
        if self.telemetry_invocations < min || self.telemetry_invocations > max {
            out.push(format!(
                "telemetry counted {} applications, outside window [{min}, {max}]",
                self.telemetry_invocations
            ));
        }
        if !self.telemetry_fold_matches {
            out.push("per-site telemetry slices do not fold back to the global view".to_owned());
        }
        out
    }

    /// Panics with the full violation list if any invariant failed.
    pub fn assert_invariants(&self) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "fleet invariants violated ({} seed {}):\n  {}",
            self.topology,
            self.seed,
            violations.join("\n  ")
        );
    }

    /// The report as an integers-only [`Value`] tree (schema
    /// `mrom.fleet.v1`) — render with [`mrom_obs::to_json`] for the
    /// byte-stable JSON the determinism suite compares.
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    pub fn to_value(&self) -> Value {
        let int = |v: u64| Value::Int(v as i64);
        let mut fields = vec![
            ("schema", Value::from("mrom.fleet.v1")),
            ("topology", Value::from(self.topology)),
            ("seed", int(self.seed)),
            (
                "shape",
                Value::map([
                    ("sites", int(self.sites)),
                    ("objects", int(self.objects)),
                    ("invocations", int(self.invocations)),
                    ("workers", int(self.workers)),
                ]),
            ),
            (
                "ops",
                Value::map([
                    ("bump_ok", int(self.ops_ok)),
                    ("bump_failed", int(self.ops_failed)),
                    ("bump_rejected", int(self.ops_rejected)),
                    ("peek_ok", int(self.peeks_ok)),
                    ("peek_failed", int(self.peeks_failed)),
                    ("peek_rejected", int(self.peeks_rejected)),
                    ("distinct_targets", int(self.distinct_targets)),
                ]),
            ),
            (
                "migrations",
                Value::map([
                    ("ok", int(self.migrations_ok)),
                    ("failed", int(self.migrations_failed)),
                    ("skipped", int(self.migrations_skipped)),
                ]),
            ),
            (
                "churn",
                Value::map([
                    ("crashes", int(self.crashes)),
                    ("restarts", int(self.restarts)),
                ]),
            ),
            (
                "state",
                Value::map([
                    ("counter_total", Value::Int(self.counter_total)),
                    ("lost_objects", int(self.lost_objects)),
                    ("duplicated_objects", int(self.duplicated_objects)),
                    ("window_violations", int(self.window_violations)),
                    ("parked_in_doubt", int(self.parked_in_doubt)),
                    ("in_flight", int(self.in_flight)),
                ]),
            ),
            (
                "net",
                Value::map([
                    ("sent", int(self.stats.messages_sent)),
                    ("delivered", int(self.stats.messages_delivered)),
                    ("dropped", int(self.stats.messages_dropped)),
                    ("duplicated", int(self.stats.messages_duplicated)),
                    ("bytes_sent", int(self.stats.bytes_sent)),
                    ("bytes_delivered", int(self.stats.bytes_delivered)),
                ]),
            ),
            (
                "telemetry",
                Value::map([
                    ("invocations", int(self.telemetry_invocations)),
                    ("fold_matches", Value::Bool(self.telemetry_fold_matches)),
                ]),
            ),
        ];
        // Rendered only when present, so advisor-off runs keep the exact
        // pre-advisor JSON byte layout (the golden regression compares
        // against artifacts captured before the Advisor existed).
        if let Some(advisor) = self.advisor {
            fields.push(("advisor", advisor.to_value()));
        }
        if let Some(latency) = self.latency {
            fields.push(("latency", latency.to_value()));
        }
        Value::map(fields)
    }

    /// [`FleetReport::to_value`] rendered as canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        mrom_obs::to_json(&self.to_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_report() -> FleetReport {
        FleetReport {
            topology: "star",
            seed: 1,
            sites: 2,
            objects: 4,
            invocations: 10,
            workers: 1,
            ops_ok: 6,
            ops_failed: 1,
            ops_rejected: 0,
            peeks_ok: 3,
            peeks_failed: 0,
            peeks_rejected: 0,
            migrations_ok: 1,
            migrations_failed: 0,
            migrations_skipped: 0,
            crashes: 0,
            restarts: 0,
            distinct_targets: 3,
            counter_total: 7,
            lost_objects: 0,
            duplicated_objects: 0,
            window_violations: 0,
            parked_in_doubt: 0,
            in_flight: 0,
            stats: NetStats {
                messages_sent: 20,
                messages_delivered: 20,
                ..NetStats::default()
            },
            telemetry_invocations: 10,
            telemetry_fold_matches: true,
            advisor: None,
            latency: None,
        }
    }

    #[test]
    fn clean_report_has_no_violations() {
        assert!(clean_report().violations().is_empty());
        clean_report().assert_invariants();
    }

    #[test]
    fn each_invariant_trips_its_own_violation() {
        let mut lost = clean_report();
        lost.lost_objects = 2;
        assert!(lost.violations().iter().any(|v| v.contains("lost")));

        let mut dup = clean_report();
        dup.duplicated_objects = 1;
        assert!(dup.violations().iter().any(|v| v.contains("duplicated")));

        let mut window = clean_report();
        window.window_violations = 3;
        assert!(window.violations().iter().any(|v| v.contains("window")));

        let mut telemetry = clean_report();
        telemetry.telemetry_invocations = 99;
        assert!(telemetry
            .violations()
            .iter()
            .any(|v| v.contains("telemetry counted")));

        let mut fold = clean_report();
        fold.telemetry_fold_matches = false;
        assert!(fold.violations().iter().any(|v| v.contains("fold")));

        let mut unbalanced = clean_report();
        unbalanced.stats.messages_delivered = 19;
        assert!(unbalanced
            .violations()
            .iter()
            .any(|v| v.contains("stats do not balance")));
    }

    #[test]
    fn ambiguous_peeks_widen_the_telemetry_window() {
        let mut r = clean_report();
        r.peeks_failed = 2;
        r.telemetry_invocations = 12; // 7 bumps + 3 acked peeks + 2 ambiguous
        assert!(r.violations().is_empty());
        r.telemetry_invocations = 13; // one more than any execution could explain
        assert!(!r.violations().is_empty());
    }

    #[test]
    fn advisor_and_latency_sections_render_only_when_present() {
        let off = clean_report().to_json();
        assert!(!off.contains("\"advisor\""));
        assert!(!off.contains("\"latency\""));
        let mut on = clean_report();
        on.advisor = Some(AdvisorReport {
            epochs: 3,
            migrations_ok: 2,
            thrash_aborts: 1,
            ..AdvisorReport::default()
        });
        on.latency = Some(LatencyReport {
            ops_measured: 100,
            early_p95_us: 160_000,
            late_p95_us: 4_000,
            ..LatencyReport::default()
        });
        let json = on.to_json();
        assert!(json.contains("\"advisor\":{"));
        assert!(json.contains("\"thrash_aborts\":1"));
        assert!(json.contains("\"latency\":{"));
        assert_eq!(on.advisor_migrations(), 2);
        assert_eq!(on.advisor_thrash_aborts(), 1);
        assert_eq!(clean_report().advisor_migrations(), 0);
    }

    #[test]
    fn json_rendering_is_stable() {
        let a = clean_report().to_json();
        let b = clean_report().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\":\"mrom.fleet.v1\""));
        assert!(a.contains("\"counter_total\":7"));
    }
}
