//! The agent-marketplace scenario: ambassadors advertise their origin
//! APO's host manifest as a **capability card**, and consumer sites use
//! the card to decide — *before* moving any code — which methods are
//! worth importing and which can never migrate safely.
//!
//! The flow, per consumer site:
//!
//! 1. the provider integrates a service APO whose ambassador spec
//!    carries [`hadas::capability_card`] data (`advertise_card`);
//! 2. the consumer imports the ambassador and *browses* the card: a
//!    read-only map from method name to its static effect surface
//!    (reads/writes/world calls/purity), derived from the PR-2
//!    `HostManifest` of each script body;
//! 3. methods the card shows as world-free are negotiated over the
//!    wire ([`hadas::Federation::negotiate_method_import`]) and served
//!    locally from then on;
//! 4. methods the card pins to site-local world calls (`send`/`spawn`)
//!    are left at the origin — and under [`AdmissionPolicy::Strict`]
//!    the negotiation itself refuses them with
//!    [`HadasError::MigrationRefused`], the dynamic counterpart of the
//!    PR-7 migration-safety gate.

use hadas::{AmbassadorSpec, Federation, HadasError};
use mrom_core::{AdmissionPolicy, ClassSpec, DataItem, Method, MethodBody};
use mrom_net::{LinkConfig, NetworkConfig};
use mrom_value::{NodeId, Value};

/// What one marketplace round produced, per counter. Deterministic per
/// seed (the scenario itself is fault-free; the seed flavors the data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarketReport {
    /// The seed the round ran under.
    pub seed: u64,
    /// Consumer sites that joined the marketplace.
    pub consumers: u64,
    /// Capability cards published (one per imported ambassador).
    pub cards_published: u64,
    /// Methods advertised on each card.
    pub methods_on_card: u64,
    /// Method imports successfully negotiated over the wire.
    pub imports_negotiated: u64,
    /// Negotiations refused by the Strict admission gate.
    pub strict_refusals: u64,
    /// Calls served locally by an ambassador (exported or imported).
    pub local_serves: u64,
    /// Calls relayed to the origin APO.
    pub relayed_serves: u64,
    /// Sum of every consumer's final local `tally` ledger.
    pub ledger_total: i64,
}

impl MarketReport {
    /// The report as an integers-only [`Value`] tree (schema
    /// `mrom.market.v1`).
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    pub fn to_value(&self) -> Value {
        let int = |v: u64| Value::Int(v as i64);
        Value::map([
            ("schema", Value::from("mrom.market.v1")),
            ("seed", int(self.seed)),
            ("consumers", int(self.consumers)),
            ("cards_published", int(self.cards_published)),
            ("methods_on_card", int(self.methods_on_card)),
            ("imports_negotiated", int(self.imports_negotiated)),
            ("strict_refusals", int(self.strict_refusals)),
            ("local_serves", int(self.local_serves)),
            ("relayed_serves", int(self.relayed_serves)),
            ("ledger_total", Value::Int(self.ledger_total)),
        ])
    }

    /// [`MarketReport::to_value`] rendered as canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        mrom_obs::to_json(&self.to_value())
    }
}

/// The marketplace service APO: a world-free read (`quote`), a world-free
/// write (`tally`), a world-free audit left for relaying, and a `beacon`
/// whose body is pinned to the site-local `send` world call.
fn market_service_class(price: i64) -> ClassSpec {
    ClassSpec::new("market-svc")
        .fixed_data("price", DataItem::public(Value::Int(price)))
        .fixed_data("ledger", DataItem::public(Value::Int(0)))
        .fixed_method(
            "quote",
            Method::public(
                MethodBody::script("return self.get(\"price\");").expect("quote parses"),
            ),
        )
        .fixed_method(
            "tally",
            Method::public(
                MethodBody::script(
                    "self.set(\"ledger\", self.get(\"ledger\") + 1); return self.get(\"ledger\");",
                )
                .expect("tally parses"),
            ),
        )
        .fixed_method(
            "audit",
            Method::public(
                MethodBody::script("return self.get(\"ledger\");").expect("audit parses"),
            ),
        )
        .fixed_method(
            "beacon",
            Method::public(
                MethodBody::script("return self.send(self.get(\"price\"), \"ping\");")
                    .expect("beacon parses"),
            ),
        )
}

/// Runs the marketplace round: one provider, three consumers, cards
/// browsed, world-free methods imported, the world-bound one refused
/// under Strict admission.
///
/// # Errors
///
/// Setup and protocol failures (the scenario runs on fault-free links,
/// so a timeout here is a real error).
#[allow(clippy::too_many_lines, clippy::cast_possible_wrap)]
pub fn run_marketplace(seed: u64) -> Result<MarketReport, HadasError> {
    let provider = NodeId(1);
    let consumers = [NodeId(2), NodeId(3), NodeId(4)];
    let cfg = NetworkConfig::new(seed).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    fed.add_site(provider)?;
    for &c in &consumers {
        fed.add_site(c)?;
        fed.link(c, provider)?;
    }

    let price = 40 + (seed % 7) as i64;
    let apo = market_service_class(price)
        .instantiate_as(fed.runtime_mut(provider)?.ids_mut().next_id(), None);
    // Export `quote` (and the price it reads) up front; advertise the
    // full capability card so consumers can negotiate for more.
    let spec = AmbassadorSpec::relay_only()
        .with_methods(["quote"])
        .with_data(["price", "ledger"])
        .with_capability_card();
    fed.integrate_apo(provider, "market-svc", apo, spec)?;

    let mut report = MarketReport {
        seed,
        consumers: consumers.len() as u64,
        cards_published: 0,
        methods_on_card: 0,
        imports_negotiated: 0,
        strict_refusals: 0,
        local_serves: 0,
        relayed_serves: 0,
        ledger_total: 0,
    };

    let mut ambassadors = Vec::new();
    for &c in &consumers {
        let amb = fed.import_apo(c, provider, "market-svc")?;
        ambassadors.push((c, amb));
        // Browse the card: any principal may read it.
        let caller = fed.ioo_id(c)?;
        let card = fed
            .runtime(c)?
            .object(amb)
            .ok_or(HadasError::UnknownAmbassador(amb))?
            .read_data(caller, "capability_card")
            .map_err(HadasError::Model)?;
        let card = card.as_map().cloned().unwrap_or_default();
        report.cards_published += 1;
        report.methods_on_card = card.len() as u64;
        // The card says `tally` touches no world calls — import it.
        let world_free = card
            .get("tally")
            .and_then(Value::as_map)
            .and_then(|entry| entry.get("world"))
            .and_then(Value::as_list)
            .is_some_and(<[Value]>::is_empty);
        if world_free {
            fed.negotiate_method_import(c, provider, "market-svc", "tally")?;
            report.imports_negotiated += 1;
        }
    }

    // Strict admission from here on: negotiating the world-bound
    // `beacon` must be refused at the card, before any code moves.
    fed.set_admission_policy(AdmissionPolicy::Strict);
    for &(c, _) in &ambassadors {
        match fed.negotiate_method_import(c, provider, "market-svc", "beacon") {
            Err(HadasError::MigrationRefused { .. }) => report.strict_refusals += 1,
            Ok(_) => {}
            Err(e) => return Err(e),
        }
    }

    // Serve traffic: quote and tally locally, audit relayed home.
    for &(c, amb) in &ambassadors {
        let caller = fed.ioo_id(c)?;
        for _ in 0..2 {
            fed.call_through_ambassador(c, caller, amb, "quote", &[])?;
            report.local_serves += 1;
            fed.call_through_ambassador(c, caller, amb, "tally", &[])?;
            report.local_serves += 1;
        }
        fed.call_through_ambassador(c, caller, amb, "audit", &[])?;
        report.relayed_serves += 1;
    }
    for &(c, amb) in &ambassadors {
        let ledger = fed
            .runtime(c)?
            .object(amb)
            .and_then(|obj| obj.read_data(mrom_value::ObjectId::SYSTEM, "ledger").ok())
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        report.ledger_total += ledger;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marketplace_round_negotiates_and_refuses_as_advertised() {
        let report = run_marketplace(42).expect("marketplace runs");
        assert_eq!(report.consumers, 3);
        assert_eq!(report.cards_published, 3);
        assert_eq!(report.methods_on_card, 4, "quote/tally/audit/beacon");
        assert_eq!(report.imports_negotiated, 3, "tally imported everywhere");
        assert_eq!(report.strict_refusals, 3, "beacon refused everywhere");
        assert_eq!(report.local_serves, 12);
        assert_eq!(report.relayed_serves, 3);
        assert_eq!(report.ledger_total, 6, "two local tallies per consumer");
    }

    #[test]
    fn marketplace_is_deterministic_per_seed() {
        assert_eq!(run_marketplace(9).unwrap(), run_marketplace(9).unwrap());
        assert_ne!(
            run_marketplace(1).unwrap().to_json(),
            run_marketplace(8).unwrap().to_json(),
            "the seed flavors the price"
        );
    }
}
