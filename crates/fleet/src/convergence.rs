//! E19: the deterministic convergence battery.
//!
//! Two arms of the same `(config, seed)` scenario — a caller-affine
//! Zipf workload over a hierarchical topology whose non-edge routes are
//! WAN-priced — differing **only** in whether the self-tuning Advisor
//! is enabled. Each arm records the virtual-time latency of every
//! workload op; the report compares p95 over the first quarter of ops
//! (before any placement could have adapted) against p95 over the last
//! quarter (after the Advisor had its chance).
//!
//! The headline claim the battery sweeps across seeds and topologies:
//! with the Advisor on, **late p95 is at least 2× lower than early
//! p95** — reflection-driven placement actually converges traffic onto
//! cheap links — while the advisor-off arm shows no such drop, and
//! both arms uphold every fleet invariant. All figures are integer
//! microseconds of virtual time, so the report is byte-deterministic
//! per seed.

use hadas::{AdvisorConfig, HadasError};
use mrom_value::Value;

use crate::harness::run_fleet;
use crate::report::LatencyReport;
use crate::workload::FleetConfig;

/// The outcome of one two-arm convergence comparison. Deterministic
/// per `(config, seed)`: rendering it twice yields identical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// The seed both arms executed under.
    pub seed: u64,
    /// Topology name (stable, lowercase).
    pub topology: &'static str,
    /// Workload ops per arm.
    pub invocations: u64,
    /// Advisor-off arm: early/late latency percentiles.
    pub off: LatencyReport,
    /// Advisor-on arm: early/late latency percentiles.
    pub on: LatencyReport,
    /// Advisory epochs the on-arm executed.
    pub advisor_epochs: u64,
    /// Advisor-driven migrations attempted in the on-arm.
    pub advisor_migrations: u64,
    /// Moves the on-arm's hysteresis suppressed.
    pub advisor_thrash_aborts: u64,
    /// Fleet-invariant violations in the off arm (must be 0).
    pub off_violations: u64,
    /// Fleet-invariant violations in the on arm (must be 0).
    pub on_violations: u64,
}

impl ConvergenceReport {
    /// The E19 acceptance predicate: both arms uphold every fleet
    /// invariant, the Advisor actually moved something, and with the
    /// Advisor on the late-phase p95 sits at least 2× below both the
    /// early-phase p95 and the advisor-off arm's late-phase p95.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.off_violations == 0
            && self.on_violations == 0
            && self.advisor_migrations > 0
            && self.on.late_p95_us.saturating_mul(2) <= self.on.early_p95_us
            && self.on.late_p95_us.saturating_mul(2) <= self.off.late_p95_us
    }

    /// Early-over-late p95 ratio of the advisor-on arm, ×1000 (the
    /// integer convergence factor: 2000 = the required 2×).
    #[must_use]
    pub fn speedup_permille(&self) -> u64 {
        self.on
            .early_p95_us
            .saturating_mul(1000)
            .checked_div(self.on.late_p95_us.max(1))
            .unwrap_or(0)
    }

    /// The report as a deterministic value tree (schema
    /// `mrom.converge.v1`).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        let arm = |l: &LatencyReport| {
            Value::map([
                ("ops_measured", int(l.ops_measured)),
                ("early_p50_us", int(l.early_p50_us)),
                ("early_p95_us", int(l.early_p95_us)),
                ("late_p50_us", int(l.late_p50_us)),
                ("late_p95_us", int(l.late_p95_us)),
            ])
        };
        Value::map([
            ("schema", Value::from("mrom.converge.v1")),
            ("topology", Value::from(self.topology)),
            ("seed", int(self.seed)),
            ("invocations", int(self.invocations)),
            ("advisor_off", arm(&self.off)),
            ("advisor_on", arm(&self.on)),
            (
                "advisor",
                Value::map([
                    ("epochs", int(self.advisor_epochs)),
                    ("migrations", int(self.advisor_migrations)),
                    ("thrash_aborts", int(self.advisor_thrash_aborts)),
                ]),
            ),
            ("speedup_permille", int(self.speedup_permille())),
            ("converged", Value::Bool(self.converged())),
            (
                "violations",
                Value::map([
                    ("advisor_off", int(self.off_violations)),
                    ("advisor_on", int(self.on_violations)),
                ]),
            ),
        ])
    }

    /// [`ConvergenceReport::to_value`] as canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        mrom_obs::to_json(&self.to_value())
    }
}

/// Runs both arms of the convergence comparison: `cfg` as given (the
/// advisor-on treatment — it should carry an enabled
/// [`AdvisorConfig`]), and the identical config with the advisor
/// switched off as the baseline.
///
/// # Errors
///
/// Setup or non-fault protocol errors from either arm.
pub fn run_convergence(cfg: &FleetConfig, seed: u64) -> Result<ConvergenceReport, HadasError> {
    let mut off_cfg = *cfg;
    off_cfg.advisor = AdvisorConfig::off();
    let off_run = run_fleet(&off_cfg, seed)?;
    let on_run = run_fleet(cfg, seed)?;
    let advisor = on_run.report.advisor.unwrap_or_default();
    Ok(ConvergenceReport {
        seed,
        topology: cfg.topology.name(),
        invocations: cfg.invocations as u64,
        off: off_run.report.latency.unwrap_or_default(),
        on: on_run.report.latency.unwrap_or_default(),
        advisor_epochs: advisor.epochs,
        advisor_migrations: on_run.report.advisor_migrations(),
        advisor_thrash_aborts: advisor.thrash_aborts,
        off_violations: off_run.report.violations().len() as u64,
        on_violations: on_run.report.violations().len() as u64,
    })
}
