//! `mrom-fleet` — CLI over the thousand-site scenario suite.
//!
//! ```text
//! mrom-fleet --smoke                  CI gate: smoke-sized fleet runs on every
//!                                     topology + a marketplace round, all
//!                                     invariants asserted (seconds, not minutes)
//! mrom-fleet run [--topology T] [--sites N] [--objects N] [--invocations N]
//!                [--churn N] [--migrate-every N] [--workers N] [--seed N] [--json]
//!                                     one parameterized fleet run
//! mrom-fleet flagship [--seed N] [--json]
//!                                     the acceptance run: 1000 sites, 100k objects
//! mrom-fleet marketplace [--seed N] [--json]
//!                                     the capability-card marketplace round
//! mrom-fleet converge [--topology T] [--seed N] [--json]
//!                                     E19: advisor-off vs advisor-on arms of the
//!                                     caller-affinity scenario; fails unless the
//!                                     advisor-on arm's late p95 converged >=2x
//! mrom-fleet bench [--out PATH]       capacity bench (star + hierarchical,
//!                                     workers 1 and 4) -> BENCH_FLEET.json
//! ```
//!
//! `run` also accepts `--advisor` (standard self-tuning config),
//! `--affinity PERMILLE` (caller-affine workload), and `--flip-every N`
//! (ping-pong home flipping).
//!
//! Exit code 0 on success, 1 when a run violates a fleet invariant or
//! fails outright, 2 on usage errors.

use std::process::ExitCode;
use std::time::Instant;

use mrom_fleet::{
    cell_image_bytes, run_convergence, run_fleet, run_marketplace, AdvisorConfig, FleetConfig,
    FleetRun,
};
use mrom_net::Topology;
use mrom_value::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let run = match strs.as_slice() {
        ["--smoke"] | ["smoke"] => cmd_smoke(),
        ["run", rest @ ..] => match parse_run(rest, FleetConfig::smoke()) {
            Some((cfg, seed, json)) => cmd_run(&cfg, seed, json),
            None => return usage(),
        },
        ["flagship", rest @ ..] => match parse_seed_json(rest) {
            Some((seed, json)) => cmd_run(&FleetConfig::flagship(), seed, json),
            None => return usage(),
        },
        ["marketplace", rest @ ..] => match parse_seed_json(rest) {
            Some((seed, json)) => cmd_marketplace(seed, json),
            None => return usage(),
        },
        ["converge", rest @ ..] => match parse_converge(rest) {
            Some((topology, seed, json)) => cmd_converge(topology, seed, json),
            None => return usage(),
        },
        ["bench", rest @ ..] => match parse_bench(rest) {
            Some(out) => cmd_bench(&out),
            None => return usage(),
        },
        _ => return usage(),
    };
    match run {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("mrom-fleet: {msg}");
            ExitCode::from(1)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mrom-fleet <--smoke | run [flags] | flagship [--seed N] [--json] \
         | marketplace [--seed N] [--json] | converge [--topology T] [--seed N] [--json] \
         | bench [--out PATH]>\n\
         run flags: --topology star|mesh[:K]|hier[:K]  --sites N  --objects N\n\
         \x20          --invocations N  --churn N  --migrate-every N  --workers N\n\
         \x20          --affinity PERMILLE  --flip-every N  --advisor  --seed N  --json"
    );
    ExitCode::from(2)
}

/// Parses `run` flags on top of a base config. Returns `(cfg, seed, json)`.
fn parse_run(rest: &[&str], mut cfg: FleetConfig) -> Option<(FleetConfig, u64, bool)> {
    let mut seed = 42u64;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if *flag == "--json" {
            json = true;
            continue;
        }
        if *flag == "--advisor" {
            cfg.advisor = AdvisorConfig::standard();
            continue;
        }
        let value = it.next()?;
        match *flag {
            "--topology" => cfg.topology = Topology::parse(value)?,
            "--sites" => cfg.sites = value.parse().ok()?,
            "--objects" => cfg.objects_per_site = value.parse().ok()?,
            "--invocations" => cfg.invocations = value.parse().ok()?,
            "--churn" => cfg.churn_events = value.parse().ok()?,
            "--migrate-every" => cfg.migration_every = value.parse().ok()?,
            "--workers" => cfg.workers = value.parse().ok()?,
            "--affinity" => cfg.caller_affinity_permille = value.parse().ok()?,
            "--flip-every" => cfg.affinity_flip_every = value.parse().ok()?,
            "--seed" => seed = value.parse().ok()?,
            _ => return None,
        }
    }
    (cfg.sites > 0 && cfg.objects_per_site > 0 && cfg.workers > 0).then_some((cfg, seed, json))
}

fn parse_seed_json(rest: &[&str]) -> Option<(u64, bool)> {
    let mut seed = 42u64;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match *flag {
            "--json" => json = true,
            "--seed" => seed = it.next()?.parse().ok()?,
            _ => return None,
        }
    }
    Some((seed, json))
}

fn parse_converge(rest: &[&str]) -> Option<(Option<Topology>, u64, bool)> {
    let mut topology = None;
    let mut seed = 42u64;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match *flag {
            "--json" => json = true,
            "--seed" => seed = it.next()?.parse().ok()?,
            "--topology" => topology = Some(Topology::parse(it.next()?)?),
            _ => return None,
        }
    }
    Some((topology, seed, json))
}

fn parse_bench(rest: &[&str]) -> Option<String> {
    match rest {
        [] => Some("BENCH_FLEET.json".to_owned()),
        ["--out", path] => Some((*path).to_owned()),
        _ => None,
    }
}

/// The CI gate: smoke-sized runs on every topology shape plus a
/// marketplace round, every invariant asserted.
fn cmd_smoke() -> Result<String, String> {
    let mut out = String::new();
    for topology in [
        Topology::Star,
        Topology::Mesh { degree: 2 },
        Topology::Hierarchical { cluster_size: 4 },
    ] {
        let cfg = FleetConfig {
            topology,
            ..FleetConfig::smoke()
        };
        let started = Instant::now();
        let run = run_fleet(&cfg, 42).map_err(|e| format!("{} smoke: {e}", topology.name()))?;
        let violations = run.report.violations();
        if !violations.is_empty() {
            return Err(format!(
                "{} smoke violated invariants:\n  {}",
                topology.name(),
                violations.join("\n  ")
            ));
        }
        out.push_str(&format!(
            "fleet smoke {:<6} ok: {} sites, {} objects, {} ops \
             ({} bump ok, {} migrations, {} crashes) in {:?}\n",
            topology.name(),
            run.report.sites,
            run.report.objects,
            run.report.invocations,
            run.report.ops_ok,
            run.report.migrations_ok,
            run.report.crashes,
            started.elapsed(),
        ));
    }
    let market = run_marketplace(42).map_err(|e| format!("marketplace smoke: {e}"))?;
    if market.imports_negotiated == 0 || market.strict_refusals == 0 {
        return Err("marketplace smoke: expected imports and strict refusals".to_owned());
    }
    out.push_str(&format!(
        "marketplace smoke ok: {} cards, {} imports, {} strict refusals, ledger {}",
        market.cards_published,
        market.imports_negotiated,
        market.strict_refusals,
        market.ledger_total
    ));
    Ok(out)
}

fn cmd_run(cfg: &FleetConfig, seed: u64, json: bool) -> Result<String, String> {
    let started = Instant::now();
    let run = run_fleet(cfg, seed).map_err(|e| format!("fleet run: {e}"))?;
    let elapsed = started.elapsed();
    let violations = run.report.violations();
    if !violations.is_empty() {
        return Err(format!(
            "fleet invariants violated ({} seed {seed}):\n  {}",
            run.report.topology,
            violations.join("\n  ")
        ));
    }
    if json {
        return Ok(mrom_obs::to_json_pretty(&run.report.to_value()));
    }
    Ok(render_run(&run, elapsed))
}

fn render_run(run: &FleetRun, elapsed: std::time::Duration) -> String {
    let r = &run.report;
    format!(
        "fleet {} seed {}: {} sites, {} objects, workers {} — all invariants ok in {:?}\n\
         ops      bump {}/{}/{} peek {}/{}/{} (ok/ambiguous/rejected), {} distinct targets\n\
         moves    {} ok, {} in-doubt (settled), {} skipped; churn {} crashes / {} restarts\n\
         state    counter total {}, telemetry {} applications, fold {}\n\
         net      {} sent, {} delivered, {} dropped, {} bytes",
        r.topology,
        r.seed,
        r.sites,
        r.objects,
        r.workers,
        elapsed,
        r.ops_ok,
        r.ops_failed,
        r.ops_rejected,
        r.peeks_ok,
        r.peeks_failed,
        r.peeks_rejected,
        r.distinct_targets,
        r.migrations_ok,
        r.migrations_failed,
        r.migrations_skipped,
        r.crashes,
        r.restarts,
        r.counter_total,
        r.telemetry_invocations,
        if r.telemetry_fold_matches {
            "ok"
        } else {
            "MISMATCH"
        },
        r.stats.messages_sent,
        r.stats.messages_delivered,
        r.stats.messages_dropped,
        r.stats.bytes_sent,
    )
}

/// E19: both convergence arms under one seed; exit 1 unless the
/// advisor-on arm converged (late p95 ≥2× below early p95 and below the
/// advisor-off arm) with every fleet invariant intact.
fn cmd_converge(topology: Option<Topology>, seed: u64, json: bool) -> Result<String, String> {
    let started = Instant::now();
    let mut cfg = FleetConfig::converge_on();
    if let Some(topology) = topology {
        cfg.topology = topology;
    }
    let report = run_convergence(&cfg, seed).map_err(|e| format!("converge: {e}"))?;
    let elapsed = started.elapsed();
    if !report.converged() {
        return Err(format!(
            "convergence failed (seed {seed}): advisor-on early/late p95 {}µs/{}µs, \
             advisor-off late p95 {}µs, {} migrations, violations off/on {}/{}",
            report.on.early_p95_us,
            report.on.late_p95_us,
            report.off.late_p95_us,
            report.advisor_migrations,
            report.off_violations,
            report.on_violations,
        ));
    }
    if json {
        return Ok(mrom_obs::to_json_pretty(&report.to_value()));
    }
    Ok(format!(
        "converge {} seed {}: p95 {}µs -> {}µs ({}.{:03}x) in {:?}\n\
         advisor  {} epochs, {} migrations, {} thrash aborts; \
         advisor-off late p95 {}µs; all invariants ok",
        report.topology,
        report.seed,
        report.on.early_p95_us,
        report.on.late_p95_us,
        report.speedup_permille() / 1000,
        report.speedup_permille() % 1000,
        elapsed,
        report.advisor_epochs,
        report.advisor_migrations,
        report.advisor_thrash_aborts,
        report.off.late_p95_us,
    ))
}

fn cmd_marketplace(seed: u64, json: bool) -> Result<String, String> {
    let report = run_marketplace(seed).map_err(|e| format!("marketplace: {e}"))?;
    if json {
        return Ok(mrom_obs::to_json_pretty(&report.to_value()));
    }
    Ok(format!(
        "marketplace seed {}: {} consumers, {} cards ({} methods each)\n\
         {} imports negotiated, {} strict refusals, {} local / {} relayed serves, ledger {}",
        report.seed,
        report.consumers,
        report.cards_published,
        report.methods_on_card,
        report.imports_negotiated,
        report.strict_refusals,
        report.local_serves,
        report.relayed_serves,
        report.ledger_total
    ))
}

/// One capacity-bench cell: best-of-3 wall-clock over a fixed config.
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss
)]
fn bench_cell(topology: Topology, workers: usize) -> Result<(String, Value), String> {
    let cfg = FleetConfig {
        topology,
        sites: 64,
        objects_per_site: 50,
        invocations: 4000,
        churn_events: 0,
        migration_every: 8,
        zipf_permille: 1100,
        workers,
        ..FleetConfig::smoke()
    };
    let mut best: Option<(std::time::Duration, FleetRun)> = None;
    for pass in 0..3 {
        let started = Instant::now();
        let run = run_fleet(&cfg, 42 + pass).map_err(|e| format!("bench: {e}"))?;
        let elapsed = started.elapsed();
        run.report
            .violations()
            .is_empty()
            .then_some(())
            .ok_or_else(|| "bench run violated invariants".to_owned())?;
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, run));
        }
    }
    let (elapsed, run) = best.expect("three passes ran");
    let secs = elapsed.as_secs_f64().max(1e-9);
    let inv_per_sec = (cfg.invocations as f64 / secs) as i64;
    let migrations = run.report.migrations_ok + run.report.migrations_failed;
    let key = format!("{}/workers{}", topology.name(), workers);
    let cell = Value::map([
        ("sites", Value::Int(cfg.sites as i64)),
        ("objects", Value::Int(cfg.total_objects() as i64)),
        ("invocations", Value::Int(cfg.invocations as i64)),
        ("workers", Value::Int(workers as i64)),
        ("elapsed_ms", Value::Int(elapsed.as_millis() as i64)),
        ("invocations_per_sec", Value::Int(inv_per_sec)),
        (
            "invocations_per_sec_per_site",
            Value::Int(inv_per_sec / cfg.sites as i64),
        ),
        ("migrations", Value::Int(migrations as i64)),
        (
            "migrations_per_sec",
            Value::Int((migrations as f64 / secs) as i64),
        ),
        (
            "net_bytes_per_invocation",
            Value::Int((run.report.stats.bytes_sent / cfg.invocations as u64) as i64),
        ),
    ]);
    Ok((key, cell))
}

#[allow(clippy::cast_possible_wrap)]
fn cmd_bench(out_path: &str) -> Result<String, String> {
    let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut benches = Vec::new();
    for topology in [Topology::Star, Topology::Hierarchical { cluster_size: 8 }] {
        for workers in [1usize, 4] {
            benches.push(bench_cell(topology, workers)?);
        }
    }
    let date = std::env::var("MROM_BENCH_DATE").unwrap_or_else(|_| "unspecified".to_owned());
    let doc = Value::map([
        (
            "description",
            Value::from(
                "mrom-fleet capacity bench: seeded Zipf workload (s=1.1) with \
                 migration traffic over 64-site star and hierarchical topologies, \
                 per-site worker pools at 1 and 4 threads",
            ),
        ),
        (
            "method",
            Value::from(
                "best-of-3 wall-clock passes per cell (seeds 42..44), 4000 workload \
                 ops over 3200 objects, one migration every 8 ops, churn off; every \
                 pass must uphold all fleet invariants; rates derived from the \
                 fastest pass",
            ),
        ),
        ("date", Value::from(date)),
        (
            "host_note",
            Value::from(format!(
                "nproc={nproc} container; with a single hardware thread the \
                 workers=4 rows measure pool overhead, not speedup (single-element \
                 inbox batches run inline, so the engine stays deterministic)"
            )),
        ),
        ("bytes_per_object", Value::Int(cell_image_bytes() as i64)),
        ("benches", Value::map(benches)),
    ]);
    let rendered = mrom_obs::to_json_pretty(&doc);
    std::fs::write(out_path, format!("{rendered}\n"))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    Ok(format!("wrote {out_path}"))
}
