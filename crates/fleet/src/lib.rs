//! # mrom-fleet
//!
//! The thousand-site scenario suite: parameterized topology generators
//! over the deterministic simulator, a seeded Zipf-distributed
//! invocation workload across 10³ sites × 10⁵ objects, churn injection
//! mid-run, and an end-of-run [`FleetReport`] of global invariants that
//! is byte-identical per seed.
//!
//! ## Why a fleet harness
//!
//! The paper's claims are *per-mechanism* (reflection, migration,
//! ambassadors); every earlier experiment exercises one mechanism on a
//! handful of sites. The fleet suite is the composition check: all of
//! the mechanisms at once, at population scale, under churn — and the
//! invariants that must survive the composition:
//!
//! * **single host** — every object lives at exactly one site after the
//!   drain, however many migrations raced the churn;
//! * **exactly-once windows** — each cell's non-idempotent counter sits
//!   inside `[acknowledged, acknowledged + ambiguous]`;
//! * **clean recovery** — nothing in doubt, nothing on the wire;
//! * **balanced accounting** — the simulator explains every send;
//! * **telemetry accounting** — the windowed recorder's per-object
//!   application counts match the state-derived counts, and per-site
//!   telemetry slices fold back (via
//!   [`mrom_obs::TelemetrySnapshot::absorb`]) to the global view.
//!
//! ## Entry points
//!
//! * [`run_fleet`] — one scenario run: `(FleetConfig, seed)` →
//!   [`FleetRun`] (report + telemetry snapshot);
//! * [`run_marketplace`] — the agent-marketplace headline scenario:
//!   ambassadors advertise capability cards, consumers negotiate method
//!   imports, Strict admission refuses migration-unsafe ones;
//! * the `mrom-fleet` binary — CLI over both, plus the capacity bench
//!   that emits `BENCH_FLEET.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convergence;
mod harness;
mod marketplace;
mod report;
mod workload;

pub use convergence::{run_convergence, ConvergenceReport};
pub use hadas::AdvisorConfig;
pub use harness::{cell_image_bytes, run_fleet, FleetRun};
pub use marketplace::{run_marketplace, MarketReport};
pub use report::{AdvisorReport, FleetReport, LatencyReport};
pub use workload::{FleetConfig, Zipf};
