//! Fleet run parameters and the seeded Zipf traffic model.
//!
//! Real federations do not spread invocations uniformly: a handful of
//! objects absorb most of the traffic. The workload therefore draws
//! targets from a Zipf distribution (rank `r` weighted `1/r^s`), built
//! once as a cumulative table and sampled by binary search, so a single
//! `f64` draw per operation picks the target in `O(log n)`.

use rand::rngs::StdRng;
use rand::Rng;

use hadas::AdvisorConfig;
use mrom_net::Topology;

/// Everything that shapes one fleet run. All knobs are plain integers
/// (the Zipf exponent is stored in permille) so a config — and hence a
/// [`crate::FleetReport`] — never depends on float formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Wiring shape (star, mesh, hierarchical vicinity clusters).
    pub topology: Topology,
    /// Number of sites (IOOs).
    pub sites: usize,
    /// Objects instantiated per site; object `k` homes at site `k % sites`.
    pub objects_per_site: usize,
    /// Workload operations (bumps and peeks) to issue.
    pub invocations: usize,
    /// Crash/restart cycles injected mid-run (never on core sites).
    pub churn_events: usize,
    /// Dispatch a Zipf-drawn object to a random neighbor every N ops
    /// (0 disables migration traffic).
    pub migration_every: usize,
    /// Zipf exponent ×1000 (1000 = classic `1/r`; 0 = uniform).
    pub zipf_permille: u64,
    /// Per-site worker pool width (1 = byte-for-byte classic engine).
    pub workers: usize,
    /// Caller-affinity strength ×1000. 0 (the default) keeps the classic
    /// neighbor-of-host workload byte-for-byte. When positive, every
    /// object is assigned a seeded *home caller* site and that fraction
    /// of its traffic originates there (the rest from the home caller's
    /// topology neighbors) — the locality structure the Advisor is
    /// supposed to discover and exploit.
    pub caller_affinity_permille: u64,
    /// Every N ops the home caller flips to a second seeded site
    /// (0 disables). The adversarial ping-pong workload: two sites
    /// alternate as dominant caller, so a policy without hysteresis
    /// would bounce objects forever.
    pub affinity_flip_every: usize,
    /// Self-tuning Advisor knobs; [`AdvisorConfig::off`] (the default)
    /// reproduces pre-advisor runs byte-for-byte.
    pub advisor: AdvisorConfig,
}

impl FleetConfig {
    /// CI-sized smoke run: seconds, not minutes, but every mechanism on.
    #[must_use]
    pub fn smoke() -> FleetConfig {
        FleetConfig {
            topology: Topology::Star,
            sites: 8,
            objects_per_site: 25,
            invocations: 400,
            churn_events: 2,
            migration_every: 20,
            zipf_permille: 1100,
            workers: 1,
            caller_affinity_permille: 0,
            affinity_flip_every: 0,
            advisor: AdvisorConfig::off(),
        }
    }

    /// The acceptance-scale run: 10³ sites, 10⁵ objects, hierarchical
    /// vicinity clusters, churn and migration both active.
    #[must_use]
    pub fn flagship() -> FleetConfig {
        FleetConfig {
            topology: Topology::Hierarchical { cluster_size: 32 },
            sites: 1000,
            objects_per_site: 100,
            invocations: 20_000,
            churn_events: 10,
            migration_every: 50,
            zipf_permille: 1100,
            workers: 1,
            caller_affinity_permille: 0,
            affinity_flip_every: 0,
            advisor: AdvisorConfig::off(),
        }
    }

    /// The E19 convergence scenario: a hierarchical topology whose
    /// cross-cluster default routes are WAN-priced, a strongly
    /// caller-affine Zipf workload (90% of each object's traffic from
    /// its seeded home caller), random migration traffic off, churn
    /// off. Advisor **off** — this is the baseline arm;
    /// [`FleetConfig::converge_on`] is the treatment arm.
    #[must_use]
    pub fn converge() -> FleetConfig {
        FleetConfig {
            topology: Topology::Hierarchical { cluster_size: 4 },
            sites: 12,
            objects_per_site: 6,
            invocations: 2400,
            churn_events: 0,
            migration_every: 0,
            zipf_permille: 1100,
            workers: 1,
            caller_affinity_permille: 900,
            affinity_flip_every: 0,
            advisor: AdvisorConfig::off(),
        }
    }

    /// [`FleetConfig::converge`] with the standard Advisor switched on
    /// and its sweep widened so even tail objects are examined: the
    /// treatment arm of the E19 battery.
    #[must_use]
    pub fn converge_on() -> FleetConfig {
        let mut cfg = FleetConfig::converge();
        cfg.advisor = AdvisorConfig {
            hot_k: 4096,
            min_invocations: 3,
            dominance_permille: 600,
            max_migrations_per_epoch: 32,
            max_total_migrations: 512,
            ..AdvisorConfig::standard()
        };
        cfg
    }

    /// The adversarial ping-pong scenario: every object's home caller
    /// flips between two seeded sites every 150 ops. Without hysteresis
    /// the Advisor would chase the flip forever; the no-thrash test
    /// asserts its total moves stay inside the lifetime budget and that
    /// the dwell timer actually suppressed chases.
    #[must_use]
    pub fn pingpong() -> FleetConfig {
        FleetConfig {
            topology: Topology::Star,
            sites: 6,
            objects_per_site: 4,
            invocations: 1800,
            churn_events: 0,
            migration_every: 0,
            zipf_permille: 1100,
            workers: 1,
            caller_affinity_permille: 950,
            affinity_flip_every: 150,
            advisor: AdvisorConfig {
                hot_k: 64,
                min_invocations: 3,
                dominance_permille: 600,
                max_migrations_per_epoch: 4,
                max_total_migrations: 48,
                ..AdvisorConfig::standard()
            },
        }
    }

    /// Total objects in the fleet.
    #[must_use]
    pub fn total_objects(&self) -> usize {
        self.sites * self.objects_per_site
    }
}

/// A cumulative Zipf table over ranks `0..n`: rank `r` carries weight
/// `1/(r+1)^s`. Sampling is one uniform draw plus a binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the table for `n` ranks with exponent `permille / 1000`.
    ///
    /// # Panics
    ///
    /// When `n == 0` — an empty distribution cannot be sampled.
    #[must_use]
    pub fn new(n: usize, permille: u64) -> Zipf {
        assert!(n > 0, "Zipf over zero ranks");
        #[allow(clippy::cast_precision_loss)]
        let s = permille as f64 / 1000.0;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            #[allow(clippy::cast_precision_loss)]
            let weight = 1.0 / ((rank + 1) as f64).powf(s);
            total += weight;
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        let idx = self.cdf.partition_point(|&c| c <= u);
        idx.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let zipf = Zipf::new(100, 1100);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 must beat rank 10");
        assert!(counts[0] > counts[99] * 5, "head must dominate the tail");
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_500..=2_500).contains(&c), "uniform-ish bucket: {c}");
        }
    }

    #[test]
    fn zipf_sampling_is_deterministic_per_seed() {
        let zipf = Zipf::new(1000, 1300);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let first: Vec<usize> = (0..64).map(|_| zipf.sample(&mut a)).collect();
        let second: Vec<usize> = (0..64).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn presets_are_sized_as_documented() {
        assert_eq!(FleetConfig::smoke().total_objects(), 200);
        let flagship = FleetConfig::flagship();
        assert_eq!(flagship.sites, 1000);
        assert!(flagship.total_objects() >= 100_000);
    }
}
