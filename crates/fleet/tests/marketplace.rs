//! The capability-card marketplace, end to end (satellite of the fleet
//! suite): an imported method's effect signature is re-solved on the
//! *importing* host, and Strict admission refuses to negotiate a
//! migration-unsafe capability at the card — before any code moves.

use hadas::{AmbassadorSpec, Federation, HadasError};
use mrom_core::{AdmissionPolicy, ClassSpec, DataItem, Method, MethodBody};
use mrom_fleet::run_marketplace;
use mrom_net::{LinkConfig, NetworkConfig};
use mrom_value::{NodeId, ObjectId, Value};

fn service_class() -> ClassSpec {
    ClassSpec::new("svc")
        .fixed_data("price", DataItem::public(Value::Int(42)))
        .fixed_data("ledger", DataItem::public(Value::Int(0)))
        .fixed_method(
            "quote",
            Method::public(MethodBody::script("return self.get(\"price\");").unwrap()),
        )
        .fixed_method(
            "tally",
            Method::public(
                MethodBody::script(
                    "self.set(\"ledger\", self.get(\"ledger\") + 1); return self.get(\"ledger\");",
                )
                .unwrap(),
            ),
        )
        .fixed_method(
            "beacon",
            Method::public(
                MethodBody::script("return self.send(self.get(\"price\"), \"ping\");").unwrap(),
            ),
        )
}

fn two_site_market() -> (Federation, NodeId, NodeId, ObjectId) {
    let provider = NodeId(1);
    let consumer = NodeId(2);
    let cfg = NetworkConfig::new(7).with_default_link(LinkConfig::lan());
    let mut fed = Federation::new(cfg);
    fed.add_site(provider).unwrap();
    fed.add_site(consumer).unwrap();
    fed.link(consumer, provider).unwrap();
    let apo = service_class()
        .instantiate_as(fed.runtime_mut(provider).unwrap().ids_mut().next_id(), None);
    let spec = AmbassadorSpec::relay_only()
        .with_methods(["quote"])
        .with_data(["price", "ledger"])
        .with_capability_card();
    fed.integrate_apo(provider, "svc", apo, spec).unwrap();
    let amb = fed.import_apo(consumer, provider, "svc").unwrap();
    (fed, provider, consumer, amb)
}

#[test]
fn imported_method_effects_are_resolved_on_the_importing_host() {
    let (mut fed, provider, consumer, amb) = two_site_market();
    // Before the import the ambassador does not carry `tally` at all.
    let before = fed
        .runtime_mut(consumer)
        .unwrap()
        .object_mut(amb)
        .unwrap()
        .effects();
    assert!(!before.contains_key("tally"), "tally starts at the origin");
    assert!(fed
        .guest_info(consumer, amb)
        .unwrap()
        .remote_methods
        .iter()
        .any(|m| m == "tally"));

    fed.negotiate_method_import(consumer, provider, "svc", "tally")
        .unwrap();

    // The import bumped the ambassador's generation, so the importing
    // host's solver recomputes the table — now over the *local* method
    // set — and sees the imported body's true effect surface.
    let after = fed
        .runtime_mut(consumer)
        .unwrap()
        .object_mut(amb)
        .unwrap()
        .effects();
    let tally = after.get("tally").expect("tally solved on the consumer");
    assert!(tally.writes.contains("ledger"), "writes its ledger slot");
    assert!(tally.reads.contains("ledger"));
    assert!(tally.world_calls.is_empty(), "no site-local world calls");
    assert!(tally.migration_safe, "world-free method is migration safe");
    assert!(!tally.idempotent, "a counter increment is not idempotent");

    // The relay table shrank: `tally` is served locally from now on.
    assert!(!fed
        .guest_info(consumer, amb)
        .unwrap()
        .remote_methods
        .iter()
        .any(|m| m == "tally"));
    let caller = fed.ioo_id(consumer).unwrap();
    assert_eq!(
        fed.call_through_ambassador(consumer, caller, amb, "tally", &[])
            .unwrap(),
        Value::Int(1),
        "imported tally increments the consumer-side ledger"
    );
}

#[test]
fn strict_admission_refuses_a_migration_unsafe_capability() {
    let (mut fed, provider, consumer, amb) = two_site_market();
    fed.set_admission_policy(AdmissionPolicy::Strict);
    let err = fed
        .negotiate_method_import(consumer, provider, "svc", "beacon")
        .expect_err("beacon is pinned to the site-local send world call");
    match err {
        HadasError::MigrationRefused {
            object,
            method,
            world_calls,
        } => {
            assert_eq!(object, amb);
            assert_eq!(method, "beacon");
            assert_eq!(world_calls, vec!["send".to_owned()]);
        }
        other => panic!("expected MigrationRefused, got {other:?}"),
    }
    // Refused at the card: the ambassador never gained the method and
    // still relays it home.
    assert!(fed
        .runtime(consumer)
        .unwrap()
        .object(amb)
        .is_some_and(|obj| !obj.has_method(ObjectId::SYSTEM, "beacon")));

    // A world-free method still negotiates fine under Strict.
    fed.negotiate_method_import(consumer, provider, "svc", "tally")
        .expect("tally is world-free and admitted");
}

#[test]
fn marketplace_scenario_composes_the_same_pieces() {
    let report = run_marketplace(42).expect("marketplace runs");
    assert_eq!(report.imports_negotiated, report.consumers);
    assert_eq!(report.strict_refusals, report.consumers);
    assert!(report.local_serves > report.relayed_serves);
}
