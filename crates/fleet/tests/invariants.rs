//! The fleet invariant matrix: every topology shape × churn on/off ×
//! worker-pool width, smoke-sized so the whole matrix runs in CI. Each
//! cell must uphold all of the [`mrom_fleet::FleetReport`] invariants —
//! single host per object, exactly-once counter windows, clean
//! recovery, balanced simulator accounting, and telemetry accounting.

use mrom_fleet::{run_fleet, FleetConfig};
use mrom_net::Topology;

const TOPOLOGIES: [Topology; 3] = [
    Topology::Star,
    Topology::Mesh { degree: 2 },
    Topology::Hierarchical { cluster_size: 4 },
];

#[test]
fn every_topology_upholds_invariants_under_churn() {
    for topology in TOPOLOGIES {
        let cfg = FleetConfig {
            topology,
            ..FleetConfig::smoke()
        };
        let run = run_fleet(&cfg, 42).expect("fleet runs");
        run.report.assert_invariants();
        assert_eq!(run.report.crashes, 2, "{}: churn ran", topology.name());
        assert!(run.report.ops_ok > 0, "{}: traffic landed", topology.name());
    }
}

#[test]
fn every_topology_upholds_invariants_without_churn() {
    for topology in TOPOLOGIES {
        let cfg = FleetConfig {
            topology,
            churn_events: 0,
            ..FleetConfig::smoke()
        };
        let run = run_fleet(&cfg, 42).expect("fleet runs");
        run.report.assert_invariants();
        // A fault-free run has no ambiguity: every bump acknowledged,
        // every counter exact, telemetry window pinned.
        assert_eq!(run.report.ops_failed, 0, "{}: no timeouts", topology.name());
        assert_eq!(run.report.ops_rejected, 0);
        assert_eq!(
            run.report.counter_total,
            i64::try_from(run.report.ops_ok).expect("fits"),
            "{}: exact counters without churn",
            topology.name()
        );
    }
}

#[test]
fn concurrent_site_pools_uphold_invariants() {
    for topology in TOPOLOGIES {
        let cfg = FleetConfig {
            topology,
            workers: 4,
            ..FleetConfig::smoke()
        };
        let run = run_fleet(&cfg, 42).expect("fleet runs");
        run.report.assert_invariants();
    }
}

#[test]
fn churn_heavy_run_still_converges() {
    // One crash/restart cycle every ~36 ops on a mesh: the drain must
    // still settle every object onto exactly one site.
    let cfg = FleetConfig {
        topology: Topology::Mesh { degree: 3 },
        churn_events: 10,
        ..FleetConfig::smoke()
    };
    let run = run_fleet(&cfg, 1997).expect("fleet runs");
    run.report.assert_invariants();
    assert!(run.report.crashes >= 5, "most churn events must fire");
}

#[test]
fn migration_free_run_keeps_objects_home() {
    let cfg = FleetConfig {
        migration_every: 0,
        churn_events: 0,
        ..FleetConfig::smoke()
    };
    let run = run_fleet(&cfg, 42).expect("fleet runs");
    run.report.assert_invariants();
    assert_eq!(run.report.migrations_ok, 0);
    assert_eq!(run.report.migrations_failed, 0);
}
