//! Seed-for-seed determinism of the fleet harness: the same `(config,
//! seed)` must reproduce the [`mrom_fleet::FleetReport`] *and* the
//! run's `TelemetrySnapshot` byte for byte — JSON renderings included,
//! since those are what CI artifacts and the determinism sweep compare.
//!
//! The default sweep covers a small fixed seed set; set
//! `MROM_FLEET_SEEDS=1,2,3` (comma-separated) to sweep further — the CI
//! seed-sweep job does exactly that.

use mrom_fleet::{run_fleet, FleetConfig};
use mrom_net::Topology;

/// Seeds to sweep: `MROM_FLEET_SEEDS` (comma-separated) or a fixed
/// default trio.
fn sweep_seeds() -> Vec<u64> {
    match std::env::var("MROM_FLEET_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) => vec![7, 42, 1997],
    }
}

#[test]
fn same_seed_reproduces_report_and_telemetry_byte_for_byte() {
    let cfg = FleetConfig::smoke();
    for seed in sweep_seeds() {
        let first = run_fleet(&cfg, seed).expect("first run");
        let second = run_fleet(&cfg, seed).expect("second run");
        assert_eq!(
            first.report, second.report,
            "seed {seed}: reports must match field for field"
        );
        assert_eq!(
            first.report.to_json(),
            second.report.to_json(),
            "seed {seed}: report JSON must match byte for byte"
        );
        assert_eq!(
            mrom_obs::to_json(&first.telemetry.to_value()),
            mrom_obs::to_json(&second.telemetry.to_value()),
            "seed {seed}: telemetry JSON must match byte for byte"
        );
        first.report.assert_invariants();
    }
}

#[test]
fn advisor_on_runs_sweep_deterministically() {
    // The Advisor's decisions are pure functions of (snapshot, config),
    // so enabling it must not cost a single bit of reproducibility:
    // same sweep contract as the advisor-off test above.
    let cfg = FleetConfig::converge_on();
    for seed in sweep_seeds() {
        let first = run_fleet(&cfg, seed).expect("first run");
        let second = run_fleet(&cfg, seed).expect("second run");
        assert_eq!(
            first.report, second.report,
            "seed {seed}: advisor-on reports must match field for field"
        );
        assert_eq!(
            first.report.to_json(),
            second.report.to_json(),
            "seed {seed}: advisor-on report JSON must match byte for byte"
        );
        assert_eq!(
            first.telemetry.to_json(),
            second.telemetry.to_json(),
            "seed {seed}: advisor-on telemetry JSON must match byte for byte"
        );
        first.report.assert_invariants();
        assert!(
            first.report.advisor.expect("advisor section").epochs > 0,
            "seed {seed}: advisor must have run"
        );
    }
}

#[test]
fn determinism_holds_across_topologies_and_worker_pools() {
    for topology in [
        Topology::Star,
        Topology::Mesh { degree: 2 },
        Topology::Hierarchical { cluster_size: 4 },
    ] {
        for workers in [1usize, 4] {
            let cfg = FleetConfig {
                topology,
                workers,
                ..FleetConfig::smoke()
            };
            let first = run_fleet(&cfg, 42).expect("first run");
            let second = run_fleet(&cfg, 42).expect("second run");
            assert_eq!(
                first,
                second,
                "{} workers={workers} must be deterministic",
                topology.name()
            );
        }
    }
}

#[test]
fn different_seeds_shuffle_the_traffic() {
    let cfg = FleetConfig::smoke();
    let a = run_fleet(&cfg, 1).expect("seed 1");
    let b = run_fleet(&cfg, 2).expect("seed 2");
    assert_ne!(
        a.report.to_json(),
        b.report.to_json(),
        "distinct seeds must produce distinct runs"
    );
}

#[test]
fn worker_pool_width_does_not_change_the_run() {
    // The fleet driver is synchronous, so every site inbox drains in
    // single-element batches and the pooled engine executes them inline:
    // widening the pool must not change a single report byte.
    let classic = FleetConfig::smoke();
    let pooled = FleetConfig {
        workers: 4,
        ..classic
    };
    let classic_report = run_fleet(&classic, 11).expect("classic").report;
    let mut pooled_report = run_fleet(&pooled, 11).expect("pooled").report;
    assert_eq!(pooled_report.workers, 4);
    pooled_report.workers = classic_report.workers;
    assert_eq!(classic_report, pooled_report);
}
