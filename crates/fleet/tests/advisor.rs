//! Advisor integration suite: the PR's guard rails.
//!
//! * **Golden regression** — `run_fleet` with the advisor off must
//!   reproduce the pre-advisor `FleetReport` and telemetry JSON
//!   artifacts byte-for-byte (captured under `tests/golden/` before the
//!   Advisor existed; regenerate with `MROM_FLEET_REGEN_GOLDEN=1`).
//! * **E19 convergence** — with the advisor on, the caller-affinity
//!   scenario's late-phase p95 drops at least 2× below the early phase
//!   and below the advisor-off arm, deterministically per seed.
//! * **No-thrash** — the adversarial ping-pong workload settles: total
//!   advisor moves stay inside the lifetime budget and the dwell timer
//!   visibly suppressed chases.
//! * **Churn interaction** — every PR-9 fleet invariant holds with the
//!   advisor active under crash/restart churn.

use mrom_fleet::{run_convergence, run_fleet, FleetConfig};
use mrom_net::Topology;

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(golden_path(name))
        .unwrap_or_else(|e| panic!("reading golden {name}: {e}"))
}

/// Regenerates the golden artifacts. Gated behind an env var so it
/// never runs in CI; only use it when the *intended* byte layout of
/// advisor-off runs changes (which should be never within a release).
#[test]
fn regen_golden_when_asked() {
    if std::env::var("MROM_FLEET_REGEN_GOLDEN").is_err() {
        return;
    }
    for seed in [7u64, 42, 1997] {
        let run = run_fleet(&FleetConfig::smoke(), seed).expect("golden run");
        std::fs::write(
            golden_path(&format!("smoke_{seed}.report.json")),
            run.report.to_json(),
        )
        .unwrap();
        std::fs::write(
            golden_path(&format!("smoke_{seed}.telemetry.json")),
            run.telemetry.to_json(),
        )
        .unwrap();
    }
}

/// Satellite 1: the advisor-off default is not merely "similar" to the
/// pre-advisor harness — it is byte-identical, reports and telemetry
/// both, across the same seeds the determinism sweep uses.
#[test]
fn advisor_off_reproduces_pre_advisor_artifacts_byte_for_byte() {
    for seed in [7u64, 42, 1997] {
        let run = run_fleet(&FleetConfig::smoke(), seed).expect("smoke runs");
        assert_eq!(
            run.report.to_json(),
            golden(&format!("smoke_{seed}.report.json")),
            "advisor-off FleetReport for seed {seed} diverged from the pre-advisor artifact"
        );
        assert_eq!(
            run.telemetry.to_json(),
            golden(&format!("smoke_{seed}.telemetry.json")),
            "advisor-off telemetry for seed {seed} diverged from the pre-advisor artifact"
        );
        assert!(run.report.advisor.is_none(), "no advisor section when off");
        assert!(run.report.latency.is_none(), "no latency section when off");
    }
}

/// E19 headline: the advisor converges the caller-affinity workload —
/// late p95 at least 2× below early p95 and below the advisor-off arm,
/// with all fleet invariants intact in both arms — swept over seeds ×
/// topologies.
#[test]
fn convergence_battery_improves_p95_at_least_two_fold() {
    for topology in [
        Topology::Hierarchical { cluster_size: 4 },
        Topology::Mesh { degree: 3 },
        Topology::Star,
    ] {
        for seed in [7u64, 42, 1997] {
            let cfg = FleetConfig {
                topology,
                ..FleetConfig::converge_on()
            };
            let report = run_convergence(&cfg, seed).expect("converge runs");
            assert!(
                report.converged(),
                "E19 failed on {} seed {seed}: on early/late p95 {}µs/{}µs, \
                 off late p95 {}µs, {} migrations, violations off/on {}/{}",
                topology.name(),
                report.on.early_p95_us,
                report.on.late_p95_us,
                report.off.late_p95_us,
                report.advisor_migrations,
                report.off_violations,
                report.on_violations,
            );
            assert!(report.advisor_epochs > 0, "advisor must have run");
            assert!(
                report.speedup_permille() >= 2000,
                "{} seed {seed}: speedup {}‰ below the 2× bar",
                topology.name(),
                report.speedup_permille()
            );
        }
    }
}

/// Advisor runs are as deterministic as advisor-off runs: same
/// (config, seed) twice → byte-identical report and telemetry.
#[test]
fn advisor_on_runs_are_byte_deterministic() {
    let cfg = FleetConfig::converge_on();
    let a = run_fleet(&cfg, 7).expect("first run");
    let b = run_fleet(&cfg, 7).expect("second run");
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.telemetry.to_json(), b.telemetry.to_json());
    assert_eq!(a.report, b.report);
}

/// Satellite 4: the ping-pong workload (two sites alternately dominant)
/// settles under hysteresis — total advisor moves stay inside the
/// lifetime budget and the dwell timer visibly suppressed chases.
#[test]
fn pingpong_workload_settles_under_hysteresis() {
    let cfg = FleetConfig::pingpong();
    let run = run_fleet(&cfg, 42).expect("pingpong runs");
    run.report.assert_invariants();
    let advisor = run.report.advisor.expect("advisor section present");
    assert!(
        run.report.advisor_migrations() <= cfg.advisor.max_total_migrations,
        "{} advisor moves exceeded the lifetime budget {}",
        run.report.advisor_migrations(),
        cfg.advisor.max_total_migrations
    );
    assert!(
        run.report.advisor_thrash_aborts() > 0,
        "the flip workload must trip the dwell timer at least once"
    );
    assert!(advisor.epochs > 0, "advisor must have run");
}

/// Churn interaction: every PR-9 fleet invariant (single host,
/// exactly-once windows, drained wire, balanced stats, telemetry fold)
/// holds with the advisor migrating objects while sites crash and
/// restart mid-run.
#[test]
fn fleet_invariants_hold_with_advisor_under_churn() {
    let mut cfg = FleetConfig::converge_on();
    cfg.churn_events = 2;
    for seed in [7u64, 42] {
        let run = run_fleet(&cfg, seed).expect("churny advisor run");
        run.report.assert_invariants();
        assert!(run.report.crashes > 0, "churn must have fired");
        assert!(
            run.report.advisor.expect("advisor section").epochs > 0,
            "advisor must have run despite churn"
        );
    }
}
