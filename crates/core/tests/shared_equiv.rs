//! Seeded interleaving-equivalence property for the concurrent runtime:
//! any parallel schedule of **commuting** operations on a
//! [`SharedRuntime`] leaves every object byte-equal to running the same
//! operations in a sequential order on a plain [`Runtime`].
//!
//! The operations all commute — counter additions (`bump` = +1,
//! `add n` = +n) on the same or different objects, `getDataItem` reads,
//! and `create`s of a registered class (the atomic id generator mints
//! the same id *set* for N creates under any interleaving, and each
//! created object is a pure function of its id) — so *any* serialization
//! is a valid reference order. The checkout protocol must therefore make
//! every interleaving indistinguishable from the thread-major sequential
//! run; a torn write, a lost checkin, a double-applied retry, or a
//! skipped/duplicated create all break byte equality of the final table.
//!
//! The in-tree `proptest` stub generates but cannot shrink, so schedules
//! come from a seeded generator and failures go through a hand-rolled
//! greedy shrinker that reports the *minimal* failing schedule (the
//! shrinker itself is exercised against an artificial failure predicate
//! below, so a real regression gets a minimal repro, not a 100-op blob).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use mrom_core::{
    ClassSpec, DataItem, Method, MethodBody, MromError, MromObject, ObjectBuilder, Runtime,
    SharedRuntime,
};
use mrom_value::{wire, NodeId, ObjectId, Value};

/// Objects per schedule (threads deliberately share them — the ops
/// commute, so contention is allowed and retried).
const OBJECTS: usize = 6;
/// Worker threads per parallel run.
const LANES: usize = 4;

/// One commuting operation against the shared table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// `bump` — add one to counter `obj`.
    Bump { obj: usize },
    /// `add n` — add a small constant to counter `obj`.
    Add { obj: usize, n: i64 },
    /// `getDataItem("count")` — a pure introspective read of `obj`.
    Get { obj: usize },
    /// `create` a fresh instance of the registered blank class.
    Create,
}

/// A schedule: per-lane op lists, executed concurrently in the parallel
/// run and lane-major (lane 0 first, in order) in the reference run.
type Schedule = Vec<Vec<Op>>;

/// Tiny deterministic generator (xorshift64) — the whole property is a
/// pure function of the seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn gen_schedule(seed: u64) -> Schedule {
    let mut rng = Rng::new(seed);
    (0..LANES)
        .map(|_| {
            let len = 10 + rng.below(30) as usize;
            (0..len)
                .map(|_| {
                    let obj = rng.below(OBJECTS as u64) as usize;
                    match rng.below(10) {
                        0..=3 => Op::Bump { obj },
                        4..=7 => Op::Add {
                            obj,
                            n: 1 + rng.below(9) as i64,
                        },
                        8 => Op::Get { obj },
                        _ => Op::Create,
                    }
                })
                .collect()
        })
        .collect()
}

/// The counter class: script bodies so behaviour serializes with state
/// and `image_value` compares the whole object.
fn counter(id: ObjectId) -> MromObject {
    ObjectBuilder::new(id)
        .class("equiv-counter")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_method(
            "bump",
            Method::public(
                MethodBody::script(
                    "self.set(\"count\", self.get(\"count\") + 1); return self.get(\"count\");",
                )
                .expect("bump parses"),
            ),
        )
        .fixed_method(
            "add",
            Method::public(
                MethodBody::script(
                    "param n; self.set(\"count\", self.get(\"count\") + n); \
                     return self.get(\"count\");",
                )
                .expect("add parses"),
            ),
        )
        .build()
}

/// The blank class `Op::Create` instantiates: every instance is a pure
/// function of its minted id, so create commutes at the table level.
fn blank_spec() -> ClassSpec {
    ClassSpec::new("equiv-blank").fixed_data("tag", DataItem::public(Value::Int(7)))
}

fn apply(shared: &SharedRuntime, ids: &[ObjectId], op: Op) {
    let (target, method, args) = match op {
        Op::Bump { obj } => (ids[obj], "bump", Vec::new()),
        Op::Add { obj, n } => (ids[obj], "add", vec![Value::Int(n)]),
        Op::Get { obj } => (ids[obj], "getDataItem", vec![Value::from("count")]),
        Op::Create => {
            shared.create("equiv-blank").expect("create never contends");
            return;
        }
    };
    // Commuting ops retry through contention: every scheduled op is
    // applied exactly once, whenever its checkout wins.
    loop {
        match shared.invoke(ObjectId::SYSTEM, target, method, &args) {
            Ok(_) => return,
            Err(MromError::ObjectBusy(_)) => thread::yield_now(),
            Err(other) => panic!("schedule op {op:?} failed: {other:?}"),
        }
    }
}

/// Serializes the *entire* object table, keyed and ordered by id — the
/// created objects count too, not just the pre-made counters.
fn table_image<F: Fn(ObjectId) -> Value>(
    mut ids: Vec<ObjectId>,
    image: F,
) -> Vec<(ObjectId, Vec<u8>)> {
    ids.sort();
    ids.into_iter()
        .map(|id| (id, wire::encode(&image(id))))
        .collect()
}

/// Runs the schedule concurrently; returns the full table image.
fn run_parallel(schedule: &Schedule) -> Vec<(ObjectId, Vec<u8>)> {
    let shared = SharedRuntime::new(NodeId(21));
    shared.with_classes_mut(|reg| reg.register(blank_spec()).unwrap());
    let ids: Vec<ObjectId> = (0..OBJECTS)
        .map(|_| shared.adopt(counter(shared.ids().next_id())).unwrap())
        .collect();
    thread::scope(|s| {
        for lane in schedule {
            let (shared, ids) = (&shared, &ids);
            s.spawn(move || {
                for &op in lane {
                    apply(shared, ids, op);
                }
            });
        }
    });
    table_image(shared.object_ids(), |id| {
        shared.object(id).unwrap().image_value().unwrap()
    })
}

/// Runs the schedule lane-major on the single-threaded wrapper; returns
/// the full table image.
fn run_sequential(schedule: &Schedule) -> Vec<(ObjectId, Vec<u8>)> {
    let mut rt = Runtime::new(NodeId(21));
    rt.classes_mut().register(blank_spec()).unwrap();
    let ids: Vec<ObjectId> = (0..OBJECTS)
        .map(|_| {
            let id = rt.ids_mut().next_id();
            rt.adopt(counter(id)).unwrap()
        })
        .collect();
    for lane in schedule {
        for &op in lane {
            let (target, method, args) = match op {
                Op::Bump { obj } => (ids[obj], "bump", Vec::new()),
                Op::Add { obj, n } => (ids[obj], "add", vec![Value::Int(n)]),
                Op::Get { obj } => (ids[obj], "getDataItem", vec![Value::from("count")]),
                Op::Create => {
                    rt.create("equiv-blank").unwrap();
                    continue;
                }
            };
            rt.invoke(ObjectId::SYSTEM, target, method, &args).unwrap();
        }
    }
    table_image(rt.object_ids(), |id| {
        rt.object(id).unwrap().image_value().unwrap()
    })
}

/// Does this schedule expose a divergence? (`true` = property violated.)
fn diverges(schedule: &Schedule) -> bool {
    run_parallel(schedule) != run_sequential(schedule)
}

/// Greedy shrinker: repeatedly drop the single op whose removal keeps
/// the schedule failing, until no single removal does. The result is
/// 1-minimal — every remaining op is load-bearing for the failure.
fn shrink(mut schedule: Schedule, fails: &dyn Fn(&Schedule) -> bool) -> Schedule {
    loop {
        let mut reduced = None;
        'search: for lane in 0..schedule.len() {
            for i in 0..schedule[lane].len() {
                let mut candidate = schedule.clone();
                candidate[lane].remove(i);
                if fails(&candidate) {
                    reduced = Some(candidate);
                    break 'search;
                }
            }
        }
        match reduced {
            Some(smaller) => schedule = smaller,
            None => return schedule,
        }
    }
}

fn ops_total(schedule: &Schedule) -> usize {
    schedule.iter().map(Vec::len).sum()
}

/// Seeds to sweep: `MROM_EQUIV_SEEDS` (a count) or a fast default.
fn sweep_seeds() -> Vec<u64> {
    let count = std::env::var("MROM_EQUIV_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(8);
    (1..=count.max(1)).collect()
}

#[test]
fn interleavings_of_commuting_ops_match_a_sequential_order() {
    for seed in sweep_seeds() {
        let schedule = gen_schedule(seed);
        if diverges(&schedule) {
            let minimal = shrink(schedule, &diverges);
            panic!(
                "seed {seed}: parallel run diverged from sequential; \
                 minimal failing schedule ({} ops): {minimal:?}",
                ops_total(&minimal)
            );
        }
    }
}

#[test]
fn shrinker_finds_a_minimal_failing_schedule() {
    // Drive the shrinker with an artificial failure predicate — "the
    // schedule still contains at least 3 bumps of object 0" — so we can
    // assert minimality without needing a real (hopefully impossible)
    // equivalence bug. Track how many candidate schedules were probed to
    // prove the search actually ran.
    let probes = AtomicUsize::new(0);
    let fails = |s: &Schedule| {
        probes.fetch_add(1, Ordering::Relaxed);
        s.iter()
            .flatten()
            .filter(|op| **op == Op::Bump { obj: 0 })
            .count()
            >= 3
    };
    let seed_schedule = gen_schedule(3);
    assert!(
        fails(&seed_schedule),
        "fixture: the generated schedule must trip the predicate"
    );
    let minimal = shrink(seed_schedule, &fails);
    assert_eq!(
        ops_total(&minimal),
        3,
        "minimal repro keeps exactly the 3 load-bearing ops: {minimal:?}"
    );
    assert!(minimal
        .iter()
        .flatten()
        .all(|op| *op == Op::Bump { obj: 0 }));
    assert!(probes.load(Ordering::Relaxed) > ops_total(&gen_schedule(3)));
}
