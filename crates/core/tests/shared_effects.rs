//! Shared-runtime effect instrumentation: checkout collisions are
//! classified by effect-signature disjointness and surface in the
//! observability metrics.
//!
//! Collisions are produced deterministically with *cyclic* calls — a
//! method that `send`s back into its own object is indistinguishable,
//! at the slot, from a concurrent caller, so no thread scheduling is
//! needed to hit the Busy arm.
//!
//! Runs on its own thread-local recorder (each test binary process gets
//! one per thread; this file keeps everything on the main test thread
//! per test function).

use mrom_core::{ClassSpec, DataItem, Method, MethodBody, MromError, SharedRuntime};
use mrom_obs::{EventKind, ObsMode};
use mrom_value::{NodeId, Value};

fn scripted(src: &str) -> Method {
    Method::public(MethodBody::script(src).unwrap())
}

fn cyclic_class() -> ClassSpec {
    ClassSpec::new("cyclic")
        .fixed_data("x", DataItem::public(Value::Int(0)))
        .fixed_method("peek", scripted("return self.get(\"x\");"))
        .fixed_method(
            "poke",
            scripted("self.set(\"x\", self.get(\"x\") + 1); return null;"),
        )
        // Calls back into its own (busy) object: a guaranteed collision.
        // `cycle_peek` itself touches no data, so peek-vs-cycle_peek is
        // provably disjoint; `cycle_poke` writes `x`, which `poke` both
        // reads and writes — overlapping.
        .fixed_method(
            "cycle_peek",
            scripted("return self.send(self.id(), \"peek\", []);"),
        )
        .fixed_method(
            "cycle_poke",
            scripted("self.set(\"x\", 1); return self.send(self.id(), \"poke\", []);"),
        )
}

#[test]
fn busy_collisions_are_classified_by_signature_disjointness() {
    mrom_obs::reset();
    mrom_obs::set_mode(ObsMode::Ring);
    let rt = SharedRuntime::new(NodeId(77));
    rt.with_classes_mut(|reg| reg.register(cyclic_class()))
        .unwrap();
    let id = rt.create("cyclic").unwrap();

    // The cyclic inner send surfaces as ObjectBusy at the script layer.
    assert!(matches!(
        rt.invoke_as_system(id, "cycle_peek", &[]),
        Err(MromError::Script(_) | MromError::ObjectBusy(_))
    ));
    assert!(matches!(
        rt.invoke_as_system(id, "cycle_poke", &[]),
        Err(MromError::Script(_) | MromError::ObjectBusy(_))
    ));
    mrom_obs::set_mode(ObsMode::Disabled);

    let m = mrom_obs::metrics_snapshot();
    assert_eq!(m.shared.busy_collisions, 2, "{:?}", m.shared);
    assert_eq!(m.shared.disjoint_collisions, 1, "peek vs cycle_peek");
    assert_eq!(m.shared.overlapping_collisions, 1, "poke vs cycle_poke");

    // The event stream carries the classified collision records.
    let collisions: Vec<_> = mrom_obs::ring_snapshot()
        .into_iter()
        .filter_map(|te| match te.kind {
            EventKind::SharedCollision {
                in_flight,
                incoming,
                disjoint,
                ..
            } => Some((in_flight, incoming, disjoint)),
            _ => None,
        })
        .collect();
    assert_eq!(
        collisions,
        vec![
            ("cycle_peek".to_owned(), "peek".to_owned(), Some(true)),
            ("cycle_poke".to_owned(), "poke".to_owned(), Some(false)),
        ]
    );
}

#[test]
fn disabled_recorder_records_no_collision_state() {
    mrom_obs::reset();
    let rt = SharedRuntime::new(NodeId(78));
    rt.with_classes_mut(|reg| reg.register(cyclic_class()))
        .unwrap();
    let id = rt.create("cyclic").unwrap();
    assert!(rt.invoke_as_system(id, "cycle_peek", &[]).is_err());
    let m = mrom_obs::metrics_snapshot();
    assert_eq!(m.shared.busy_collisions, 0);
    // The object itself still works normally afterwards.
    assert_eq!(rt.invoke_as_system(id, "peek", &[]).unwrap(), Value::Int(0));
}
