//! The seeded defect corpus: one test per diagnostic kind, plus policy
//! enforcement at every trust boundary (`from_image`, `add_method`,
//! `set_method`).
//!
//! Global-policy tests serialize on a local mutex and restore
//! [`AdmissionPolicy::Off`] before releasing it, so the rest of the suite
//! never observes a strict default.

use std::sync::Mutex;

use mrom_core::{
    set_default_admission_policy, Acl, AdmissionPolicy, DataItem, DiagnosticKind, Method,
    MethodBody, MromError, MromObject, ObjectBuilder, Severity,
};
use mrom_value::{IdGenerator, NodeId, Value};

static GLOBAL_POLICY: Mutex<()> = Mutex::new(());

/// Runs `f` with the process-wide default policy set to `policy`,
/// restoring `Off` afterwards even on panic.
fn with_global_policy<R>(policy: AdmissionPolicy, f: impl FnOnce() -> R) -> R {
    let _guard = GLOBAL_POLICY.lock().unwrap();
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_default_admission_policy(AdmissionPolicy::Off);
        }
    }
    let _restore = Restore;
    set_default_admission_policy(policy);
    f()
}

fn ids() -> IdGenerator {
    IdGenerator::new(NodeId(21))
}

/// A well-formed mobile object: one data item, one clean method.
fn clean_object(gen: &mut IdGenerator) -> MromObject {
    ObjectBuilder::new(gen.next_id())
        .class("specimen")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_method(
            "bump",
            Method::public(
                MethodBody::script("self.set(\"count\", self.get(\"count\") + 1); return true;")
                    .unwrap(),
            ),
        )
        .build()
}

fn script_method(src: &str) -> Method {
    Method::public(MethodBody::script(src).unwrap())
}

fn kinds(diags: &[mrom_core::Diagnostic]) -> Vec<DiagnosticKind> {
    diags.iter().map(|d| d.kind).collect()
}

// --- the seeded defect corpus: one test per diagnostic kind ---------------

#[test]
fn corpus_undefined_variable() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    obj.add_method(me, "bad", script_method("return ghost;"))
        .unwrap();
    assert!(kinds(&obj.analyze()).contains(&DiagnosticKind::UndefinedVariable));
}

#[test]
fn corpus_use_before_assign() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    obj.add_method(
        me,
        "bad",
        script_method("if (true) { let x = 1; } return x;"),
    )
    .unwrap();
    assert!(kinds(&obj.analyze()).contains(&DiagnosticKind::UseBeforeAssign));
}

#[test]
fn corpus_unused_param() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    obj.add_method(me, "bad", script_method("param spare; return 1;"))
        .unwrap();
    let diags = obj.analyze();
    assert!(kinds(&diags).contains(&DiagnosticKind::UnusedParam));
    // A warning, not an error: strict admission would still accept.
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn corpus_dangling_data_item() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    obj.add_method(me, "bad", script_method("return self.get(\"absent\");"))
        .unwrap();
    let diags = obj.analyze();
    assert!(kinds(&diags).contains(&DiagnosticKind::DanglingDataItem));
    assert!(diags[0].path.starts_with("bad.body"));
}

#[test]
fn corpus_dangling_method_call() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    obj.add_method(
        me,
        "bad",
        script_method("return self.invoke(\"vanished\", []);"),
    )
    .unwrap();
    assert!(kinds(&obj.analyze()).contains(&DiagnosticKind::DanglingMethodCall));
}

#[test]
fn corpus_unknown_meta_method() {
    let mut gen = ids();
    // Built WITHOUT the bundled meta-methods: reflective names cannot
    // resolve through `self.invoke`.
    let mut obj = ObjectBuilder::new(gen.next_id())
        .class("bare")
        .without_meta_methods()
        .build();
    let me = obj.id();
    obj.add_method(
        me,
        "bad",
        script_method("return self.invoke(\"getDataItem\", [\"x\"]);"),
    )
    .unwrap();
    assert!(kinds(&obj.analyze()).contains(&DiagnosticKind::UnknownMetaMethod));
}

#[test]
fn corpus_acl_unsatisfiable() {
    let mut gen = ids();
    let mut obj = ObjectBuilder::new(gen.next_id())
        .class("sealed")
        .fixed_data(
            "secret",
            DataItem::public(Value::Int(1)).with_read_acl(Acl::Nobody),
        )
        .fixed_method(
            "locked",
            Method::new(MethodBody::script("return 1;").unwrap()).with_invoke_acl(Acl::Nobody),
        )
        .build();
    let me = obj.id();
    // Nobody-gated data read and Nobody-gated invocation: both statically
    // dead for every principal, the object itself included.
    obj.add_method(
        me,
        "bad",
        script_method("self.invoke(\"locked\", []); return self.get(\"secret\");"),
    )
    .unwrap();
    let diags = obj.analyze();
    let n = kinds(&diags)
        .iter()
        .filter(|k| **k == DiagnosticKind::AclUnsatisfiable)
        .count();
    assert_eq!(n, 2, "{diags:?}");
}

#[test]
fn corpus_acl_unsatisfiable_meta_mutation() {
    let mut gen = ids();
    // meta_acl Nobody: structural self-mutation can never be permitted.
    let obj = ObjectBuilder::new(gen.next_id())
        .class("frozen")
        .meta_acl(Acl::Nobody)
        .fixed_method(
            "grow",
            script_method("self.add_method(\"extra\", \"return 1;\"); return true;"),
        )
        .build();
    assert!(kinds(&obj.analyze()).contains(&DiagnosticKind::AclUnsatisfiable));
}

#[test]
fn corpus_node_and_depth_budget() {
    use mrom_core::ResourceBudget;
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    obj.add_method(
        me,
        "chunky",
        script_method("return 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8;"),
    )
    .unwrap();
    let tight = ResourceBudget {
        max_nodes: 4,
        max_depth: 3,
        max_static_fuel: Some(2),
    };
    let ks = kinds(&obj.analyze_with_budget(&tight));
    assert!(ks.contains(&DiagnosticKind::NodeBudget));
    assert!(ks.contains(&DiagnosticKind::DepthBudget));
    assert!(ks.contains(&DiagnosticKind::FuelBudget));
}

// --- policy enforcement at trust boundaries -------------------------------

/// A migration image whose `bad` method reads a data item that never
/// travelled with the object.
fn crafted_bad_image(gen: &mut IdGenerator) -> Vec<u8> {
    let mut obj = clean_object(gen);
    let me = obj.id();
    obj.add_method(
        me,
        "bad",
        script_method("return self.get(\"left_behind\");"),
    )
    .unwrap();
    obj.migration_image(me).unwrap()
}

#[test]
fn strict_rejects_a_crafted_image_at_from_image() {
    let mut gen = ids();
    let image = crafted_bad_image(&mut gen);
    let err = MromObject::from_image_with_policy(&image, AdmissionPolicy::Strict).unwrap_err();
    match err {
        MromError::AdmissionRejected {
            context,
            diagnostics,
            ..
        } => {
            assert_eq!(context, "from_image");
            assert!(diagnostics
                .iter()
                .any(|d| d.kind == DiagnosticKind::DanglingDataItem));
        }
        other => panic!("expected AdmissionRejected, got {other}"),
    }
}

#[test]
fn off_and_warn_admit_the_same_crafted_image() {
    let mut gen = ids();
    let image = crafted_bad_image(&mut gen);
    let off = MromObject::from_image_with_policy(&image, AdmissionPolicy::Off).unwrap();
    let warn = MromObject::from_image_with_policy(&image, AdmissionPolicy::Warn).unwrap();
    assert_eq!(off, warn);
    // And the default entry point (policy Off) is byte-for-byte identical:
    // the admitted object re-serializes to the same image.
    let again = MromObject::from_image(&image).unwrap();
    assert_eq!(again, off);
    assert_eq!(again.migration_image(again.id()).unwrap(), image);
}

#[test]
fn strict_accepts_a_clean_image() {
    let mut gen = ids();
    let obj = clean_object(&mut gen);
    let image = obj.migration_image(obj.id()).unwrap();
    let back = MromObject::from_image_with_policy(&image, AdmissionPolicy::Strict).unwrap();
    assert_eq!(back, obj);
}

#[test]
fn warnings_never_block_strict_admission() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    obj.add_method(me, "lazy", script_method("param spare; return 1;"))
        .unwrap();
    let image = obj.migration_image(me).unwrap();
    assert!(MromObject::from_image_with_policy(&image, AdmissionPolicy::Strict).is_ok());
}

#[test]
fn strict_default_gates_add_method() {
    with_global_policy(AdmissionPolicy::Strict, || {
        let mut gen = ids();
        let mut obj = clean_object(&mut gen);
        let me = obj.id();
        // Clean methods still install.
        obj.add_method(me, "ok", script_method("return self.get(\"count\");"))
            .unwrap();
        // Defective ones are rejected before touching the object.
        let err = obj
            .add_method(me, "bad", script_method("return self.get(\"absent\");"))
            .unwrap_err();
        assert!(matches!(
            err,
            MromError::AdmissionRejected { ref context, .. } if context == "add_method"
        ));
        assert!(obj.find_method("bad").is_none());
    });
}

#[test]
fn strict_default_gates_set_method() {
    with_global_policy(AdmissionPolicy::Strict, || {
        let mut gen = ids();
        let mut obj = clean_object(&mut gen);
        let me = obj.id();
        obj.add_method(me, "mut", script_method("return 1;"))
            .unwrap();
        // Swapping in a defective body is rejected; the old body stays.
        let bad_body = mrom_value::Value::map([(
            "body",
            mrom_value::Value::from("return self.get(\"absent\");"),
        )]);
        let err = obj.set_method(me, "mut", &bad_body).unwrap_err();
        assert!(matches!(
            err,
            MromError::AdmissionRejected { ref context, .. } if context == "set_method"
        ));
        let mut world = mrom_core::NoWorld;
        assert_eq!(
            mrom_core::invoke(&mut obj, &mut world, me, "mut", &[]).unwrap(),
            Value::Int(1)
        );
    });
}

#[test]
fn candidate_methods_may_recurse() {
    with_global_policy(AdmissionPolicy::Strict, || {
        let mut gen = ids();
        let mut obj = clean_object(&mut gen);
        let me = obj.id();
        // The candidate references itself through self.invoke: its own
        // name counts as present during admission.
        obj.add_method(
            me,
            "countdown",
            script_method(
                "param n; if (n <= 0) { return 0; } return self.invoke(\"countdown\", [n - 1]);",
            ),
        )
        .unwrap();
    });
}

#[test]
fn analyze_is_clean_on_well_formed_objects() {
    let mut gen = ids();
    let obj = clean_object(&mut gen);
    assert!(obj.analyze().is_empty(), "{:?}", obj.analyze());
}

#[test]
fn pre_and_post_procedures_are_analyzed_too() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    let m = script_method("return 1;")
        .with_pre(MethodBody::script("return self.get(\"missing_gate\");").unwrap());
    obj.add_method(me, "guarded", m).unwrap();
    let diags = obj.analyze();
    assert!(diags.iter().any(|d| d.path.starts_with("guarded.pre")));
}

#[test]
fn bodies_that_create_their_data_are_admissible() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    // add_data_item then get: the created name satisfies the read.
    obj.add_method(
        me,
        "selfmade",
        script_method("self.add_data_item(\"scratch\", 0); return self.get(\"scratch\");"),
    )
    .unwrap();
    assert!(obj.analyze().is_empty(), "{:?}", obj.analyze());
}

#[test]
fn world_calls_are_not_flagged() {
    let mut gen = ids();
    let mut obj = clean_object(&mut gen);
    let me = obj.id();
    // Unknown self.* names route to the world hook: an environment
    // capability, not a structural defect.
    obj.add_method(
        me,
        "worldly",
        script_method("return self.send_mail(\"hi\");"),
    )
    .unwrap();
    assert!(obj.analyze().is_empty(), "{:?}", obj.analyze());
}
