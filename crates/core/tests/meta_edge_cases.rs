//! Edge cases of the meta-method surface invoked *as methods* (the way a
//! foreign host talks to a newcomer object), plus wrapping and constraint
//! corners not covered by the module tests.

use mrom_core::{
    invoke, Acl, DataItem, Method, MethodBody, MromError, NoWorld, ObjectBuilder, Section,
    TypeConstraint,
};
use mrom_script::ScriptError;
use mrom_value::{IdGenerator, NodeId, Value, ValueKind};

fn ids() -> IdGenerator {
    IdGenerator::new(NodeId(0xedce))
}

fn subject() -> (mrom_core::MromObject, IdGenerator) {
    let mut gen = ids();
    let obj = ObjectBuilder::new(gen.next_id())
        .class("edge")
        .fixed_data("x", DataItem::public(Value::Int(1)))
        .fixed_method(
            "echo",
            Method::public(MethodBody::script("param v; return v;").unwrap()),
        )
        .build();
    (obj, gen)
}

#[test]
fn invoke_meta_accepts_one_or_two_args() {
    let (mut obj, mut gen) = subject();
    let me = obj.id();
    let caller = gen.next_id();
    let mut world = NoWorld;
    obj.add_method(
        me,
        "nullary",
        Method::public(MethodBody::script("return 9;").unwrap()),
    )
    .unwrap();
    // One-arg form: no argument list.
    assert_eq!(
        invoke(
            &mut obj,
            &mut world,
            caller,
            "invoke",
            &[Value::from("nullary")]
        )
        .unwrap(),
        Value::Int(9)
    );
    // Bad shapes are BadDescriptor, not panics.
    assert!(matches!(
        invoke(&mut obj, &mut world, caller, "invoke", &[]),
        Err(MromError::BadDescriptor(_))
    ));
    assert!(matches!(
        invoke(
            &mut obj,
            &mut world,
            caller,
            "invoke",
            &[Value::from("nullary"), Value::Int(3)]
        ),
        Err(MromError::BadDescriptor(_))
    ));
    assert!(matches!(
        invoke(&mut obj, &mut world, caller, "invoke", &[Value::Int(1)]),
        Err(MromError::BadDescriptor(_))
    ));
}

#[test]
fn meta_methods_validate_arity_and_kinds() {
    let (mut obj, mut gen) = subject();
    let me = obj.id();
    let caller = gen.next_id();
    let mut world = NoWorld;
    // Introspective metas are public but still validate arguments.
    assert!(matches!(
        invoke(&mut obj, &mut world, caller, "getDataItem", &[]),
        Err(MromError::BadDescriptor(_))
    ));
    assert!(matches!(
        invoke(&mut obj, &mut world, caller, "getMethod", &[Value::Int(1)]),
        Err(MromError::BadDescriptor(_))
    ));
    // Mutating metas validate after the ACL gate: the origin sees the
    // descriptor error, strangers see denial first.
    assert!(matches!(
        invoke(
            &mut obj,
            &mut world,
            me,
            "addDataItem",
            &[Value::from("only-name")]
        ),
        Err(MromError::BadDescriptor(_))
    ));
    assert!(matches!(
        invoke(
            &mut obj,
            &mut world,
            caller,
            "addDataItem",
            &[Value::from("only-name")]
        ),
        Err(MromError::AccessDenied { .. })
    ));
}

#[test]
fn add_method_descriptor_vs_bare_body() {
    let (mut obj, mut gen) = subject();
    let me = obj.id();
    let caller = gen.next_id();
    let mut world = NoWorld;
    // Bare body string: origin-private by default.
    invoke(
        &mut obj,
        &mut world,
        me,
        "addMethod",
        &[Value::from("private_m"), Value::from("return 1;")],
    )
    .unwrap();
    assert!(!obj.has_method(caller, "private_m"));
    assert!(obj.has_method(me, "private_m"));
    // Full descriptor: public ACL applies immediately.
    invoke(
        &mut obj,
        &mut world,
        me,
        "addMethod",
        &[
            Value::from("public_m"),
            Value::map([
                ("body", Value::from("return 2;")),
                ("invoke_acl", Value::from("public")),
            ]),
        ],
    )
    .unwrap();
    assert_eq!(
        invoke(&mut obj, &mut world, caller, "public_m", &[]).unwrap(),
        Value::Int(2)
    );
}

#[test]
fn set_method_acl_change_is_immediate() {
    let (mut obj, mut gen) = subject();
    let me = obj.id();
    let caller = gen.next_id();
    let mut world = NoWorld;
    obj.add_method(
        me,
        "open_then_shut",
        Method::public(MethodBody::script("return 1;").unwrap()),
    )
    .unwrap();
    assert!(invoke(&mut obj, &mut world, caller, "open_then_shut", &[]).is_ok());
    invoke(
        &mut obj,
        &mut world,
        me,
        "setMethod",
        &[
            Value::from("open_then_shut"),
            Value::map([("invoke_acl", Value::from("origin"))]),
        ],
    )
    .unwrap();
    assert!(matches!(
        invoke(&mut obj, &mut world, caller, "open_then_shut", &[]),
        Err(MromError::AccessDenied { .. })
    ));
}

#[test]
fn get_data_item_reports_section_through_invocation() {
    let (mut obj, mut gen) = subject();
    let me = obj.id();
    let caller = gen.next_id();
    let mut world = NoWorld;
    obj.add_data_item(me, "soft", DataItem::public(Value::Null))
        .unwrap();
    let fixed = invoke(
        &mut obj,
        &mut world,
        caller,
        "getDataItem",
        &[Value::from("x")],
    )
    .unwrap();
    assert_eq!(fixed.as_map().unwrap()["section"], Value::from("fixed"));
    let ext = invoke(
        &mut obj,
        &mut world,
        caller,
        "getDataItem",
        &[Value::from("soft")],
    )
    .unwrap();
    assert_eq!(ext.as_map().unwrap()["section"], Value::from("extensible"));
}

#[test]
fn type_constrained_item_coerces_on_every_write_path() {
    let (mut obj, mut gen) = subject();
    let me = obj.id();
    let mut world = NoWorld;
    obj.add_data_item(
        me,
        "port",
        DataItem::public(Value::Int(80))
            .with_constraint(TypeConstraint::Coerce(ValueKind::Int))
            .unwrap()
            .with_write_acl(Acl::Public),
    )
    .unwrap();
    let caller = gen.next_id();
    // Direct write coerces.
    obj.write_data(caller, "port", Value::from("<b>8080</b>"))
        .unwrap();
    assert_eq!(obj.read_data(caller, "port").unwrap(), Value::Int(8080));
    // Script write coerces too.
    obj.add_method(
        me,
        "set_port",
        Method::public(
            MethodBody::script("param p; self.set(\"port\", p); return self.get(\"port\");")
                .unwrap(),
        ),
    )
    .unwrap();
    assert_eq!(
        invoke(
            &mut obj,
            &mut world,
            caller,
            "set_port",
            &[Value::from("443")]
        )
        .unwrap(),
        Value::Int(443)
    );
    // Uncoercible writes fail with TypeConstraint from either path.
    assert!(matches!(
        obj.write_data(caller, "port", Value::from("not a port")),
        Err(MromError::TypeConstraint { .. })
    ));
    assert!(matches!(
        invoke(
            &mut obj,
            &mut world,
            caller,
            "set_port",
            &[Value::from("nope")]
        ),
        Err(MromError::Script(ScriptError::Host(_)))
    ));
}

#[test]
fn post_procedure_sees_result_then_args() {
    let (mut obj, mut gen) = subject();
    let me = obj.id();
    let mut world = NoWorld;
    obj.add_method(
        me,
        "checked",
        Method::public(MethodBody::script("param a; param b; return a * b;").unwrap()).with_post(
            MethodBody::script(
                // r must come first, then the original args in order.
                "param r; param a; param b; return r == a * b && a == 6 && b == 7;",
            )
            .unwrap(),
        ),
    )
    .unwrap();
    let caller = gen.next_id();
    assert_eq!(
        invoke(
            &mut obj,
            &mut world,
            caller,
            "checked",
            &[Value::Int(6), Value::Int(7)]
        )
        .unwrap(),
        Value::Int(42)
    );
    assert!(matches!(
        invoke(
            &mut obj,
            &mut world,
            caller,
            "checked",
            &[Value::Int(1), Value::Int(1)]
        ),
        Err(MromError::PostConditionFailed { .. })
    ));
}

#[test]
fn native_bodies_route_through_the_tower_via_call_env() {
    // A native body calling env.invoke re-enters the full tower, same as a
    // script body would.
    let mut gen = ids();
    let mut obj = ObjectBuilder::new(gen.next_id())
        .fixed_data(
            "trace",
            DataItem::public(Value::Int(0)).with_write_acl(Acl::Public),
        )
        .fixed_method(
            "target",
            Method::public(MethodBody::script("return \"reached\";").unwrap()),
        )
        .fixed_method(
            "native_caller",
            Method::public(MethodBody::native(|env, _| env.invoke("target", &[]))),
        )
        .build();
    let me = obj.id();
    obj.add_method(
        me,
        "count_meta",
        Method::public(
            MethodBody::script(
                r#"
                param m;
                param a;
                self.set("trace", self.get("trace") + 1);
                return self.invoke(m, a);
                "#,
            )
            .unwrap(),
        ),
    )
    .unwrap();
    obj.install_meta_invoke(me, "count_meta").unwrap();
    let caller = gen.next_id();
    let mut world = NoWorld;
    let out = invoke(&mut obj, &mut world, caller, "native_caller", &[]).unwrap();
    assert_eq!(out, Value::from("reached"));
    // Two passes through the meta level: the outer call and the nested one.
    assert_eq!(obj.read_data(caller, "trace").unwrap(), Value::Int(2));
}

#[test]
fn meta_mutability_deleting_the_invoke_meta_method() {
    // A class that opted its meta-methods into the extensible section can
    // lose them — the radical end of meta-mutability. External invocation
    // still works (the engine is level 0), but reflexive invoke("m", ...)
    // is gone.
    let mut gen = ids();
    let mut obj = ObjectBuilder::new(gen.next_id())
        .meta_section(Section::Extensible)
        .fixed_method(
            "m",
            Method::public(MethodBody::script("return 5;").unwrap()),
        )
        .build();
    let me = obj.id();
    let caller = gen.next_id();
    let mut world = NoWorld;
    assert_eq!(
        invoke(&mut obj, &mut world, caller, "invoke", &[Value::from("m")]).unwrap(),
        Value::Int(5)
    );
    obj.delete_method(me, "invoke").unwrap();
    // Direct invocation is engine-level and survives...
    assert_eq!(
        invoke(&mut obj, &mut world, caller, "m", &[]).unwrap(),
        Value::Int(5)
    );
    // ...but the reflective method entry is gone.
    assert!(matches!(
        invoke(&mut obj, &mut world, caller, "invoke", &[Value::from("m")]),
        Err(MromError::NoSuchMethod { .. })
    ));
}

#[test]
fn script_rename_via_set_data_item() {
    let (mut obj, mut gen) = subject();
    let me = obj.id();
    let mut world = NoWorld;
    obj.add_data(me, "old_name", Value::Int(3)).unwrap();
    obj.add_method(
        me,
        "rename_it",
        Method::public(
            MethodBody::script(
                "self.set_data_item(\"old_name\", {\"rename\": \"new_name\"}); return self.has_data(\"new_name\");",
            )
            .unwrap(),
        ),
    )
    .unwrap();
    let caller = gen.next_id();
    assert_eq!(
        invoke(&mut obj, &mut world, caller, "rename_it", &[]).unwrap(),
        Value::Bool(true)
    );
    assert!(obj.has_data(me, "new_name"));
    assert!(!obj.has_data(me, "old_name"));
}
