//! Property tests over the object model: fixed-section immutability under
//! arbitrary operation sequences, migration round trips, and the
//! encapsulation/security duality.

use mrom_core::{
    invoke, Acl, DataItem, Method, MethodBody, MromError, MromObject, NoWorld, ObjectBuilder,
};
use mrom_value::{IdGenerator, NodeId, ObjectId, Value};
use proptest::prelude::*;

fn ids(node: u64) -> IdGenerator {
    IdGenerator::new(NodeId(node))
}

/// Names used by generated operations.
fn name() -> impl Strategy<Value = String> {
    "[a-e]{1,3}".prop_map(|s| s)
}

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,6}".prop_map(Value::Str),
        prop::collection::vec(any::<i64>().prop_map(Value::Int), 0..3).prop_map(Value::List),
    ]
}

/// A structural operation against an object.
#[derive(Debug, Clone)]
enum Op {
    AddData(String, Value),
    DeleteData(String),
    WriteData(String, Value),
    AddMethod(String),
    DeleteMethod(String),
    SetMethodAcl(String, bool),
    RenameData(String, String),
    InstallTower(String),
    UninstallTower,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (name(), small_value()).prop_map(|(n, v)| Op::AddData(n, v)),
        name().prop_map(Op::DeleteData),
        (name(), small_value()).prop_map(|(n, v)| Op::WriteData(n, v)),
        name().prop_map(Op::AddMethod),
        name().prop_map(Op::DeleteMethod),
        (name(), any::<bool>()).prop_map(|(n, public)| Op::SetMethodAcl(n, public)),
        (name(), name()).prop_map(|(a, b)| Op::RenameData(a, b)),
        name().prop_map(Op::InstallTower),
        Just(Op::UninstallTower),
    ]
}

/// Builds the reference object: one fixed data item, one fixed method.
fn subject(gen: &mut IdGenerator) -> MromObject {
    ObjectBuilder::new(gen.next_id())
        .class("subject")
        .fixed_data("anchor", DataItem::public(Value::Int(7)))
        .fixed_method(
            "anchor_m",
            Method::public(MethodBody::script("return self.get(\"anchor\");").unwrap()),
        )
        .build()
}

fn apply(obj: &mut MromObject, me: ObjectId, op: &Op) {
    // Every operation is allowed to fail (duplicates, missing names); the
    // properties below assert invariants, not success.
    let _ = match op {
        Op::AddData(n, v) => obj.add_data(me, n, v.clone()),
        Op::DeleteData(n) => obj.delete_data(me, n),
        Op::WriteData(n, v) => obj.write_data(me, n, v.clone()),
        Op::AddMethod(n) => obj.add_method(
            me,
            n,
            Method::public(MethodBody::script("return 1;").unwrap()),
        ),
        Op::DeleteMethod(n) => obj.delete_method(me, n),
        Op::SetMethodAcl(n, public) => obj.set_method(
            me,
            n,
            &Value::map([(
                "invoke_acl",
                Value::from(if *public { "public" } else { "origin" }),
            )]),
        ),
        Op::RenameData(a, b) => {
            obj.set_data_item(me, a, &Value::map([("rename", Value::Str(b.clone()))]))
        }
        Op::InstallTower(n) => obj.install_meta_invoke(me, n),
        Op::UninstallTower => obj.uninstall_meta_invoke(me).map(|_| ()),
    };
}

proptest! {
    /// No sequence of structural operations can remove, rename, or destroy
    /// fixed items; fixed data stays readable and fixed methods invocable.
    #[test]
    fn fixed_section_survives_arbitrary_mutation(ops in prop::collection::vec(op(), 0..40)) {
        let mut gen = ids(1);
        let mut obj = subject(&mut gen);
        let me = obj.id();
        for o in &ops {
            apply(&mut obj, me, o);
        }
        // The fixed anchor item is still there and readable.
        let v = obj.read_data(me, "anchor").expect("fixed item must survive");
        prop_assert_eq!(v, Value::Int(7));
        // The fixed method is still there (the tower may reroute
        // invocation, so check presence rather than behaviour).
        prop_assert!(obj.find_method("anchor_m").is_some());
        // All nine meta-methods survive too (registered fixed).
        for meta in ["invoke", "addMethod", "getDataItem", "deleteMethod"] {
            prop_assert!(obj.find_method(meta).is_some(), "{} lost", meta);
        }
    }

    /// After arbitrary mutation, a mobile object's migration image round
    /// trips to an identical object.
    #[test]
    fn migration_round_trip_after_mutation(ops in prop::collection::vec(op(), 0..40)) {
        let mut gen = ids(2);
        let mut obj = subject(&mut gen);
        let me = obj.id();
        for o in &ops {
            apply(&mut obj, me, o);
        }
        let bytes = obj.migration_image(me).expect("script-only object is mobile");
        let back = MromObject::from_image(&bytes).expect("own image decodes");
        prop_assert_eq!(back, obj);
    }

    /// Encapsulation == security: an item a stranger cannot read never
    /// appears in the stranger's listing, and vice versa.
    #[test]
    fn visibility_equals_permission(ops in prop::collection::vec(op(), 0..30)) {
        let mut gen = ids(3);
        let mut obj = subject(&mut gen);
        let me = obj.id();
        let stranger = gen.next_id();
        for o in &ops {
            apply(&mut obj, me, o);
        }
        for (n, _) in obj.list_data(stranger) {
            prop_assert!(obj.read_data(stranger, &n).is_ok(), "listed but unreadable: {}", n);
        }
        for (n, _) in obj.list_data(me) {
            let visible_to_stranger = obj
                .list_data(stranger)
                .iter()
                .any(|(m, _)| m == &n);
            let readable = obj.read_data(stranger, &n).is_ok();
            prop_assert_eq!(visible_to_stranger, readable, "{}", n);
        }
    }

    /// A stranger principal can never change the object's structure, no
    /// matter which operation it attempts.
    #[test]
    fn strangers_cannot_mutate(ops in prop::collection::vec(op(), 1..30)) {
        let mut gen = ids(4);
        let mut obj = subject(&mut gen);
        let me = obj.id();
        // Give the object some extensible structure first.
        obj.add_data(me, "a", Value::Int(1)).unwrap();
        obj.add_method(me, "b", Method::public(MethodBody::script("return 1;").unwrap()))
            .unwrap();
        let snapshot = obj.clone();
        let stranger = gen.next_id();
        for o in &ops {
            apply(&mut obj, stranger, o);
        }
        prop_assert_eq!(obj, snapshot);
    }

    /// Invoking arbitrary method names with arbitrary args never panics.
    #[test]
    fn invocation_is_total(
        method in "[a-zA-Z_][a-zA-Z0-9_]{0,10}",
        args in prop::collection::vec(small_value(), 0..3)
    ) {
        let mut gen = ids(5);
        let mut obj = subject(&mut gen);
        let caller = gen.next_id();
        let mut world = NoWorld;
        let _ = invoke(&mut obj, &mut world, caller, &method, &args);
    }

    /// Invoke through the meta-method `invoke` is equivalent to direct
    /// invocation (same result or same class of error).
    #[test]
    fn meta_invoke_equivalence(x in any::<i32>()) {
        let mut gen = ids(6);
        let mut obj = ObjectBuilder::new(gen.next_id())
            .fixed_method(
                "twice",
                Method::public(MethodBody::script("param v; return v + v;").unwrap()),
            )
            .build();
        let caller = gen.next_id();
        let mut world = NoWorld;
        let direct = invoke(&mut obj, &mut world, caller, "twice", &[Value::from(x)]);
        let via_meta = invoke(
            &mut obj,
            &mut world,
            caller,
            "invoke",
            &[Value::from("twice"), Value::list([Value::from(x)])],
        );
        prop_assert_eq!(direct.unwrap(), via_meta.unwrap());
    }
}

#[test]
fn stranger_cannot_exfiltrate_private_method_bodies() {
    // Regression-style scenario: even with a public invoke ACL on a
    // method, its body stays hidden from non-meta callers.
    let mut gen = ids(7);
    let mut obj = subject(&mut gen);
    let me = obj.id();
    obj.add_method(
        me,
        "secret_logic",
        Method::public(MethodBody::script("return 42;").unwrap()),
    )
    .unwrap();
    let stranger = gen.next_id();
    let desc = obj.method_descriptor(stranger, "secret_logic").unwrap();
    assert!(desc.as_map().unwrap()["body"].is_null());
    // And the full image is off limits entirely.
    assert!(matches!(
        obj.migration_image(stranger),
        Err(MromError::AccessDenied { .. })
    ));
    // Unless granted: ACL surgery by the origin opens the door.
    obj.set_method(
        me,
        "secret_logic",
        &Value::map([("meta_acl", Value::list([Value::Str(stranger.to_string())]))]),
    )
    .unwrap();
    let desc = obj.method_descriptor(stranger, "secret_logic").unwrap();
    assert!(!desc.as_map().unwrap()["body"].is_null());
}

#[test]
fn acl_upgrade_downgrade_cycle() {
    let mut gen = ids(8);
    let mut obj = subject(&mut gen);
    let me = obj.id();
    let friend = gen.next_id();
    obj.add_data(me, "shared", Value::Int(5)).unwrap();
    assert!(obj.read_data(friend, "shared").is_err());
    // Grant, verify, revoke, verify.
    obj.set_data_item(
        me,
        "shared",
        &Value::map([("read_acl", Value::list([Value::Str(friend.to_string())]))]),
    )
    .unwrap();
    assert_eq!(obj.read_data(friend, "shared").unwrap(), Value::Int(5));
    obj.set_data_item(
        me,
        "shared",
        &Value::map([("read_acl", Value::from("origin"))]),
    )
    .unwrap();
    assert!(obj.read_data(friend, "shared").is_err());
    // Nobody policy locks out even the origin.
    obj.set_data_item(
        me,
        "shared",
        &Value::map([("read_acl", Value::from("nobody"))]),
    )
    .unwrap();
    assert!(matches!(
        obj.read_data(me, "shared"),
        Err(MromError::AccessDenied { .. })
    ));
    // Write ACL still lets the origin repair the situation.
    obj.set_data_item(
        me,
        "shared",
        &Value::map([("read_acl", Value::from("public"))]),
    )
    .unwrap();
    assert_eq!(obj.read_data(friend, "shared").unwrap(), Value::Int(5));
}

#[test]
fn acl_only_lists_work_end_to_end() {
    let mut gen = ids(9);
    let mut obj = subject(&mut gen);
    let me = obj.id();
    let alice = gen.next_id();
    let bob = gen.next_id();
    obj.add_method(
        me,
        "club",
        Method::new(MethodBody::script("return \"in\";").unwrap())
            .with_invoke_acl(Acl::only([alice])),
    )
    .unwrap();
    let mut world = NoWorld;
    assert_eq!(
        invoke(&mut obj, &mut world, alice, "club", &[]).unwrap(),
        Value::from("in")
    );
    assert!(matches!(
        invoke(&mut obj, &mut world, bob, "club", &[]),
        Err(MromError::AccessDenied { .. })
    ));
}
