//! Engine-differential battery at the *object* level: the same method
//! invocation on identically-built objects must produce byte-identical
//! results, errors, and post-state under the tree-walking interpreter and
//! the bytecode VM — including at every fuel-exhaustion point.
//!
//! The process-wide engine selector is an atomic, so every test in this
//! file funnels through [`with_engine`], which serializes on a mutex and
//! restores the VM default before releasing it.

use std::sync::Mutex;

use mrom_core::{
    invoke, invoke_with_limits, set_script_engine, Acl, DataItem, InvokeLimits, Method, MethodBody,
    MromError, MromObject, NoWorld, ObjectBuilder, ScriptEngine,
};
use mrom_value::{IdGenerator, NodeId, Value};

static ENGINE: Mutex<()> = Mutex::new(());

/// Runs `f` with the process-wide script engine pinned to `engine`,
/// restoring the VM default afterwards even on panic.
fn with_engine<R>(engine: ScriptEngine, f: impl FnOnce() -> R) -> R {
    let _guard = ENGINE.lock().unwrap();
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_script_engine(ScriptEngine::Vm);
        }
    }
    let _restore = Restore;
    set_script_engine(engine);
    f()
}

fn ids() -> IdGenerator {
    IdGenerator::new(NodeId(42))
}

/// A specimen with fixed + extensible state and a spread of method shapes.
fn specimen(gen: &mut IdGenerator) -> MromObject {
    ObjectBuilder::new(gen.next_id())
        .class("diff-specimen")
        .fixed_data("count", DataItem::public(Value::Int(0)))
        .fixed_data("label", DataItem::public(Value::from("spec")))
        .fixed_data(
            "secret",
            DataItem::new(Value::Int(7)).with_read_acl(Acl::Nobody),
        )
        .fixed_method(
            "bump",
            Method::public(
                MethodBody::script("self.set(\"count\", self.get(\"count\") + 1); return true;")
                    .unwrap(),
            ),
        )
        .fixed_method(
            "spin",
            Method::public(
                MethodBody::script(
                    "param n; let i = 0; while (i < n) { \
                     self.set(\"count\", self.get(\"count\") + 1); i = i + 1; } \
                     return self.get(\"count\");",
                )
                .unwrap(),
            ),
        )
        .fixed_method(
            "describe_count",
            Method::public(
                MethodBody::script("return self.invoke(\"getDataItem\", [\"count\"]);").unwrap(),
            ),
        )
        .build()
}

/// One observation of a call: its outcome plus the object's full post-state
/// (captured as the canonical migration image, so *any* state divergence —
/// data values, methods, generation-visible structure — shows up).
fn observe(
    engine: ScriptEngine,
    method: &str,
    args: &[Value],
    fuel: u64,
    extra: impl Fn(&mut MromObject),
) -> (Result<Value, MromError>, Vec<u8>) {
    with_engine(engine, || {
        let mut gen = ids();
        let mut obj = specimen(&mut gen);
        extra(&mut obj);
        let caller = gen.next_id();
        let mut world = NoWorld;
        let limits = InvokeLimits {
            fuel,
            ..InvokeLimits::default()
        };
        let out = invoke_with_limits(&mut obj, &mut world, caller, method, args, &limits);
        let me = obj.id();
        let image = obj
            .migration_image(me)
            .expect("self can always image itself");
        (out, image)
    })
}

/// Asserts both engines agree on outcome and post-state for one call shape,
/// at a generous budget and across a fuel sweep up to that call's real cost.
fn agree(method: &str, args: &[Value], extra: impl Fn(&mut MromObject) + Copy) {
    let generous = 200_000;
    let (out_i, img_i) = observe(ScriptEngine::Interp, method, args, generous, extra);
    let (out_v, img_v) = observe(ScriptEngine::Vm, method, args, generous, extra);
    assert_eq!(out_i, out_v, "[{method}] outcome drift at full budget");
    assert_eq!(img_i, img_v, "[{method}] post-state drift at full budget");

    // Exhaustion sweep: sampled budgets below the generous one must fail
    // (or succeed) identically, with identical partial side effects.
    for fuel in (0..400).step_by(7).chain([500, 1000, 5000, 20_000]) {
        let (a, ia) = observe(ScriptEngine::Interp, method, args, fuel, extra);
        let (b, ib) = observe(ScriptEngine::Vm, method, args, fuel, extra);
        assert_eq!(a, b, "[{method}] outcome drift at fuel {fuel}");
        assert_eq!(ia, ib, "[{method}] post-state drift at fuel {fuel}");
    }
}

fn add(obj: &mut MromObject, name: &str, src: &str) {
    let me = obj.id();
    obj.add_method(me, name, Method::public(MethodBody::script(src).unwrap()))
        .unwrap();
}

#[test]
fn clean_methods_agree() {
    agree("bump", &[], |_| {});
    agree("spin", &[Value::Int(25)], |_| {});
    agree("describe_count", &[], |_| {});
}

#[test]
fn defect_corpus_bodies_agree() {
    // Runtime-failing bodies from the admission defect corpus: both
    // engines must surface the identical error with identical partial
    // effects on the object.
    let corpus: &[(&str, &str)] = &[
        ("ghost", "return ghost;"),
        ("escaped", "if (true) { let x = 1; } return x;"),
        ("absent", "return self.get(\"absent\");"),
        ("vanished", "return self.invoke(\"vanished\", []);"),
        ("locked", "return self.get(\"secret\");"),
        ("divzero", "let d = 0; return 1 / d;"),
        (
            "hot",
            "let s = \"\"; while (true) { s = s + \"x\"; } return s;",
        ),
        (
            "mutate_then_fail",
            "self.set(\"count\", 41); self.set(\"count\", self.get(\"count\") + 1); \
             return self.get(\"missing\");",
        ),
    ];
    for (name, src) in corpus {
        agree(name, &[], |obj| add(obj, name, src));
    }
}

#[test]
fn ic_sites_survive_structural_mutation() {
    // A body that caches `self.get("count")` sites, then mutates object
    // structure (extensible adds/deletes bump the generation) and reads
    // again — the cache must revalidate, never serve stale values.
    let src = "let a = self.get(\"count\"); \
               self.add_data_item(\"tmp\", a + 1); \
               self.set(\"count\", self.get(\"count\") + 10); \
               self.delete_data_item(\"tmp\"); \
               return [self.get(\"count\"), a];";
    agree("churn", &[], |obj| add(obj, "churn", src));
}

#[test]
fn self_modifying_methods_agree() {
    // addMethod installs a fresh Program (fresh, empty bytecode cache);
    // invoking it afterwards must behave identically across engines.
    let src = "self.add_method(\"doubler\", \"param x; return x * 2;\"); \
               return self.invoke(\"doubler\", [21]);";
    agree("grow", &[], |obj| add(obj, "grow", src));

    // setMethod replaces an existing body: the old compiled form must not
    // be reachable from the new Program.
    let replace = "self.set_method(\"helper\", \"return \\\"new\\\";\"); \
                   return self.invoke(\"helper\", []);";
    agree("swap", &[], |obj| {
        add(obj, "helper", "return \"old\";");
        add(obj, "swap", replace);
    });
}

#[test]
fn nested_invocations_share_the_fuel_ledger_identically() {
    // spin(8) through the meta `invoke` — the nested call draws on the
    // same ledger, so exhaustion points depend on cross-call accounting.
    let src = "return self.invoke(\"spin\", [8]) + self.invoke(\"spin\", [4]);";
    agree("nested", &[], |obj| add(obj, "nested", src));
}

#[test]
fn interp_engine_is_selectable_and_equivalent() {
    // Plain `invoke` (default limits) under an explicit Interp pin — the
    // switch itself must not change behaviour.
    let out = with_engine(ScriptEngine::Interp, || {
        let mut gen = ids();
        let mut obj = specimen(&mut gen);
        let caller = gen.next_id();
        invoke(&mut obj, &mut NoWorld, caller, "spin", &[Value::Int(5)])
    });
    assert_eq!(out, Ok(Value::Int(5)));
}
