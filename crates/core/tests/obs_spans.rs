//! Observability integration: the invocation tower produces correctly
//! nested spans, a disabled recorder observes nothing, and `getStats`
//! answers through the ordinary invocation machinery.
//!
//! Each test runs on its own thread, so each gets its own thread-local
//! recorder and they cannot interfere.

use mrom_core::{invoke, DataItem, Method, MethodBody, NoWorld, ObjectBuilder};
use mrom_obs::{EventKind, ObsMode};
use mrom_value::{IdGenerator, NodeId, Value};

fn ids() -> IdGenerator {
    IdGenerator::new(NodeId(0x0b5))
}

/// An extensible object with a script `add` and `levels` pass-through
/// meta-invoke levels, as in experiment E1.
fn towered_adder(levels: usize) -> (mrom_core::MromObject, IdGenerator) {
    let mut gen = ids();
    let mut obj = ObjectBuilder::new(gen.next_id())
        .class("towered")
        .fixed_data("x", DataItem::public(Value::Int(0)))
        .fixed_method(
            "add",
            Method::public(MethodBody::script("param a; param b; return a + b;").unwrap()),
        )
        .build();
    let me = obj.id();
    for i in 0..levels {
        let name = format!("meta_{i}");
        obj.add_method(
            me,
            &name,
            Method::public(
                MethodBody::script("param m; param a; return self.invoke(m, a);").unwrap(),
            ),
        )
        .unwrap();
        obj.install_meta_invoke(me, &name).unwrap();
    }
    (obj, gen)
}

#[test]
fn level_two_tower_produces_nested_spans() {
    mrom_obs::reset();
    mrom_obs::set_mode(ObsMode::Ring);
    let (mut obj, mut gen) = towered_adder(2);
    let caller = gen.next_id();
    let mut world = NoWorld;
    let out = invoke(
        &mut obj,
        &mut world,
        caller,
        "add",
        &[Value::Int(20), Value::Int(22)],
    )
    .unwrap();
    mrom_obs::set_mode(ObsMode::Disabled);
    assert_eq!(out, Value::Int(42));

    let events = mrom_obs::ring_snapshot();
    let starts: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::InvokeStart { .. }))
        .collect();
    let ends = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::InvokeEnd { .. }))
        .count();
    // One application per tower level: two metas plus the base method.
    assert_eq!(starts.len(), 3, "{events:#?}");
    assert_eq!(ends, 3);

    // All three belong to one trace, rooted at the outermost application.
    let trace = starts[0].event.trace;
    assert_ne!(trace, 0);
    assert!(starts.iter().all(|e| e.event.trace == trace));
    assert_eq!(starts[0].event.parent, 0);
    // Each deeper application is a child span of the one above it.
    assert_eq!(starts[1].event.parent, starts[0].event.span);
    assert_eq!(starts[2].event.parent, starts[1].event.span);

    // Levels are recorded per span in the paper's numbering: dispatch
    // enters at the topmost meta level and descends to the base method
    // at level 0.
    let details: Vec<(&str, u32)> = starts
        .iter()
        .map(|e| match &e.kind {
            EventKind::InvokeStart { method, level, .. } => (method.as_str(), *level),
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(details.last().unwrap().0, "add");
    let levels: Vec<u32> = details.iter().map(|(_, l)| *l).collect();
    assert_eq!(levels, vec![2, 1, 0]);

    // The tower was descended once per installed meta level.
    let descents = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TowerDescend { .. }))
        .count();
    assert_eq!(descents, 2);
}

#[test]
fn disabled_recorder_observes_nothing() {
    mrom_obs::reset();
    mrom_obs::set_mode(ObsMode::Disabled);
    let (mut obj, mut gen) = towered_adder(1);
    let caller = gen.next_id();
    let mut world = NoWorld;
    for _ in 0..5 {
        invoke(
            &mut obj,
            &mut world,
            caller,
            "add",
            &[Value::Int(1), Value::Int(2)],
        )
        .unwrap();
    }
    assert_eq!(mrom_obs::events_recorded(), 0);
    assert!(mrom_obs::ring_snapshot().is_empty());
    let metrics = mrom_obs::metrics_snapshot();
    assert_eq!(metrics.invoke.invocations, 0);
    assert_eq!(metrics.invoke.cache_hits + metrics.invoke.cache_misses, 0);
}

#[test]
fn get_stats_meta_method_reports_live_counters() {
    mrom_obs::reset();
    mrom_obs::set_mode(ObsMode::Ring);
    let (mut obj, mut gen) = towered_adder(0);
    let me = obj.id();
    let caller = gen.next_id();
    let mut world = NoWorld;
    for _ in 0..3 {
        invoke(
            &mut obj,
            &mut world,
            caller,
            "add",
            &[Value::Int(20), Value::Int(22)],
        )
        .unwrap();
    }
    // The stats surface is an ordinary meta-method invocation.
    let v = invoke(&mut obj, &mut world, caller, "getStats", &[]).unwrap();
    mrom_obs::set_mode(ObsMode::Disabled);
    let m = v.as_map().expect("getStats returns a map");
    assert_eq!(m.get("object"), Some(&Value::ObjectRef(me)));
    assert_eq!(m.get("obs_mode"), Some(&Value::from("ring")));
    let Some(Value::Int(n)) = m.get("invocations") else {
        panic!("invocations counter missing: {m:?}");
    };
    assert!(*n >= 3, "live counter should cover the three adds, got {n}");
}
