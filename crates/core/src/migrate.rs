//! Migration images: the self-contained byte form of an object.
//!
//! A mobile object serializes *itself* — identity, class name, all four
//! item containers (method bodies included, as script/meta data), the
//! invocation tower, and every ACL — into one buffer in the standard wire
//! format. The image is what travels over the simulated network (HADAS
//! Export/Import) and what the persistence substrate stores.
//!
//! An object holding any native (Rust-closure) body refuses to serialize
//! with [`MromError::NotMobile`]: self-containment means a mobile object
//! must carry all of its own behaviour.

use mrom_value::{wire, ObjectId, Value};

use crate::container::{ExtensibleContainer, FixedContainer};
use crate::error::MromError;
use crate::item::DataItem;
use crate::method::Method;
use crate::object::MromObject;
use crate::security::Acl;

/// Format discriminator embedded in every image.
pub const IMAGE_FORMAT: &str = "mrom-object@1";

impl MromObject {
    /// Serializes the object to a self-contained migration image.
    ///
    /// Guarded by the object meta ACL: exporting an object's full structure
    /// (bodies included) is the strongest meta operation there is.
    ///
    /// # Errors
    ///
    /// [`MromError::AccessDenied`] when `caller` fails the meta ACL;
    /// [`MromError::NotMobile`] when any method carries a native body.
    pub fn migration_image(&self, caller: ObjectId) -> Result<Vec<u8>, MromError> {
        if !self.meta_acl().permits(caller, self.origin()) {
            return Err(MromError::AccessDenied {
                object: self.id(),
                item: "migration image".to_owned(),
                operation: "meta",
                caller,
            });
        }
        let bytes = wire::encode(&self.image_value()?);
        mrom_obs::migrate_encode(self.id(), bytes.len());
        Ok(bytes)
    }

    /// The image as a [`Value`] tree (before byte encoding). Unchecked by
    /// ACLs — for substrates that already mediated access.
    ///
    /// # Errors
    ///
    /// [`MromError::NotMobile`] when any method carries a native body.
    pub fn image_value(&self) -> Result<Value, MromError> {
        let (fixed_data, fixed_methods, ext_data, ext_methods) = self.raw_parts();

        let data_map = |items: Vec<(&str, &DataItem)>| -> Value {
            Value::Map(
                items
                    .into_iter()
                    .map(|(n, item)| (n.to_owned(), item.descriptor()))
                    .collect(),
            )
        };
        let method_map = |items: Vec<(&str, &Method)>| -> Result<Value, MromError> {
            let mut out = std::collections::BTreeMap::new();
            for (n, m) in items {
                if !m.is_mobile() {
                    return Err(MromError::NotMobile {
                        object: self.id(),
                        item: n.to_owned(),
                    });
                }
                out.insert(n.to_owned(), m.descriptor());
            }
            Ok(Value::Map(out))
        };

        Ok(Value::map([
            ("format", Value::from(IMAGE_FORMAT)),
            ("id", Value::ObjectRef(self.id())),
            ("origin", Value::ObjectRef(self.origin())),
            ("class", Value::from(self.class_name())),
            ("meta_acl", self.meta_acl().to_value()),
            (
                "tower",
                Value::List(
                    self.tower()
                        .iter()
                        .map(|n| Value::Str(n.as_ref().to_owned()))
                        .collect(),
                ),
            ),
            ("fixed_data", data_map(fixed_data.iter().collect())),
            ("fixed_methods", method_map(fixed_methods.iter().collect())?),
            ("ext_data", data_map(ext_data.iter().collect())),
            ("ext_methods", method_map(ext_methods.iter().collect())?),
        ]))
    }

    /// Reconstructs an object from image bytes under the process-wide
    /// default [`AdmissionPolicy`].
    ///
    /// # Errors
    ///
    /// [`MromError::BadImage`] for framing/validation failures;
    /// [`MromError::AdmissionRejected`] under a strict admission policy.
    ///
    /// [`AdmissionPolicy`]: crate::AdmissionPolicy
    pub fn from_image(bytes: &[u8]) -> Result<MromObject, MromError> {
        MromObject::from_image_with_policy(bytes, crate::admission::default_admission_policy())
    }

    /// Reconstructs an object from image bytes under an explicit
    /// [`AdmissionPolicy`], overriding the process-wide default.
    ///
    /// # Errors
    ///
    /// [`MromError::BadImage`] for framing/validation failures;
    /// [`MromError::AdmissionRejected`] when `policy` is strict and any
    /// method body fails static admission analysis.
    ///
    /// [`AdmissionPolicy`]: crate::AdmissionPolicy
    pub fn from_image_with_policy(
        bytes: &[u8],
        policy: crate::AdmissionPolicy,
    ) -> Result<MromObject, MromError> {
        let v = match wire::decode(bytes) {
            Ok(v) => v,
            Err(e) => {
                mrom_obs::migrate_decode(bytes.len(), false);
                return Err(MromError::BadImage(e.to_string()));
            }
        };
        let result = MromObject::from_image_value_with_policy(&v, policy);
        mrom_obs::migrate_decode(bytes.len(), result.is_ok());
        result
    }

    /// Reconstructs an object from an image [`Value`] tree under the
    /// process-wide default [`AdmissionPolicy`].
    ///
    /// # Errors
    ///
    /// [`MromError::BadImage`] when the tree does not follow the image
    /// schema, references unknown fields, or contains invalid descriptors;
    /// [`MromError::AdmissionRejected`] under a strict admission policy.
    ///
    /// [`AdmissionPolicy`]: crate::AdmissionPolicy
    pub fn from_image_value(v: &Value) -> Result<MromObject, MromError> {
        MromObject::from_image_value_with_policy(v, crate::admission::default_admission_policy())
    }

    /// Reconstructs an object from an image [`Value`] tree under an
    /// explicit [`AdmissionPolicy`].
    ///
    /// # Errors
    ///
    /// As [`MromObject::from_image_value`], plus
    /// [`MromError::AdmissionRejected`] when `policy` is strict and any
    /// method body fails static admission analysis.
    ///
    /// [`AdmissionPolicy`]: crate::AdmissionPolicy
    pub fn from_image_value_with_policy(
        v: &Value,
        policy: crate::AdmissionPolicy,
    ) -> Result<MromObject, MromError> {
        let bad = |detail: String| MromError::BadImage(detail);
        let m = v
            .as_map()
            .ok_or_else(|| bad("image must be a map".into()))?;
        match m.get("format").and_then(Value::as_str) {
            Some(IMAGE_FORMAT) => {}
            Some(other) => return Err(bad(format!("unsupported image format {other:?}"))),
            None => return Err(bad("missing format field".into())),
        }
        let id = m
            .get("id")
            .and_then(Value::as_object_ref)
            .ok_or_else(|| bad("missing id".into()))?;
        let origin = m
            .get("origin")
            .and_then(Value::as_object_ref)
            .ok_or_else(|| bad("missing origin".into()))?;
        let class = m
            .get("class")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing class".into()))?
            .to_owned();
        let meta_acl = Acl::from_value(
            m.get("meta_acl")
                .ok_or_else(|| bad("missing meta_acl".into()))?,
        )
        .map_err(|e| bad(format!("bad meta_acl: {e}")))?;
        let tower = m
            .get("tower")
            .and_then(Value::as_list)
            .ok_or_else(|| bad("missing tower".into()))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(std::sync::Arc::<str>::from)
                    .ok_or_else(|| bad("tower entries must be strings".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let decode_data = |key: &str| -> Result<Vec<(String, DataItem)>, MromError> {
            let section = m
                .get(key)
                .and_then(Value::as_map)
                .ok_or_else(|| bad(format!("missing {key} map")))?;
            section
                .iter()
                .map(|(n, desc)| {
                    DataItem::from_descriptor(desc)
                        .map(|item| (n.clone(), item))
                        .map_err(|e| bad(format!("bad data item {n:?}: {e}")))
                })
                .collect()
        };
        let decode_methods = |key: &str| -> Result<Vec<(String, Method)>, MromError> {
            let section = m
                .get(key)
                .and_then(Value::as_map)
                .ok_or_else(|| bad(format!("missing {key} map")))?;
            section
                .iter()
                .map(|(n, desc)| {
                    Method::from_descriptor(desc)
                        .map(|method| (n.clone(), method))
                        .map_err(|e| bad(format!("bad method {n:?}: {e}")))
                })
                .collect()
        };

        let fixed_data: FixedContainer<DataItem> = decode_data("fixed_data")?.into_iter().collect();
        let fixed_methods: FixedContainer<Method> =
            decode_methods("fixed_methods")?.into_iter().collect();
        let ext_data: ExtensibleContainer<DataItem> =
            decode_data("ext_data")?.into_iter().collect();
        let ext_methods: ExtensibleContainer<Method> =
            decode_methods("ext_methods")?.into_iter().collect();

        // Tower entries must reference existing extensible methods.
        for entry in &tower {
            if !ext_methods.contains(entry.as_ref()) {
                return Err(bad(format!(
                    "tower references missing extensible method {entry:?}"
                )));
            }
        }

        let obj = MromObject::from_raw_parts(
            id,
            origin,
            class,
            fixed_data,
            fixed_methods,
            ext_data,
            ext_methods,
            tower,
            meta_acl,
        );
        crate::admission::admit_object(policy, &obj, "from_image")?;
        // Effect signatures are deliberately NOT primed here: the first
        // consumer (a retry policy, a Strict dispatch check, `getEffects`)
        // pays one memoized solve instead, keeping admission itself at
        // analyzer + verifier cost (the E12/E16 ≤15% budget).
        Ok(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invoke::{invoke, NoWorld};
    use crate::method::MethodBody;
    use crate::object::ObjectBuilder;
    use mrom_value::{IdGenerator, NodeId};

    fn ids() -> IdGenerator {
        IdGenerator::new(NodeId(11))
    }

    fn mobile_object(gen: &mut IdGenerator) -> MromObject {
        let mut obj = ObjectBuilder::new(gen.next_id())
            .class("traveler")
            .fixed_data("home", DataItem::public(Value::from("node-11")))
            .fixed_method(
                "greet",
                Method::public(
                    MethodBody::script("return \"hello from \" + self.get(\"home\");").unwrap(),
                ),
            )
            .build();
        let me = obj.id();
        obj.add_data(me, "hops", Value::Int(0)).unwrap();
        obj.add_method(
            me,
            "hop",
            Method::public(
                MethodBody::script(
                    "self.set(\"hops\", self.get(\"hops\") + 1); return self.get(\"hops\");",
                )
                .unwrap(),
            ),
        )
        .unwrap();
        obj
    }

    #[test]
    fn image_round_trip_preserves_everything() {
        let mut gen = ids();
        let obj = mobile_object(&mut gen);
        let me = obj.id();
        let bytes = obj.migration_image(me).unwrap();
        let back = MromObject::from_image(&bytes).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn unpacked_object_still_works() {
        let mut gen = ids();
        let mut obj = mobile_object(&mut gen);
        let me = obj.id();
        let mut world = NoWorld;
        // Run some state forward before migrating.
        invoke(&mut obj, &mut world, me, "hop", &[]).unwrap();
        invoke(&mut obj, &mut world, me, "hop", &[]).unwrap();
        let bytes = obj.migration_image(me).unwrap();
        let mut back = MromObject::from_image(&bytes).unwrap();
        // State travelled with the object.
        assert_eq!(
            invoke(&mut back, &mut world, me, "hop", &[]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            invoke(&mut back, &mut world, me, "greet", &[]).unwrap(),
            Value::from("hello from node-11")
        );
    }

    #[test]
    fn tower_travels_with_the_object() {
        let mut gen = ids();
        let mut obj = mobile_object(&mut gen);
        let me = obj.id();
        obj.add_method(
            me,
            "mi",
            Method::public(MethodBody::script("param m; param a; return \"wrapped\";").unwrap()),
        )
        .unwrap();
        obj.install_meta_invoke(me, "mi").unwrap();
        let bytes = obj.migration_image(me).unwrap();
        let mut back = MromObject::from_image(&bytes).unwrap();
        assert_eq!(back.tower(), [std::sync::Arc::<str>::from("mi")]);
        let mut world = NoWorld;
        assert_eq!(
            invoke(&mut back, &mut world, me, "hop", &[]).unwrap(),
            Value::from("wrapped")
        );
    }

    #[test]
    fn native_bodies_refuse_to_migrate() {
        let mut gen = ids();
        let mut obj = mobile_object(&mut gen);
        let me = obj.id();
        obj.add_method(
            me,
            "rooted",
            Method::new(MethodBody::native(|_, _| Ok(Value::Null))),
        )
        .unwrap();
        assert!(matches!(
            obj.migration_image(me),
            Err(MromError::NotMobile { .. })
        ));
    }

    #[test]
    fn export_is_guarded_by_the_meta_acl() {
        let mut gen = ids();
        let obj = mobile_object(&mut gen);
        let stranger = gen.next_id();
        assert!(matches!(
            obj.migration_image(stranger),
            Err(MromError::AccessDenied { .. })
        ));
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let mut gen = ids();
        let obj = mobile_object(&mut gen);
        let me = obj.id();
        let bytes = obj.migration_image(me).unwrap();
        // Truncations.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(MromObject::from_image(&bytes[..cut]).is_err());
        }
        // Arbitrary garbage.
        assert!(MromObject::from_image(b"not an image").is_err());
        // A valid wire value that is not an image.
        let v = mrom_value::wire::encode(&Value::Int(42));
        assert!(matches!(
            MromObject::from_image(&v),
            Err(MromError::BadImage(_))
        ));
    }

    #[test]
    fn image_schema_violations_are_named() {
        // Wrong format string.
        let mut gen = ids();
        let obj = mobile_object(&mut gen);
        let mut image = obj.image_value().unwrap();
        image
            .as_map_mut()
            .unwrap()
            .insert("format".into(), Value::from("mrom-object@99"));
        assert!(matches!(
            MromObject::from_image_value(&image),
            Err(MromError::BadImage(detail)) if detail.contains("format")
        ));
        // Tower referencing a missing method.
        let mut image = obj.image_value().unwrap();
        image
            .as_map_mut()
            .unwrap()
            .insert("tower".into(), Value::list([Value::from("ghost")]));
        assert!(matches!(
            MromObject::from_image_value(&image),
            Err(MromError::BadImage(detail)) if detail.contains("ghost")
        ));
    }

    #[test]
    fn image_size_scales_with_items() {
        let mut gen = ids();
        let small = mobile_object(&mut gen);
        let mut big = mobile_object(&mut gen);
        let big_id = big.id();
        for i in 0..50 {
            big.add_data(big_id, &format!("item{i}"), Value::Int(i))
                .unwrap();
        }
        let small_len = small.migration_image(small.id()).unwrap().len();
        let big_len = big.migration_image(big_id).unwrap().len();
        assert!(big_len > small_len + 200, "{big_len} vs {small_len}");
    }
}
