//! The MROM error type.

use std::fmt;

use mrom_script::ScriptError;
use mrom_value::{ObjectId, ValueError};

/// Errors produced by the object model: invocation failures, security
/// denials, structural violations, and migration problems.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MromError {
    /// The target object is not registered on this node.
    NoSuchObject(ObjectId),
    /// The target object is currently executing (reentrant cross-object
    /// cycle); MROM objects are single-threaded autonomous units.
    ObjectBusy(ObjectId),
    /// Method lookup failed (phase 1 of level-0 invocation).
    NoSuchMethod {
        /// Object searched.
        object: ObjectId,
        /// Method name requested.
        name: String,
    },
    /// Data-item lookup failed.
    NoSuchDataItem {
        /// Object searched.
        object: ObjectId,
        /// Item name requested.
        name: String,
    },
    /// Security match failed (phase 2 of level-0 invocation): the caller
    /// principal is not on the item's ACL. Security and encapsulation are
    /// the same check in MROM.
    AccessDenied {
        /// Object that refused.
        object: ObjectId,
        /// Item or method name.
        item: String,
        /// Operation attempted (`"invoke"`, `"read"`, `"write"`, `"meta"`).
        operation: &'static str,
        /// The rejected principal.
        caller: ObjectId,
    },
    /// A structural mutation targeted the fixed section. Fixed items may
    /// not be added, removed, or replaced during the object's lifetime.
    FixedSectionViolation {
        /// Object whose fixed section was targeted.
        object: ObjectId,
        /// Item name.
        item: String,
    },
    /// An add operation collided with an existing item.
    DuplicateItem {
        /// Object involved.
        object: ObjectId,
        /// The name already in use.
        item: String,
    },
    /// A pre-procedure returned false: the body was not invoked.
    PreConditionFailed {
        /// Object involved.
        object: ObjectId,
        /// Method whose pre-procedure vetoed.
        method: String,
    },
    /// A post-procedure returned false: the invocation raises.
    PostConditionFailed {
        /// Object involved.
        object: ObjectId,
        /// Method whose post-procedure failed.
        method: String,
    },
    /// A dynamic type constraint on a data item rejected a write.
    TypeConstraint {
        /// Item name.
        item: String,
        /// Explanation.
        detail: String,
    },
    /// The invocation tower exceeded its depth bound.
    TowerDepthExceeded(usize),
    /// Cross-object call nesting exceeded its depth bound.
    CallDepthExceeded(usize),
    /// The object (or one of its methods) holds a native body and cannot
    /// migrate; self-containment requires carrying one's own behaviour.
    NotMobile {
        /// Object that refused to serialize.
        object: ObjectId,
        /// The native item blocking migration.
        item: String,
    },
    /// A descriptor (property map passed to a meta-method) was malformed.
    BadDescriptor(String),
    /// A migration or persistence image failed validation.
    BadImage(String),
    /// Static admission analysis rejected mobile code at a trust boundary
    /// (migration image, `addMethod`/`setMethod`, ambassador
    /// instantiation) under [`AdmissionPolicy::Strict`].
    ///
    /// [`AdmissionPolicy::Strict`]: crate::AdmissionPolicy::Strict
    AdmissionRejected {
        /// Object whose code failed admission.
        object: ObjectId,
        /// The boundary that rejected (`"from_image"`, `"add_method"`, ...).
        context: String,
        /// Everything the analyzer found (errors caused the rejection;
        /// warnings ride along for context).
        diagnostics: Vec<mrom_script::analyze::Diagnostic>,
    },
    /// A class-level problem: unknown class, duplicate registration,
    /// missing parent, or a spec that violates model rules.
    Class(String),
    /// The world hook rejected or failed an external operation.
    World(String),
    /// A script-layer error surfaced while running a method body.
    Script(ScriptError),
    /// A value-layer error surfaced.
    Value(ValueError),
}

impl MromError {
    /// Stable snake_case label for the error class, used as the trace
    /// outcome tag by the observability layer and by tools that bucket
    /// failures without parsing display strings.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MromError::NoSuchObject(_) => "no_such_object",
            MromError::ObjectBusy(_) => "object_busy",
            MromError::NoSuchMethod { .. } => "no_such_method",
            MromError::NoSuchDataItem { .. } => "no_such_data_item",
            MromError::AccessDenied { .. } => "access_denied",
            MromError::FixedSectionViolation { .. } => "fixed_section_violation",
            MromError::DuplicateItem { .. } => "duplicate_item",
            MromError::PreConditionFailed { .. } => "pre_condition_failed",
            MromError::PostConditionFailed { .. } => "post_condition_failed",
            MromError::TypeConstraint { .. } => "type_constraint",
            MromError::TowerDepthExceeded(_) => "tower_depth_exceeded",
            MromError::CallDepthExceeded(_) => "call_depth_exceeded",
            MromError::NotMobile { .. } => "not_mobile",
            MromError::BadDescriptor(_) => "bad_descriptor",
            MromError::BadImage(_) => "bad_image",
            MromError::AdmissionRejected { .. } => "admission_rejected",
            MromError::Class(_) => "class",
            MromError::World(_) => "world",
            MromError::Script(_) => "script",
            MromError::Value(_) => "value",
        }
    }
}

impl fmt::Display for MromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MromError::NoSuchObject(id) => write!(f, "no object {id} on this node"),
            MromError::ObjectBusy(id) => write!(f, "object {id} is already executing"),
            MromError::NoSuchMethod { object, name } => {
                write!(f, "object {object} has no method {name:?}")
            }
            MromError::NoSuchDataItem { object, name } => {
                write!(f, "object {object} has no data item {name:?}")
            }
            MromError::AccessDenied {
                object,
                item,
                operation,
                caller,
            } => write!(
                f,
                "access denied: caller {caller} may not {operation} {item:?} of {object}"
            ),
            MromError::FixedSectionViolation { object, item } => write!(
                f,
                "fixed-section violation: {item:?} of {object} is immutable"
            ),
            MromError::DuplicateItem { object, item } => {
                write!(f, "object {object} already has an item named {item:?}")
            }
            MromError::PreConditionFailed { object, method } => write!(
                f,
                "pre-procedure of {method:?} on {object} returned false; body skipped"
            ),
            MromError::PostConditionFailed { object, method } => {
                write!(f, "post-procedure of {method:?} on {object} returned false")
            }
            MromError::TypeConstraint { item, detail } => {
                write!(f, "type constraint on {item:?} rejected write: {detail}")
            }
            MromError::TowerDepthExceeded(limit) => {
                write!(f, "invocation tower deeper than {limit} levels")
            }
            MromError::CallDepthExceeded(limit) => {
                write!(f, "cross-object call depth exceeded {limit}")
            }
            MromError::NotMobile { object, item } => write!(
                f,
                "object {object} is not mobile: {item:?} has a native body"
            ),
            MromError::BadDescriptor(detail) => write!(f, "bad descriptor: {detail}"),
            MromError::BadImage(detail) => write!(f, "bad object image: {detail}"),
            MromError::AdmissionRejected {
                object,
                context,
                diagnostics,
            } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == mrom_script::analyze::Severity::Error)
                    .count();
                write!(
                    f,
                    "admission rejected at {context} for {object}: {errors} error(s)"
                )?;
                if let Some(first) = diagnostics
                    .iter()
                    .find(|d| d.severity == mrom_script::analyze::Severity::Error)
                {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            MromError::Class(detail) => write!(f, "class error: {detail}"),
            MromError::World(detail) => write!(f, "world operation failed: {detail}"),
            MromError::Script(e) => write!(f, "script error: {e}"),
            MromError::Value(e) => write!(f, "value error: {e}"),
        }
    }
}

impl std::error::Error for MromError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MromError::Script(e) => Some(e),
            MromError::Value(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScriptError> for MromError {
    fn from(e: ScriptError) -> Self {
        MromError::Script(e)
    }
}

impl From<ValueError> for MromError {
    fn from(e: ValueError) -> Self {
        MromError::Value(e)
    }
}

/// Lossy bridge used when a method body written in script calls back into
/// the object model: model errors travel through the script layer as
/// [`ScriptError::Host`] strings.
impl From<MromError> for ScriptError {
    fn from(e: MromError) -> Self {
        match e {
            MromError::Script(inner) => inner,
            other => ScriptError::Host(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrom_value::NodeId;

    #[test]
    fn display_mentions_the_principals() {
        let id = ObjectId::from_parts(NodeId(1), 2, 3);
        let caller = ObjectId::from_parts(NodeId(9), 8, 7);
        let msg = MromError::AccessDenied {
            object: id,
            item: "secret".into(),
            operation: "invoke",
            caller,
        }
        .to_string();
        assert!(msg.contains("secret"));
        assert!(msg.contains(&caller.to_string()));
    }

    #[test]
    fn script_round_trip_preserves_script_errors() {
        let orig = ScriptError::DivisionByZero;
        let model: MromError = orig.clone().into();
        let back: ScriptError = model.into();
        assert_eq!(back, orig);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<MromError>();
    }
}
