//! Classes and static specialization.
//!
//! The paper implements static specialization with Java subclassing: "the
//! subclass constructor copies the containers of the super-class ... as
//! well as adding items". Here a [`ClassSpec`] is an explicit template —
//! fixed and extensible item lists plus meta-method placement — and
//! [`ClassSpec::specialize`] performs the copy-then-extend. Dynamic
//! (runtime) specialization needs no class machinery at all: it is the
//! object mutating itself, prototype-style (Self/Cecil in the paper's
//! comparison).

use std::collections::BTreeMap;

use mrom_value::{IdGenerator, ObjectId};

use crate::container::Section;
use crate::error::MromError;
use crate::item::DataItem;
use crate::method::Method;
use crate::object::{MromObject, ObjectBuilder};
use crate::security::Acl;

/// A template from which objects are stamped.
///
/// # Example
///
/// ```
/// use mrom_core::{ClassSpec, DataItem, Method, MethodBody};
/// use mrom_value::{IdGenerator, NodeId, Value};
///
/// # fn main() -> Result<(), mrom_core::MromError> {
/// let spec = ClassSpec::new("sensor")
///     .fixed_data("reading", DataItem::public(Value::Float(0.0)))
///     .fixed_method(
///         "read",
///         Method::public(MethodBody::script("return self.get(\"reading\");")?),
///     );
/// let mut ids = IdGenerator::new(NodeId(4));
/// let obj = spec.instantiate(&mut ids);
/// assert_eq!(obj.class_name(), "sensor");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClassSpec {
    name: String,
    fixed_data: Vec<(String, DataItem)>,
    fixed_methods: Vec<(String, Method)>,
    ext_data: Vec<(String, DataItem)>,
    ext_methods: Vec<(String, Method)>,
    meta_acl: Acl,
    meta_section: Section,
}

impl ClassSpec {
    /// Starts an empty class template.
    pub fn new(name: &str) -> ClassSpec {
        ClassSpec {
            name: name.to_owned(),
            fixed_data: Vec::new(),
            fixed_methods: Vec::new(),
            ext_data: Vec::new(),
            ext_methods: Vec::new(),
            meta_acl: Acl::Origin,
            meta_section: Section::Fixed,
        }
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a fixed data item to the template.
    pub fn fixed_data(mut self, name: &str, item: DataItem) -> ClassSpec {
        self.fixed_data.push((name.to_owned(), item));
        self
    }

    /// Adds a fixed method.
    pub fn fixed_method(mut self, name: &str, method: Method) -> ClassSpec {
        self.fixed_methods.push((name.to_owned(), method));
        self
    }

    /// Adds an initial extensible data item.
    pub fn ext_data(mut self, name: &str, item: DataItem) -> ClassSpec {
        self.ext_data.push((name.to_owned(), item));
        self
    }

    /// Adds an initial extensible method.
    pub fn ext_method(mut self, name: &str, method: Method) -> ClassSpec {
        self.ext_methods.push((name.to_owned(), method));
        self
    }

    /// Sets the object-level meta ACL instances start with.
    pub fn meta_acl(mut self, acl: Acl) -> ClassSpec {
        self.meta_acl = acl;
        self
    }

    /// Chooses where instances carry their meta-methods;
    /// [`Section::Extensible`] opts the class into meta-mutability.
    pub fn meta_section(mut self, section: Section) -> ClassSpec {
        self.meta_section = section;
        self
    }

    /// Static specialization: a new class that copies this class's
    /// containers and then applies its own additions (later entries
    /// override same-name parent entries, like a subclass redefining a
    /// method).
    pub fn specialize(&self, name: &str) -> ClassSpec {
        let mut child = self.clone();
        child.name = name.to_owned();
        child
    }

    /// Stamps an instance with a fresh identity from `ids`.
    pub fn instantiate(&self, ids: &mut IdGenerator) -> MromObject {
        self.instantiate_with_origin(ids, None)
    }

    /// Stamps an instance owned by an explicit origin principal (how an
    /// APO instantiates an Ambassador it will own).
    pub fn instantiate_with_origin(
        &self,
        ids: &mut IdGenerator,
        origin: Option<ObjectId>,
    ) -> MromObject {
        self.instantiate_as(ids.next_id(), origin)
    }

    /// Stamps an instance with a pre-minted identity (the shared-runtime
    /// path, where ids come from an [`mrom_value::AtomicIdGenerator`]).
    pub fn instantiate_as(&self, id: ObjectId, origin: Option<ObjectId>) -> MromObject {
        let mut b = ObjectBuilder::new(id)
            .class(&self.name)
            .origin(origin.unwrap_or(id))
            .meta_acl(self.meta_acl.clone())
            .meta_section(self.meta_section);
        for (n, item) in &self.fixed_data {
            b = b.fixed_data(n, item.clone());
        }
        for (n, m) in &self.fixed_methods {
            b = b.fixed_method(n, m.clone());
        }
        for (n, item) in &self.ext_data {
            b = b.ext_data(n, item.clone());
        }
        for (n, m) in &self.ext_methods {
            b = b.ext_method(n, m.clone());
        }
        b.build()
    }
}

/// A per-node registry of class templates.
#[derive(Debug, Default)]
pub struct ClassRegistry {
    classes: BTreeMap<String, ClassSpec>,
}

impl ClassRegistry {
    /// An empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Registers a class.
    ///
    /// # Errors
    ///
    /// [`MromError::Class`] when the name is already registered.
    pub fn register(&mut self, spec: ClassSpec) -> Result<(), MromError> {
        if self.classes.contains_key(spec.name()) {
            return Err(MromError::Class(format!(
                "class {:?} is already registered",
                spec.name()
            )));
        }
        self.classes.insert(spec.name().to_owned(), spec);
        Ok(())
    }

    /// Looks a class up by name.
    pub fn get(&self, name: &str) -> Option<&ClassSpec> {
        self.classes.get(name)
    }

    /// Registered class names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.classes.keys().map(String::as_str).collect()
    }

    /// Instantiates a registered class.
    ///
    /// # Errors
    ///
    /// [`MromError::Class`] for unknown names.
    pub fn instantiate(&self, name: &str, ids: &mut IdGenerator) -> Result<MromObject, MromError> {
        // Look the class up before minting, so a failed create does not
        // consume an identity.
        self.get(name)
            .ok_or_else(|| MromError::Class(format!("unknown class {name:?}")))?;
        self.instantiate_with_id(name, ids.next_id())
    }

    /// Instantiates a registered class with a pre-minted identity.
    ///
    /// # Errors
    ///
    /// [`MromError::Class`] for unknown names.
    pub fn instantiate_with_id(&self, name: &str, id: ObjectId) -> Result<MromObject, MromError> {
        self.get(name)
            .map(|spec| spec.instantiate_as(id, None))
            .ok_or_else(|| MromError::Class(format!("unknown class {name:?}")))
    }

    /// Replaces a registered class definition — *class evolution* in the
    /// schema-evolution sense the paper cites (Banerjee & Kim \[4\]) and
    /// deliberately contrasts with MROM's object-level mutability: a
    /// redefinition here shapes **future** instances only; objects already
    /// stamped keep their structure and change exclusively through their
    /// own meta-methods.
    ///
    /// # Errors
    ///
    /// [`MromError::Class`] when the name was never registered (use
    /// [`ClassRegistry::register`] for new classes) or when the new spec's
    /// name does not match.
    pub fn redefine(&mut self, spec: ClassSpec) -> Result<(), MromError> {
        match self.classes.get_mut(spec.name()) {
            Some(slot) => {
                *slot = spec;
                Ok(())
            }
            None => Err(MromError::Class(format!(
                "cannot redefine unregistered class {:?}",
                spec.name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invoke::{invoke, NoWorld};
    use crate::method::MethodBody;
    use mrom_value::{NodeId, Value};

    fn ids() -> IdGenerator {
        IdGenerator::new(NodeId(3))
    }

    fn base_class() -> ClassSpec {
        ClassSpec::new("account")
            .fixed_data("balance", DataItem::public(Value::Int(100)))
            .fixed_method(
                "balance",
                Method::public(MethodBody::script("return self.get(\"balance\");").unwrap()),
            )
            .fixed_method(
                "describe_kind",
                Method::public(MethodBody::script("return \"plain\";").unwrap()),
            )
    }

    #[test]
    fn instantiation_stamps_independent_objects() {
        let mut gen = ids();
        let spec = base_class();
        let mut a = spec.instantiate(&mut gen);
        let b = spec.instantiate(&mut gen);
        assert_ne!(a.id(), b.id());
        let a_id = a.id();
        a.write_data(a_id, "balance", Value::Int(5)).unwrap();
        assert_eq!(b.read_data(b.id(), "balance").unwrap(), Value::Int(100));
    }

    #[test]
    fn specialization_copies_then_overrides() {
        let mut gen = ids();
        let child = base_class()
            .specialize("savings")
            // Override an inherited method...
            .fixed_method(
                "describe_kind",
                Method::public(MethodBody::script("return \"savings\";").unwrap()),
            )
            // ...and add a new one.
            .fixed_method(
                "interest",
                Method::public(MethodBody::script("return self.get(\"balance\") / 10;").unwrap()),
            );
        let mut obj = child.instantiate(&mut gen);
        let caller = gen.next_id();
        let mut world = NoWorld;
        assert_eq!(obj.class_name(), "savings");
        // Inherited method still present.
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "balance", &[]).unwrap(),
            Value::Int(100)
        );
        // Override wins.
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "describe_kind", &[]).unwrap(),
            Value::from("savings")
        );
        // Extension works.
        assert_eq!(
            invoke(&mut obj, &mut world, caller, "interest", &[]).unwrap(),
            Value::Int(10)
        );
        // Parent unaffected.
        let mut parent = base_class().instantiate(&mut gen);
        assert_eq!(
            invoke(&mut parent, &mut world, caller, "describe_kind", &[]).unwrap(),
            Value::from("plain")
        );
    }

    #[test]
    fn instantiate_with_origin_binds_ownership() {
        let mut gen = ids();
        let owner = gen.next_id();
        let obj = base_class().instantiate_with_origin(&mut gen, Some(owner));
        assert_eq!(obj.origin(), owner);
        assert_ne!(obj.id(), owner);
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = ClassRegistry::new();
        reg.register(base_class()).unwrap();
        reg.register(base_class().specialize("savings")).unwrap();
        assert_eq!(reg.names(), ["account", "savings"]);
        assert!(reg.get("account").is_some());
        let mut gen = ids();
        let obj = reg.instantiate("savings", &mut gen).unwrap();
        assert_eq!(obj.class_name(), "savings");
        assert!(matches!(
            reg.instantiate("ghost", &mut gen),
            Err(MromError::Class(_))
        ));
        assert!(matches!(
            reg.register(base_class()),
            Err(MromError::Class(_))
        ));
    }

    #[test]
    fn class_redefinition_shapes_future_instances_only() {
        let mut reg = ClassRegistry::new();
        reg.register(base_class()).unwrap();
        let mut gen = ids();
        let mut old_instance = reg.instantiate("account", &mut gen).unwrap();
        // Evolve the class: different default balance, a new method.
        reg.redefine(
            base_class()
                .fixed_data("balance", DataItem::public(Value::Int(500)))
                .fixed_method(
                    "currency",
                    Method::public(MethodBody::script("return \"ILS\";").unwrap()),
                ),
        )
        .unwrap();
        let mut new_instance = reg.instantiate("account", &mut gen).unwrap();
        let caller = gen.next_id();
        let mut world = NoWorld;
        // New instances see the evolved shape...
        assert_eq!(
            invoke(&mut new_instance, &mut world, caller, "balance", &[]).unwrap(),
            Value::Int(500)
        );
        assert_eq!(
            invoke(&mut new_instance, &mut world, caller, "currency", &[]).unwrap(),
            Value::from("ILS")
        );
        // ...while the pre-evolution object is untouched (object-level
        // mutability is the only way *it* changes).
        assert_eq!(
            invoke(&mut old_instance, &mut world, caller, "balance", &[]).unwrap(),
            Value::Int(100)
        );
        assert!(invoke(&mut old_instance, &mut world, caller, "currency", &[]).is_err());
        // Redefining an unknown class is an error.
        assert!(matches!(
            reg.redefine(ClassSpec::new("ghost")),
            Err(MromError::Class(_))
        ));
    }

    #[test]
    fn dynamic_specialization_mimics_prototypes() {
        // Runtime specialization without any class: the object extends
        // itself, giving the prototype-language effect the paper cites.
        let mut gen = ids();
        let mut obj = base_class().instantiate(&mut gen);
        let me = obj.id();
        obj.add_method(
            me,
            "bonus",
            Method::public(MethodBody::script("return self.get(\"balance\") + 1;").unwrap()),
        )
        .unwrap();
        let mut world = NoWorld;
        assert_eq!(
            invoke(&mut obj, &mut world, me, "bonus", &[]).unwrap(),
            Value::Int(101)
        );
    }
}
