//! Node runtime: the single-threaded view of the per-node object table.
//!
//! A [`Runtime`] owns every object hosted on one logical node, mints
//! identities through the node's generator, and implements the
//! `send`/`log`/`time` world operations for method bodies. Since PR 5 it
//! is a thin `&mut self` wrapper over the concurrent
//! [`SharedRuntime`](crate::SharedRuntime) — same semantics, same error
//! surface, exclusive access enforced by the borrow checker instead of
//! locks. Callers that want intra-node parallelism use
//! [`Runtime::shared`] (or construct a `SharedRuntime` directly) and
//! drive it from multiple threads.
//!
//! Cross-node communication is *not* here — it belongs to the network
//! substrate and HADAS, which wrap a runtime per simulated node.

use mrom_value::{AtomicIdGenerator, NodeId, ObjectId, Value};

use crate::class::ClassRegistry;
use crate::error::MromError;
use crate::invoke::InvokeLimits;
use crate::object::MromObject;
use crate::shared::{ObjectGuard, SharedRuntime};

/// The per-node object host.
///
/// # Example
///
/// ```
/// use mrom_core::{ClassSpec, Method, MethodBody, Runtime};
/// use mrom_value::{NodeId, Value};
///
/// # fn main() -> Result<(), mrom_core::MromError> {
/// let mut rt = Runtime::new(NodeId(1));
/// rt.classes_mut().register(
///     ClassSpec::new("echo").fixed_method(
///         "say",
///         Method::public(MethodBody::script("param x; return x;")?),
///     ),
/// )?;
/// let id = rt.create("echo")?;
/// let out = rt.invoke_as_system(id, "say", &[Value::from("hi")])?;
/// assert_eq!(out, Value::from("hi"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Runtime {
    shared: SharedRuntime,
}

impl Runtime {
    /// Creates an empty runtime for `node`.
    pub fn new(node: NodeId) -> Runtime {
        Runtime {
            shared: SharedRuntime::new(node),
        }
    }

    /// The concurrent runtime underneath: hand this to worker threads for
    /// parallel invocations (see `DESIGN.md` §12). All state is shared —
    /// an object created through the wrapper is visible through the
    /// shared view and vice versa.
    pub fn shared(&self) -> &SharedRuntime {
        &self.shared
    }

    /// Unwraps into the concurrent runtime.
    #[must_use]
    pub fn into_shared(self) -> SharedRuntime {
        self.shared
    }

    /// Wraps an existing concurrent runtime in the single-threaded view.
    #[must_use]
    pub fn from_shared(shared: SharedRuntime) -> Runtime {
        Runtime { shared }
    }

    /// The node this runtime represents.
    pub fn node(&self) -> NodeId {
        self.shared.node()
    }

    /// The node's identity generator.
    ///
    /// The generator mints through `&self` nowadays; the historical name
    /// and receiver are kept so existing `rt.ids_mut().next_id()` call
    /// sites compile unchanged.
    pub fn ids_mut(&mut self) -> &AtomicIdGenerator {
        self.shared.ids()
    }

    /// The class registry.
    pub fn classes(&self) -> crate::shared::ClassesGuard<'_> {
        self.shared.classes()
    }

    /// Mutable class registry access (lock-free: exclusivity comes from
    /// `&mut self`).
    pub fn classes_mut(&mut self) -> &mut ClassRegistry {
        self.shared.classes_mut()
    }

    /// Replaces the invocation limits applied to every call on this node.
    pub fn set_limits(&mut self, limits: InvokeLimits) {
        self.shared.set_limits(limits);
    }

    /// The current invocation limits.
    pub fn limits(&self) -> InvokeLimits {
        self.shared.limits()
    }

    /// Current virtual time (milliseconds by convention).
    pub fn now(&self) -> u64 {
        self.shared.now()
    }

    /// Advances virtual time (driven by the simulation substrate).
    pub fn set_now(&mut self, now: u64) {
        self.shared.set_now(now);
    }

    /// The recording thread's windowed telemetry restricted to this
    /// node: profiles of objects hosted here plus the call-matrix rows
    /// and links touching this site. The site-wide (unfiltered) view is
    /// [`mrom_obs::telemetry_snapshot`]; the reflective per-object door
    /// is the `getTelemetry` meta-method.
    #[must_use]
    pub fn telemetry(&self) -> mrom_obs::TelemetrySnapshot {
        let hosted: std::collections::BTreeSet<ObjectId> = self.object_ids().into_iter().collect();
        mrom_obs::telemetry_snapshot().for_site(self.node(), |id| hosted.contains(&id))
    }

    /// Messages logged by objects via `self.log(...)`, in order.
    ///
    /// Compatibility shim over the observability log channel
    /// ([`mrom_obs::log_lines_for`]), which also attributes entries to the
    /// node, bounds retention, and threads them into active traces.
    #[deprecated(
        since = "0.4.0",
        note = "use mrom_obs::log_lines_for(runtime.node()) — the log now lives in the observability layer"
    )]
    pub fn log_entries(&self) -> Vec<(ObjectId, String)> {
        mrom_obs::log_lines_for(self.node())
    }

    /// Instantiates a registered class, adopting the object into the node.
    ///
    /// # Errors
    ///
    /// [`MromError::Class`] for unknown class names.
    pub fn create(&mut self, class: &str) -> Result<ObjectId, MromError> {
        self.shared.create(class)
    }

    /// Adopts an externally constructed object (builder output, or an
    /// unpacked migration image).
    ///
    /// # Errors
    ///
    /// [`MromError::DuplicateItem`] if an object with this identity is
    /// already hosted here.
    pub fn adopt(&mut self, obj: MromObject) -> Result<ObjectId, MromError> {
        self.shared.adopt(obj)
    }

    /// Removes an object from the node (the local half of migration),
    /// returning it.
    ///
    /// # Errors
    ///
    /// [`MromError::NoSuchObject`]; [`MromError::ObjectBusy`] for objects
    /// checked out by an in-flight invocation or poisoned by a panicked
    /// one (impossible to hit through `&mut self` alone, but the shared
    /// view underneath may be driven by workers).
    pub fn evict(&mut self, id: ObjectId) -> Result<MromObject, MromError> {
        self.shared.evict(id)
    }

    /// Shared access to a hosted object.
    ///
    /// Returns a guard that dereferences to [`MromObject`]; existing
    /// `rt.object(id).unwrap().read_data(..)`-style call sites compile
    /// unchanged. `None` for unknown (and, through the shared view,
    /// checked-out or poisoned) identities.
    pub fn object(&self, id: ObjectId) -> Option<ObjectGuard<'_>> {
        self.shared.object(id)
    }

    /// Mutable access to a hosted object (host-side administration;
    /// lock-free through `&mut self`).
    pub fn object_mut(&mut self, id: ObjectId) -> Option<&mut MromObject> {
        self.shared.object_mut(id)
    }

    /// Identities of all hosted objects (unordered).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.shared.object_ids()
    }

    /// Number of hosted objects.
    pub fn object_count(&self) -> usize {
        self.shared.object_count()
    }

    /// Invokes a method on a hosted object as `caller`.
    ///
    /// The target is checked out of the table for the duration of the call
    /// so its body can invoke *other* objects on this node through the
    /// world hook; a cyclic call back into the executing object reports
    /// [`MromError::ObjectBusy`]. See
    /// [`SharedRuntime::invoke`](crate::SharedRuntime::invoke) for the
    /// full checkout protocol (including panic poisoning).
    ///
    /// # Errors
    ///
    /// [`MromError::NoSuchObject`] plus all invocation errors.
    pub fn invoke(
        &mut self,
        caller: ObjectId,
        target: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, MromError> {
        self.shared.invoke(caller, target, method, args)
    }

    /// [`Runtime::invoke`] with the system principal — host-initiated
    /// administration (bootstrap, tests, benches).
    ///
    /// # Errors
    ///
    /// As [`Runtime::invoke`].
    pub fn invoke_as_system(
        &mut self,
        target: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, MromError> {
        self.shared.invoke_as_system(target, method, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassSpec;
    use crate::invoke::InvokeLimits;
    use crate::item::DataItem;
    use crate::method::{Method, MethodBody};

    fn runtime_with_classes() -> Runtime {
        let mut rt = Runtime::new(NodeId(21));
        rt.classes_mut()
            .register(
                ClassSpec::new("calc")
                    .fixed_data("acc", DataItem::public(Value::Int(0)))
                    .fixed_method(
                        "add",
                        Method::public(
                            MethodBody::script(
                                "param x; self.set(\"acc\", self.get(\"acc\") + x); return self.get(\"acc\");",
                            )
                            .unwrap(),
                        ),
                    ),
            )
            .unwrap();
        rt.classes_mut()
            .register(
                ClassSpec::new("caller_class").fixed_method(
                    "relay",
                    Method::public(
                        MethodBody::script(
                            "param target; param x; return self.send(target, \"add\", [x]);",
                        )
                        .unwrap(),
                    ),
                ),
            )
            .unwrap();
        rt
    }

    #[test]
    fn create_and_invoke() {
        let mut rt = runtime_with_classes();
        let id = rt.create("calc").unwrap();
        assert_eq!(rt.object_count(), 1);
        assert_eq!(
            rt.invoke_as_system(id, "add", &[Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            rt.invoke_as_system(id, "add", &[Value::Int(2)]).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn unknown_objects_and_classes() {
        let mut rt = runtime_with_classes();
        assert!(matches!(rt.create("nope"), Err(MromError::Class(_))));
        let ghost = rt.ids_mut().next_id();
        assert!(matches!(
            rt.invoke_as_system(ghost, "m", &[]),
            Err(MromError::NoSuchObject(_))
        ));
        assert!(matches!(rt.evict(ghost), Err(MromError::NoSuchObject(_))));
    }

    #[test]
    fn objects_invoke_each_other_through_send() {
        let mut rt = runtime_with_classes();
        let calc = rt.create("calc").unwrap();
        let relay = rt.create("caller_class").unwrap();
        let out = rt
            .invoke_as_system(relay, "relay", &[Value::ObjectRef(calc), Value::Int(40)])
            .unwrap();
        assert_eq!(out, Value::Int(40));
        // The calc object kept the state.
        assert_eq!(
            rt.object(calc)
                .unwrap()
                .read_data(ObjectId::SYSTEM, "acc")
                .unwrap(),
            Value::Int(40)
        );
    }

    #[test]
    fn send_to_self_reports_busy() {
        let mut rt = Runtime::new(NodeId(5));
        rt.classes_mut()
            .register(ClassSpec::new("selfish").fixed_method(
                "loopy",
                Method::public(
                    MethodBody::script("return self.send(self.id(), \"loopy\", []);").unwrap(),
                ),
            ))
            .unwrap();
        let id = rt.create("selfish").unwrap();
        let err = rt.invoke_as_system(id, "loopy", &[]).unwrap_err();
        assert!(
            matches!(err, MromError::Script(_)),
            "busy surfaces through the script layer: {err}"
        );
        // The object is back in the table afterwards.
        assert!(rt.object(id).is_some());
    }

    #[test]
    fn cyclic_cross_object_calls_report_busy() {
        let mut rt = Runtime::new(NodeId(6));
        rt.classes_mut()
            .register(
                ClassSpec::new("pingpong").fixed_method(
                    "ping",
                    Method::public(
                        MethodBody::script(
                            "param other; return self.send(other, \"ping\", [self.id()]);",
                        )
                        .unwrap(),
                    ),
                ),
            )
            .unwrap();
        let a = rt.create("pingpong").unwrap();
        let b = rt.create("pingpong").unwrap();
        // a.ping(b) → b.ping(a) → a is checked out → busy error surfaces.
        let err = rt
            .invoke_as_system(a, "ping", &[Value::ObjectRef(b)])
            .unwrap_err();
        assert!(matches!(err, MromError::Script(_)), "{err}");
        assert_eq!(rt.object_count(), 2);
    }

    #[test]
    fn adopt_and_evict_round_trip() {
        let mut rt = runtime_with_classes();
        let id = rt.create("calc").unwrap();
        rt.invoke_as_system(id, "add", &[Value::Int(9)]).unwrap();
        let obj = rt.evict(id).unwrap();
        assert_eq!(rt.object_count(), 0);
        // Re-adopt (e.g. after a round trip through an image).
        let id2 = rt.adopt(obj).unwrap();
        assert_eq!(id2, id);
        assert_eq!(
            rt.invoke_as_system(id, "add", &[Value::Int(1)]).unwrap(),
            Value::Int(10)
        );
        // Double adoption rejected.
        let dup = rt.object(id).unwrap().clone();
        assert!(matches!(
            rt.adopt(dup),
            Err(MromError::DuplicateItem { .. })
        ));
    }

    #[test]
    fn log_and_time_world_ops() {
        let mut rt = Runtime::new(NodeId(9));
        rt.classes_mut()
            .register(ClassSpec::new("clock").fixed_method(
                "stamp",
                Method::public(
                    MethodBody::script("self.log(\"tick\"); return self.time();").unwrap(),
                ),
            ))
            .unwrap();
        let id = rt.create("clock").unwrap();
        rt.set_now(1234);
        assert_eq!(
            rt.invoke_as_system(id, "stamp", &[]).unwrap(),
            Value::Int(1234)
        );
        let lines = mrom_obs::log_lines_for(rt.node());
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].1, "tick");
        assert_eq!(lines[0].0, id);
        // The deprecated accessor reads the same channel.
        #[allow(deprecated)]
        {
            assert_eq!(rt.log_entries(), lines);
        }
    }

    #[test]
    fn objects_spawn_other_objects() {
        let mut rt = runtime_with_classes();
        rt.classes_mut()
            .register(
                ClassSpec::new("factory").fixed_method(
                    "make_calc",
                    Method::public(
                        MethodBody::script(
                            r#"
                        let child = self.spawn("calc");
                        self.send(child, "add", [41]);
                        return child;
                        "#,
                        )
                        .unwrap(),
                    ),
                ),
            )
            .unwrap();
        let factory = rt.create("factory").unwrap();
        let child_ref = rt.invoke_as_system(factory, "make_calc", &[]).unwrap();
        let child = child_ref.as_object_ref().expect("object ref");
        assert_eq!(rt.object_count(), 2);
        // The spawned object is real and kept the state the factory gave it.
        assert_eq!(
            rt.invoke_as_system(child, "add", &[Value::Int(1)]).unwrap(),
            Value::Int(42)
        );
        // Unknown classes fail cleanly through the script layer.
        rt.classes_mut()
            .register(ClassSpec::new("bad-factory").fixed_method(
                "make",
                Method::public(MethodBody::script(r#"return self.spawn("ghost-class");"#).unwrap()),
            ))
            .unwrap();
        let bad = rt.create("bad-factory").unwrap();
        assert!(rt.invoke_as_system(bad, "make", &[]).is_err());
    }

    #[test]
    fn migration_between_runtimes() {
        let mut rt_a = runtime_with_classes();
        let mut rt_b = Runtime::new(NodeId(22));
        let id = rt_a.create("calc").unwrap();
        rt_a.invoke_as_system(id, "add", &[Value::Int(3)]).unwrap();
        // Export from A...
        let obj = rt_a.evict(id).unwrap();
        let image = obj.image_value().unwrap();
        let bytes = mrom_value::wire::encode(&image);
        // ...import at B: the object keeps identity and state.
        let unpacked = MromObject::from_image(&bytes).unwrap();
        let id_b = rt_b.adopt(unpacked).unwrap();
        assert_eq!(id_b, id);
        assert_eq!(
            rt_b.invoke_as_system(id, "add", &[Value::Int(4)]).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn limits_are_applied_per_node() {
        let mut rt = Runtime::new(NodeId(30));
        rt.set_limits(InvokeLimits {
            fuel: 1_000,
            ..InvokeLimits::default()
        });
        rt.classes_mut()
            .register(ClassSpec::new("hot").fixed_method(
                "spin",
                Method::public(MethodBody::script("while (true) { }").unwrap()),
            ))
            .unwrap();
        let id = rt.create("hot").unwrap();
        let err = rt.invoke_as_system(id, "spin", &[]).unwrap_err();
        assert!(matches!(err, MromError::Script(_)));
        assert_eq!(rt.limits().fuel, 1_000);
    }

    #[test]
    fn meta_acl_protects_against_hostile_host_principal() {
        // A host (arbitrary principal) must not be able to mutate an
        // object's structure through the runtime.
        let mut rt = runtime_with_classes();
        let id = rt.create("calc").unwrap();
        let hostile = rt.ids_mut().next_id();
        let err = rt
            .invoke(
                hostile,
                id,
                "addDataItem",
                &[Value::from("evil"), Value::Int(0)],
            )
            .unwrap_err();
        assert!(matches!(err, MromError::AccessDenied { .. }));
    }

    #[test]
    fn wrapper_and_shared_view_see_one_table() {
        let mut rt = runtime_with_classes();
        let id = rt.create("calc").unwrap();
        // Invoke through the shared view; read through the wrapper.
        rt.shared()
            .invoke_as_system(id, "add", &[Value::Int(7)])
            .unwrap();
        assert_eq!(
            rt.object(id)
                .unwrap()
                .read_data(ObjectId::SYSTEM, "acc")
                .unwrap(),
            Value::Int(7)
        );
        // Round trip through into_shared/from_shared keeps everything.
        let shared = rt.into_shared();
        assert_eq!(shared.object_count(), 1);
        let rt = Runtime::from_shared(shared);
        assert_eq!(rt.object_count(), 1);
    }
}
