//! Item containers — the fixed/extensible split.
//!
//! Each MROM object holds four containers: fixed data, fixed methods,
//! extensible data, extensible methods (paper §4). The fixed pair is sealed
//! at construction — its structure is the stable basis for specialization —
//! while the extensible pair supports add/remove/replace at runtime.
//!
//! The representations also embody the paper's §3 performance observation
//! ("in static structures the location is determined at compile time as a
//! fixed offset"): a [`FixedContainer`] is a sorted array built once and
//! probed by binary search (and its slots can be cached by index), whereas
//! an [`ExtensibleContainer`] is an ordered map that must be searched on
//! every access because its shape can change under the caller's feet.

use std::collections::BTreeMap;

/// Which section of the object an item lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// The immutable core: guaranteed structure, usable for specialization.
    Fixed,
    /// The mutable adaptation surface: no long-term structural guarantees.
    Extensible,
}

impl Section {
    /// Lowercase name for descriptors (`"fixed"` / `"extensible"`).
    pub fn name(&self) -> &'static str {
        match self {
            Section::Fixed => "fixed",
            Section::Extensible => "extensible",
        }
    }
}

/// A sealed name→item table: sorted storage probed by binary search.
///
/// Built through [`FixedContainer::build`]; no mutation of the *structure*
/// is possible afterwards — which is exactly what makes every slot index
/// stable for the object's lifetime, the same way a compiler turns a
/// static layout into fixed offsets (callers cache the index from
/// [`FixedContainer::index_of`] and reuse it via
/// [`FixedContainer::get_by_index`]). Values themselves stay reachable
/// mutably — a fixed **data** item's *value* is writable (subject to ACL);
/// it is the set of names and their properties that is frozen.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedContainer<T> {
    names: Vec<String>,
    values: Vec<T>,
}

impl<T> FixedContainer<T> {
    /// Builds a sealed container from `(name, item)` pairs.
    ///
    /// Later duplicates replace earlier ones (the subclass-constructor
    /// copy-then-override pattern of static specialization relies on this).
    pub fn build<I: IntoIterator<Item = (String, T)>>(entries: I) -> FixedContainer<T> {
        let mut map: BTreeMap<String, T> = BTreeMap::new();
        for (name, item) in entries {
            map.insert(name, item);
        }
        let mut names = Vec::with_capacity(map.len());
        let mut values = Vec::with_capacity(map.len());
        for (name, item) in map {
            names.push(name);
            values.push(item);
        }
        FixedContainer { names, values }
    }

    /// An empty sealed container.
    pub fn empty() -> FixedContainer<T> {
        FixedContainer {
            names: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the container holds no items.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Index of `name`, if present. The index is stable for the object's
    /// lifetime — the "fixed offset" the paper contrasts with dynamic
    /// lookup — so callers may cache it and skip this probe entirely.
    #[inline]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names
            .binary_search_by(|probe| probe.as_str().cmp(name))
            .ok()
    }

    /// Looks an item up by name.
    pub fn get(&self, name: &str) -> Option<&T> {
        self.index_of(name).map(|i| &self.values[i])
    }

    /// Mutable lookup (value writes on fixed data items).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut T> {
        self.index_of(name).map(move |i| &mut self.values[i])
    }

    /// Direct access by stable index.
    pub fn get_by_index(&self, index: usize) -> Option<&T> {
        self.values.get(index)
    }

    /// Direct mutable access by stable index (inline-cache hit path for
    /// value writes on fixed data items).
    pub fn get_by_index_mut(&mut self, index: usize) -> Option<&mut T> {
        self.values.get_mut(index)
    }

    /// `true` if `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Iterates `(name, item)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &T)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter())
    }

    /// The item names, sorted.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

impl<T> Default for FixedContainer<T> {
    fn default() -> Self {
        FixedContainer::empty()
    }
}

impl<T> FromIterator<(String, T)> for FixedContainer<T> {
    fn from_iter<I: IntoIterator<Item = (String, T)>>(iter: I) -> Self {
        FixedContainer::build(iter)
    }
}

/// A runtime-mutable name→item table.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensibleContainer<T> {
    map: BTreeMap<String, T>,
}

impl<T> ExtensibleContainer<T> {
    /// An empty container.
    pub fn new() -> ExtensibleContainer<T> {
        ExtensibleContainer {
            map: BTreeMap::new(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the container holds no items.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks an item up by name.
    pub fn get(&self, name: &str) -> Option<&T> {
        self.map.get(name)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut T> {
        self.map.get_mut(name)
    }

    /// `true` if `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Inserts a new item. Returns `false` (and leaves the container
    /// unchanged) when the name is taken — `addDataItem`/`addMethod` must
    /// not silently replace; replacement is `set`'s job.
    pub fn insert(&mut self, name: String, item: T) -> bool {
        use std::collections::btree_map::Entry;
        match self.map.entry(name) {
            Entry::Vacant(slot) => {
                slot.insert(item);
                true
            }
            Entry::Occupied(_) => false,
        }
    }

    /// Replaces an existing item, returning the old one; `None` when the
    /// name is absent (nothing inserted).
    pub fn replace(&mut self, name: &str, item: T) -> Option<T> {
        self.map
            .get_mut(name)
            .map(|slot| std::mem::replace(slot, item))
    }

    /// Removes an item by name.
    pub fn remove(&mut self, name: &str) -> Option<T> {
        self.map.remove(name)
    }

    /// Iterates `(name, item)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &T)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The item names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.map.keys().map(String::as_str).collect()
    }
}

impl<T> Default for ExtensibleContainer<T> {
    fn default() -> Self {
        ExtensibleContainer::new()
    }
}

impl<T> FromIterator<(String, T)> for ExtensibleContainer<T> {
    fn from_iter<I: IntoIterator<Item = (String, T)>>(iter: I) -> Self {
        ExtensibleContainer {
            map: iter.into_iter().collect(),
        }
    }
}

impl<T> Extend<(String, T)> for ExtensibleContainer<T> {
    fn extend<I: IntoIterator<Item = (String, T)>>(&mut self, iter: I) {
        self.map.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_container_lookup() {
        let c: FixedContainer<i32> = [
            ("b".to_owned(), 2),
            ("a".to_owned(), 1),
            ("c".to_owned(), 3),
        ]
        .into_iter()
        .collect();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.get("c"), Some(&3));
        assert_eq!(c.get("z"), None);
        assert!(c.contains("b"));
        // Names are sorted; indexes are stable.
        assert_eq!(c.names(), ["a", "b", "c"]);
        assert_eq!(c.index_of("b"), Some(1));
        assert_eq!(c.get_by_index(1), Some(&2));
        assert_eq!(c.get_by_index(9), None);
    }

    #[test]
    fn fixed_build_later_duplicates_win() {
        let c = FixedContainer::build([("x".to_owned(), 1), ("x".to_owned(), 2)]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("x"), Some(&2));
    }

    #[test]
    fn fixed_values_stay_mutable() {
        let mut c = FixedContainer::build([("x".to_owned(), 1)]);
        *c.get_mut("x").unwrap() = 9;
        assert_eq!(c.get("x"), Some(&9));
    }

    #[test]
    fn fixed_empty() {
        let c: FixedContainer<i32> = FixedContainer::empty();
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
        assert_eq!(FixedContainer::<i32>::default(), c);
    }

    #[test]
    fn extensible_insert_rejects_duplicates() {
        let mut c = ExtensibleContainer::new();
        assert!(c.insert("x".into(), 1));
        assert!(!c.insert("x".into(), 2));
        assert_eq!(c.get("x"), Some(&1));
    }

    #[test]
    fn extensible_replace_requires_presence() {
        let mut c = ExtensibleContainer::new();
        assert_eq!(c.replace("x", 5), None);
        assert!(!c.contains("x"));
        c.insert("x".into(), 1);
        assert_eq!(c.replace("x", 5), Some(1));
        assert_eq!(c.get("x"), Some(&5));
    }

    #[test]
    fn extensible_remove() {
        let mut c = ExtensibleContainer::new();
        c.insert("x".into(), 1);
        assert_eq!(c.remove("x"), Some(1));
        assert_eq!(c.remove("x"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn extensible_iteration_in_name_order() {
        let mut c = ExtensibleContainer::new();
        c.insert("z".into(), 26);
        c.insert("a".into(), 1);
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "z"]);
        assert_eq!(c.names(), ["a", "z"]);
    }

    #[test]
    fn section_names() {
        assert_eq!(Section::Fixed.name(), "fixed");
        assert_eq!(Section::Extensible.name(), "extensible");
    }
}
